#!/usr/bin/env python
"""Scenario: network-wide broadcast — blind flooding vs the k-hop backbone.

The paper's opening motivation: flooding "demands large overhead and may
cause severe collision and contention"; clustering confines it.  This
example builds backbones for k = 1..4 on the same network and measures the
transmissions needed to reach every node from random sources, including
the cost breakdown (uplink to the head, backbone flood, intra-cluster
dissemination).

Run:  python examples/broadcast_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import (
    backbone_broadcast,
    blind_flood,
    build_cds,
    khop_cluster,
    random_topology,
)
from repro.core.pipeline import build_backbone
from repro.net.paths import PathOracle


def main() -> None:
    topo = random_topology(n=150, degree=6.0, seed=7)
    g = topo.graph
    oracle = PathOracle(g)
    rng = np.random.default_rng(0)
    sources = rng.choice(g.n, size=10, replace=False)

    flood_cost = np.mean([blind_flood(g, int(s)).transmissions for s in sources])
    print(f"network: {g.n} nodes  |  blind flooding: {flood_cost:.0f} tx per broadcast\n")

    print(f"{'k':>2} {'heads':>6} {'gateways':>9} {'CDS':>5} "
          f"{'backbone tx':>12} {'intra tx':>9} {'total tx':>9} {'saving':>7}")
    for k in (1, 2, 3, 4):
        cds = build_cds(build_backbone(khop_cluster(g, k), "AC-LMST"))
        totals, backbones, intras = [], [], []
        for s in sources:
            stats = backbone_broadcast(cds, oracle, int(s), mode="tree")
            assert stats.delivered_all
            totals.append(stats.transmissions)
            backbones.append(stats.backbone_tx)
            intras.append(stats.intra_tx)
        total = float(np.mean(totals))
        print(
            f"{k:>2} {len(cds.heads):>6} {len(cds.gateways):>9} {cds.size:>5} "
            f"{np.mean(backbones):>12.1f} {np.mean(intras):>9.1f} "
            f"{total:>9.1f} {100 * (1 - total / flood_cost):>6.0f}%"
        )

    print(
        "\nThe backbone confines most traffic to the CDS; intra-cluster "
        "dissemination grows with k while the backbone shrinks — the "
        "tradeoff §5 of the paper points at."
    )


if __name__ == "__main__":
    main()
