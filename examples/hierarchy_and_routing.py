#!/usr/bin/env python
"""Scenario: multi-level clustering and cluster-based routing.

§2 of the paper: "High level clustering, clustering applied recursively
over clusterheads, is also feasible and effective in even larger
networks", and clustering "help[s] to achieve smaller routing tables".
This example builds the recursive hierarchy (level 2 clusters the
adjacent-cluster graph G'' of level 1, and so on up to a single apex
cluster), then compares flat link-state routing state against
cluster-based routing on the level-1 backbone.

Run:  python examples/hierarchy_and_routing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import khop_cluster, random_topology
from repro.cds.routing import routing_report
from repro.core.hierarchy import build_hierarchy
from repro.core.pipeline import build_backbone
from repro.net.paths import PathOracle


def main() -> None:
    topo = random_topology(n=200, degree=8.0, seed=17)
    g = topo.graph
    print(f"network: {g.n} nodes, mean degree {g.average_degree():.1f}\n")

    # --- recursive clustering -------------------------------------------- #
    hierarchy = build_hierarchy(g, ks=2)
    print("recursive k-hop clustering (k=2 at every level):")
    for lvl in hierarchy.levels:
        print(
            f"  level {lvl.level}: {lvl.graph.n:3d} vertices -> "
            f"{len(lvl.clustering.heads):3d} clusterheads"
        )
    sample = 123
    chain = hierarchy.head_chain(sample)
    print(f"  node {sample}'s head chain (bottom-up): {list(chain)}\n")

    # --- routing state --------------------------------------------------- #
    backbone = build_backbone(khop_cluster(g, 2), "AC-LMST")
    report = routing_report(backbone, PathOracle(g), samples=80, seed=1)
    print("routing-state comparison (k=2, AC-LMST backbone):")
    print(f"  flat link-state table : {report.flat_table} entries/node")
    print(
        f"  cluster routing table : {report.mean_table:.1f} entries/node "
        f"mean, {report.max_table} max (heads carry the backbone table)"
    )
    print(
        f"  path stretch paid     : {report.mean_stretch:.2f} mean, "
        f"{report.max_stretch:.2f} max over {report.pairs} sampled pairs"
    )


if __name__ == "__main__":
    main()
