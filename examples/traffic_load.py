#!/usr/bin/env python
"""Traffic engine walkthrough: put real load on the clustered backbone.

The paper motivates k-hop clustering with routing; this example goes one
step further and measures what routing *does to the network*: thousands
of flows are batch-routed over an AC-LMST backbone, the per-node
forwarding load and virtual-link utilization are accounted, and the
measured load then drives the §3.3 energy/repair loop — showing that
clusterheads and gateways drain first, and that rotating the clusterhead
role measurably extends the network's time to first partition.

Run:  python examples/traffic_load.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import random_topology, run_pipeline
from repro.net.energy import EnergyParams
from repro.traffic import (
    BatchRouter,
    compare_rotation_under_traffic,
    make_workload,
    measure_load,
)


def main() -> None:
    # 1. A paper-style instance and its best backbone (AC-LMST, k=2).
    topo = random_topology(n=300, degree=8.0, seed=7)
    graph = topo.graph
    backbone = run_pipeline(graph, k=2, algorithm="AC-LMST")
    print(
        f"network: {graph.n} nodes, {graph.m} links; backbone: "
        f"{len(backbone.heads)} heads + {backbone.num_gateways} gateways"
    )

    # 2. Batch-route four workload families over the same backbone.
    router = BatchRouter(backbone)
    print("\nworkload comparison (5000 offered flows each):")
    print(f"  {'workload':8s} {'hops':>8s} {'stretch':>8s} "
          f"{'max load':>9s} {'CDS share':>10s} {'fairness':>9s}")
    for kind in ("uniform", "cbr", "hotspot", "gossip"):
        wl = make_workload(kind, graph.n, 5000, seed=7)
        load = measure_load(backbone, router.route_flows(wl))
        print(
            f"  {kind:8s} {load.packet_hops:8d} {load.mean_stretch:8.2f} "
            f"{load.max_node_load:9.0f} {load.cds_share:10.1%} "
            f"{load.backbone_fairness:9.3f}"
        )

    # 3. Who exactly carries the uniform workload?  Mostly the CDS.
    wl = make_workload("uniform", graph.n, 5000, seed=7)
    load = measure_load(backbone, router.route_flows(wl))
    cds = backbone.cds
    print("\nheaviest forwarders (all backbone nodes, as §3.3 predicts):")
    for node, message_load in load.top_loaded(5):
        role = (
            "head"
            if node in set(backbone.heads)
            else "gateway" if node in backbone.gateways else "member"
        )
        print(f"  node {node:4d}  load {message_load:6d}  ({role})")
        assert node in cds or role == "member"

    # 4. Close the loop: measured load drains batteries, deaths are
    #    repaired, flows replay — rotation vs static heads.
    params = EnergyParams(
        initial=15000.0, tx_cost=1.0, rx_cost=0.5,
        idle_member=0.01, idle_backbone=1.0,
    )
    wl_small = make_workload("uniform", graph.n, 1000, seed=7)
    reports = compare_rotation_under_traffic(
        graph, 2, wl_small, epochs=100, params=params
    )
    print("\ntraffic-driven lifetime (100 epochs max):")
    for scheme in ("energy", "static"):
        r = reports[scheme]
        end = (
            f"partitioned at epoch {r.first_partition_epoch}"
            if r.first_partition_epoch is not None
            else "survived"
        )
        print(
            f"  {scheme:7s}: lifetime {r.lifetime:3d}, "
            f"{r.total_deaths:2d} deaths, {r.distinct_heads:3d} distinct "
            f"heads, {end}"
        )


if __name__ == "__main__":
    main()
