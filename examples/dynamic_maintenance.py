#!/usr/bin/env python
"""Scenario: node churn and power-aware clusterhead rotation (§3.3).

Part 1 — failure repair: nodes disappear one by one; each failure is
handled by the paper's role-dependent ladder (member: nothing; gateway:
local gateway re-selection; clusterhead: re-election) and the repaired
backbone is re-verified.

Part 2 — clusterhead rotation: residual-energy priority vs static
lowest-ID election over many epochs; rotation spreads the head role and
keeps the minimum residual energy higher.

Run:  python examples/dynamic_maintenance.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import khop_cluster, random_topology
from repro.core.pipeline import build_backbone
from repro.maintenance import repair, simulate_rotation
from repro.net.energy import EnergyParams


def failure_demo() -> None:
    topo = random_topology(n=120, degree=8.0, seed=21)
    backbone = build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")
    print(
        f"initial backbone: {len(backbone.heads)} heads, "
        f"{backbone.num_gateways} gateways"
    )
    rng = np.random.default_rng(3)
    for node in rng.choice(topo.n, size=8, replace=False):
        out = repair(backbone, int(node))
        note = "ESCALATED" if out.escalated else ""
        if out.partitioned:
            print(f"  node {node:3d} ({out.role:7s}) -> network partitioned")
            continue
        print(
            f"  node {node:3d} ({out.role:7s}) -> {out.action:17s} "
            f"touched {len(out.scope_heads)} heads, "
            f"locality {out.locality:.2f} {note}"
        )
        backbone = out.backbone  # keep applying failures to the repaired net


def rotation_demo() -> None:
    topo = random_topology(n=80, degree=8.0, seed=5)
    params = EnergyParams(initial=1000.0, idle_member=0.02, idle_backbone=1.0)
    static = simulate_rotation(
        topo.graph, 2, epochs=12, scheme="static", params=params
    )
    energy = simulate_rotation(
        topo.graph, 2, epochs=12, scheme="energy", params=params
    )
    print(
        f"\nrotation over 12 epochs (k=2):\n"
        f"  static lowest-ID : {static.distinct_heads:2d} distinct heads ever; "
        f"busiest node led {max(static.head_service.values()):2d} epochs; "
        f"final min residual {static.final_min_residual:7.2f}\n"
        f"  energy priority  : {energy.distinct_heads:2d} distinct heads ever; "
        f"busiest node led {max(energy.head_service.values()):2d} epochs; "
        f"final min residual {energy.final_min_residual:7.2f}"
    )
    print(
        "  -> rotating by residual energy spreads the clusterhead burden "
        "across many more nodes (note: nodes at topological choke points "
        "stay gateways under any election, which bounds the min-residual "
        "gain on some instances)."
    )


def main() -> None:
    failure_demo()
    rotation_demo()


if __name__ == "__main__":
    main()
