"""Mobility-coupled traffic: stretch and load measured under motion.

Runs the same flow workload over a sequence of RandomWaypoint unit-disk
snapshots twice — once rebuilding everything from scratch per snapshot,
once with edge-delta maintenance (``Graph.with_edge_delta`` plus the
oracle/path/router inheritance family) — and shows that the two agree
walk-for-walk while the delta engine does a fraction of the work.

Run from the repo root:

    PYTHONPATH=src python examples/mobility_traffic.py
"""

import time

from repro.net.topology import random_topology
from repro.traffic.mobile import render_mobile, simulate_mobile_traffic
from repro.traffic.workloads import uniform_pairs


def main() -> None:
    n, k, snapshots = 500, 2, 10
    topo = random_topology(n, degree=9.0, seed=7)
    topo.graph.use_distance_backend("lazy")
    workload = uniform_pairs(n, 800, seed=7)
    # High-frequency sampling: successive snapshots differ by a few edges.
    speed = (0.002, 0.01)

    t0 = time.perf_counter()
    rebuild = simulate_mobile_traffic(
        topo, k, workload, snapshots=snapshots, speed=speed, seed=7,
        engine="rebuild", collect_walks=True,
    )
    t1 = time.perf_counter()
    delta = simulate_mobile_traffic(
        topo, k, workload, snapshots=snapshots, speed=speed, seed=7,
        engine="delta", collect_walks=True,
    )
    t2 = time.perf_counter()

    print(render_mobile(delta))
    print()
    identical = rebuild.walks == delta.walks
    print(
        f"engines walk-identical: {identical}  |  "
        f"rebuild {t1 - t0:.2f}s vs delta {t2 - t1:.2f}s "
        f"({(t1 - t0) / max(t2 - t1, 1e-9):.1f}x)"
    )


if __name__ == "__main__":
    main()
