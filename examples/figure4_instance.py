#!/usr/bin/env python
"""Scenario: reproduce the paper's Figure 4 gallery on a fresh instance.

Draws a 100-node degree-6 network and renders the four pictured backbones
(G-MST, NC-Mesh, NC-LMST, AC-LMST) as ASCII scatter plots of the
deployment area, with per-algorithm gateway counts — the reproduction's
analogue of the paper's four subfigures.

Run:  python examples/figure4_instance.py [seed]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.figures import figure4


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    data = figure4.run(n=100, degree=6.0, k=2, seed=seed)
    print(figure4.render(data))
    print(
        "\npaper's instance for comparison (its RNG is unknowable): "
        "7 heads; G-MST 23, NC-Mesh 35, NC-LMST 28, AC-LMST 26 gateways"
    )


if __name__ == "__main__":
    main()
