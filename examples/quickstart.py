#!/usr/bin/env python
"""Quickstart: build a connected k-hop clustering backbone in ten lines.

Generates the paper's workload (100 nodes, average degree 6, 100x100
area), runs the full AC-LMST pipeline (k-hop clustering -> A-NCR neighbor
selection -> LMST gateway selection), verifies the result, and compares
all five algorithms on the same instance.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    build_all_backbones,
    khop_cluster,
    random_topology,
    run_pipeline,
    verify_backbone,
)


def main() -> None:
    # 1. A random connected ad hoc network, exactly as in the paper's §4.
    topo = random_topology(n=100, degree=6.0, seed=42)
    print(
        f"network: {topo.n} nodes, {topo.graph.m} links, "
        f"mean degree {topo.realized_degree():.2f}, "
        f"transmission range {topo.radius:.1f}"
    )

    # 2. One-call pipeline: the paper's best algorithm, AC-LMST, at k = 2.
    result = run_pipeline(topo, k=2, algorithm="AC-LMST")
    verify_backbone(result)  # Theorem 2, executable form
    print(
        f"\nAC-LMST backbone (k=2): {len(result.heads)} clusterheads + "
        f"{result.num_gateways} gateways = CDS of {result.cds_size} nodes"
    )
    print(f"clusterheads: {list(result.heads)}")
    print(f"gateways:     {sorted(result.gateways)}")

    # 3. Compare all five algorithms of the paper on the same clustering.
    print("\nalgorithm comparison on this instance (k=2):")
    clustering = khop_cluster(topo.graph, 2)
    for name, res in build_all_backbones(clustering).items():
        verify_backbone(res)
        print(
            f"  {name:8s}: {res.num_gateways:3d} gateways, "
            f"CDS size {res.cds_size:3d}"
        )

    # 4. The tunable k: fewer, bigger clusters as k grows (Figure 7).
    print("\neffect of k (AC-LMST):")
    for k in (1, 2, 3, 4):
        res = run_pipeline(topo, k=k)
        print(
            f"  k={k}: {len(res.heads):2d} heads, "
            f"{res.num_gateways:2d} gateways, CDS {res.cds_size:3d}"
        )


if __name__ == "__main__":
    main()
