#!/usr/bin/env python
"""Scenario: the *distributed* pipeline on the round-based simulator.

Everything in the paper is a localized protocol: scoped floods within
2k+1 hops, border reports, parent-chain gateway marking.  This example
runs the real message-passing protocols, shows their per-phase message
cost, and confirms the outcome is bit-identical to the centralized
reference implementation.

Run:  python examples/distributed_trace.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import khop_cluster, random_topology
from repro.core.pipeline import build_backbone
from repro.sim import run_distributed_pipeline


def main() -> None:
    topo = random_topology(n=80, degree=6.0, seed=13)
    g = topo.graph
    k = 2
    print(f"network: {g.n} nodes, mean degree {g.average_degree():.1f}, k={k}\n")

    for alg in ("NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST"):
        dres = run_distributed_pipeline(g, k, alg)
        cres = build_backbone(khop_cluster(g, k), alg)
        match = (
            dres.gateways == cres.gateways
            and dres.selected_links == cres.selected_links
        )
        print(f"{alg}:")
        for phase, stats in dres.stats_by_phase.items():
            kinds = ", ".join(
                f"{kind} x{cnt}" for kind, cnt in sorted(stats.per_kind.items())
            )
            print(
                f"  {phase:10s}: {stats.transmissions:5d} tx over "
                f"{stats.rounds:3d} rounds   ({kinds})"
            )
        print(
            f"  result    : {len(dres.heads)} heads, {len(dres.gateways)} "
            f"gateways — matches centralized: {match}\n"
        )
        assert match, "distributed and centralized pipelines diverged!"


if __name__ == "__main__":
    main()
