"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works in offline environments whose setuptools
lacks the ``wheel`` package required for PEP 660 editable installs.
"""

from setuptools import setup

setup()
