"""Tests for the repro-khop CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_options(self):
        args = build_parser().parse_args(
            ["figure4", "--n", "50", "--k", "3", "--seed", "9"]
        )
        assert args.command == "figure4"
        assert args.n == 50 and args.k == 3 and args.seed == 9

    def test_global_trials(self):
        args = build_parser().parse_args(["--trials", "5", "figure5"])
        assert args.trials == 5

    def test_traffic_options(self):
        args = build_parser().parse_args(
            [
                "traffic",
                "--n",
                "120",
                "--flows",
                "500",
                "--workload",
                "hotspot",
                "--lifetime-epochs",
                "3",
            ]
        )
        assert args.command == "traffic"
        assert args.n == 120 and args.flows == 500
        assert args.workload == "hotspot" and args.lifetime_epochs == 3

    def test_traffic_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["traffic", "--workload", "nope"])


class TestMain:
    def test_figure4_end_to_end(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "2")
        rc = main(["figure4", "--n", "50", "--k", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gateways" in out

    def test_overhead_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRIALS", "2")
        rc = main(["--trials", "1", "overhead"])
        assert rc == 0
        assert "overhead" in capsys.readouterr().out.lower()

    def test_traffic_end_to_end(self, capsys):
        rc = main(
            ["traffic", "--n", "100", "--degree", "6", "--flows", "300", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packet-hops" in out and "CDS share" in out


class TestChaosCommand:
    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "5", "--events", "42", "--n", "60"]
        )
        assert args.command == "chaos"
        assert args.seed == 5 and args.events == 42 and args.n == 60

    def test_chaos_end_to_end(self, capsys):
        code = main(
            ["chaos", "--seed", "9", "--events", "40", "--n", "60",
             "--flows", "60"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants held" in out
        assert "seed=9" in out
