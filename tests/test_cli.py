"""Tests for the repro-khop CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_options(self):
        args = build_parser().parse_args(
            ["figure4", "--n", "50", "--k", "3", "--seed", "9"]
        )
        assert args.command == "figure4"
        assert args.n == 50 and args.k == 3 and args.seed == 9

    def test_global_trials(self):
        args = build_parser().parse_args(["--trials", "5", "figure5"])
        assert args.trials == 5

    def test_traffic_options(self):
        args = build_parser().parse_args(
            [
                "traffic",
                "--n",
                "120",
                "--flows",
                "500",
                "--workload",
                "hotspot",
                "--lifetime-epochs",
                "3",
            ]
        )
        assert args.command == "traffic"
        assert args.n == 120 and args.flows == 500
        assert args.workload == "hotspot" and args.lifetime_epochs == 3

    def test_traffic_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["traffic", "--workload", "nope"])


class TestMain:
    def test_figure4_end_to_end(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "2")
        rc = main(["figure4", "--n", "50", "--k", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gateways" in out

    def test_overhead_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRIALS", "2")
        rc = main(["--trials", "1", "overhead"])
        assert rc == 0
        assert "overhead" in capsys.readouterr().out.lower()

    def test_traffic_end_to_end(self, capsys):
        rc = main(
            ["traffic", "--n", "100", "--degree", "6", "--flows", "300", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packet-hops" in out and "CDS share" in out


class TestChaosCommand:
    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "5", "--events", "42", "--n", "60"]
        )
        assert args.command == "chaos"
        assert args.seed == 5 and args.events == 42 and args.n == 60

    def test_chaos_end_to_end(self, capsys):
        code = main(
            ["chaos", "--seed", "9", "--events", "40", "--n", "60",
             "--flows", "60"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants held" in out
        assert "seed=9" in out


class TestStatsCommand:
    def test_stats_options(self):
        args = build_parser().parse_args(
            ["stats", "--n", "80", "--backend", "lazy", "--flows", "200"]
        )
        assert args.command == "stats"
        assert args.n == 80 and args.backend == "lazy" and args.flows == 200
        assert args.trace is None

    def test_stats_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--backend", "nope"])

    def test_stats_end_to_end(self, capsys):
        rc = main(
            ["stats", "--n", "80", "--degree", "6", "--flows", "120",
             "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "manifest: schema=repro-khop-trace/1" in out
        assert "knobs:" in out and "seed=3" in out
        # the span flame covers the pipeline stages
        for stage in ("traffic", "router", "epochs"):
            assert stage in out
        assert "of tallest root" in out
        assert "counters:" in out or "gauges:" in out
        # the layer is switched back off afterwards
        from repro import obs

        assert not obs.enabled()

    def test_stats_optionally_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "s.jsonl"
        rc = main(
            ["stats", "--n", "80", "--degree", "6", "--flows", "120",
             "--seed", "3", "--trace", str(trace)]
        )
        assert rc == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        assert trace.is_file()


class TestTracedRuns:
    @staticmethod
    def span_names(span_dict):
        names = {span_dict["name"]}
        for child in span_dict.get("children", ()):
            names |= TestTracedRuns.span_names(child)
        return names

    def test_traffic_trace_writes_full_jsonl(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "t.jsonl"
        rc = main(
            ["traffic", "--n", "80", "--degree", "6", "--flows", "150",
             "--seed", "3", "--trace", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packet-hops" in out
        assert f"trace written to {trace}" in out
        manifest, spans, metrics = obs.read_trace(trace)
        assert manifest["knobs"]["command"] == "traffic"
        assert manifest["knobs"]["n"] == 80
        assert len(spans) == 1
        names = self.span_names(spans[0])
        assert {"traffic", "topology", "cluster", "cds", "labels",
                "router", "epochs", "epoch"} <= names
        assert metrics["gauges"]  # oracle/paths stats landed
        assert not obs.enabled()

    def test_mobility_trace_writes_jsonl(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "m.jsonl"
        rc = main(
            ["mobility", "--n", "80", "--degree", "6", "--flows", "100",
             "--snapshots", "3", "--seed", "3", "--trace", str(trace)]
        )
        assert rc == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        manifest, spans, _ = obs.read_trace(trace)
        assert manifest["knobs"]["command"] == "mobility"
        assert manifest["knobs"]["snapshots"] == 3
        names = self.span_names(spans[0])
        assert "mobility" in names and "epoch" in names

    def test_chaos_trace_writes_jsonl(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "c.jsonl"
        rc = main(
            ["chaos", "--seed", "9", "--events", "40", "--n", "60",
             "--flows", "60", "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "all invariants held" in out
        assert f"trace written to {trace}" in out
        manifest, spans, _ = obs.read_trace(trace)
        assert manifest["knobs"]["command"] == "chaos"
        names = self.span_names(spans[0])
        assert "chaos" in names and "batch" in names
