"""Tests for cluster-based routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cds.routing import route, routing_report, table_sizes
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph
from repro.net.paths import PathOracle
from repro.net.topology import random_topology

from ..conftest import connected_graphs, ks


def setup(g, k=2, alg="AC-LMST"):
    res = build_backbone(khop_cluster(g, k), alg)
    return res, PathOracle(g)


class TestRoute:
    def test_same_node(self):
        res, oracle = setup(path_graph(6), 1)
        assert route(res, oracle, 3, 3) == (3,)

    def test_same_cluster_direct(self):
        g = path_graph(6)
        res, oracle = setup(g, 2)  # clusters {0,1,2}, {3,4,5}
        assert route(res, oracle, 1, 2) == oracle.path(1, 2)

    def test_cross_cluster_via_heads(self):
        g = path_graph(6)
        res, oracle = setup(g, 2)
        walk = route(res, oracle, 2, 5)
        assert walk[0] == 2 and walk[-1] == 5
        # passes through both heads
        assert 0 in walk and 3 in walk

    def test_out_of_range(self):
        res, oracle = setup(path_graph(4), 1)
        with pytest.raises(InvalidParameterError):
            route(res, oracle, 0, 9)

    @given(connected_graphs(min_n=4), ks, st.data())
    @settings(max_examples=40, deadline=None)
    def test_walks_are_valid_and_terminate(self, g, k, data):
        res, oracle = setup(g, k)
        s = data.draw(st.integers(0, g.n - 1))
        t = data.draw(st.integers(0, g.n - 1))
        walk = route(res, oracle, s, t)
        assert walk[0] == s and walk[-1] == t
        for a, b in zip(walk, walk[1:]):
            assert g.has_edge(a, b)


class TestTableSizes:
    def test_every_node_has_entry(self):
        g = grid_graph(5, 5)
        res, _ = setup(g, 1)
        tables = table_sizes(res)
        assert set(tables) == set(g.nodes())

    def test_heads_store_backbone(self):
        g = grid_graph(5, 5)
        res, _ = setup(g, 1)
        tables = table_sizes(res)
        cl = res.clustering
        for h in res.heads:
            expected = (len(cl.members(h)) - 1) + (len(res.heads) - 1)
            assert tables[h] == expected

    def test_members_store_cluster_only(self):
        g = grid_graph(5, 5)
        res, _ = setup(g, 2)
        tables = table_sizes(res)
        cl = res.clustering
        for u in cl.non_heads():
            assert tables[u] == len(cl.members(cl.cluster_of(u))) - 1


class TestRoutingReport:
    def test_stretch_at_least_one(self):
        topo = random_topology(80, 8.0, seed=3)
        res, oracle = setup(topo.graph, 2)
        report = routing_report(res, oracle, samples=40, seed=1)
        assert report.mean_stretch >= 1.0
        assert report.max_stretch >= report.mean_stretch

    def test_tables_collapse_vs_flat(self):
        topo = random_topology(120, 8.0, seed=5)
        res, oracle = setup(topo.graph, 2)
        report = routing_report(res, oracle, samples=20, seed=2)
        assert report.flat_table == 119
        assert report.mean_table < report.flat_table / 2

    def test_stretch_reasonable_at_paper_scale(self):
        topo = random_topology(100, 6.0, seed=7)
        res, oracle = setup(topo.graph, 2)
        report = routing_report(res, oracle, samples=60, seed=3)
        assert report.mean_stretch < 2.5  # cluster routing pays a bounded price

    def test_two_node_graph_works(self):
        res, oracle = setup(path_graph(2), 1)
        report = routing_report(res, oracle, samples=3)
        assert report.mean_stretch == 1.0
