"""Tests for k-hop CDS assembly and intra-cluster trees."""

import pytest
from hypothesis import given, settings

from repro.cds.builder import build_cds, intra_cluster_parents
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph

from ..conftest import connected_graphs, ks


class TestBuildCds:
    def test_roles(self):
        cl = khop_cluster(path_graph(6), 1)
        cds = build_cds(build_backbone(cl, "NC-Mesh"))
        assert cds.role(0) == "head"
        assert cds.role(1) == "gateway"
        assert cds.role(5) == "member"
        assert cds.size == len(cds.heads) + len(cds.gateways)
        assert cds.nodes == cds.heads | cds.gateways

    def test_heads_and_gateways_disjoint(self):
        cl = khop_cluster(grid_graph(5, 5), 2)
        cds = build_cds(build_backbone(cl, "AC-LMST"))
        assert not (cds.heads & cds.gateways)

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_size_matches_backbone(self, g, k):
        cl = khop_cluster(g, k)
        res = build_backbone(cl, "AC-LMST")
        cds = build_cds(res)
        assert cds.size == res.cds_size


class TestIntraClusterParents:
    def test_parents_point_toward_head(self):
        cl = khop_cluster(path_graph(6), 2)
        parents = intra_cluster_parents(cl)
        assert parents[0] == 0  # head maps to itself
        assert parents[2] == 1
        assert parents[1] == 0

    def test_chains_terminate_at_head(self):
        g = grid_graph(5, 5)
        cl = khop_cluster(g, 2)
        parents = intra_cluster_parents(cl)
        for u in g.nodes():
            seen = set()
            cur = u
            while parents[cur] != cur:
                assert cur not in seen  # no cycles
                seen.add(cur)
                cur = parents[cur]
            assert cl.is_head(cur)

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_parents_strictly_closer(self, g, k):
        cl = khop_cluster(g, k)
        parents = intra_cluster_parents(cl)
        for u in g.nodes():
            h = cl.cluster_of(u)
            if u != h:
                assert g.hop_distance(parents[u], h) == g.hop_distance(u, h) - 1
