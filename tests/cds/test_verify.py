"""Tests for backbone verification (positive + synthetic negative cases)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cds.verify import (
    check_backbone_connected,
    check_domination,
    check_gateways_are_members,
    check_links_realized,
    verify_backbone,
)
from repro.core.clustering import khop_cluster
from repro.core.pipeline import ALGORITHMS, build_backbone
from repro.errors import ValidationError
from repro.net.generators import grid_graph, path_graph

from ..conftest import connected_graphs, ks


class TestPositive:
    @given(connected_graphs(), ks, st.sampled_from(ALGORITHMS))
    @settings(max_examples=50, deadline=None)
    def test_pipelines_always_verify(self, g, k, alg):
        verify_backbone(build_backbone(khop_cluster(g, k), alg))


class TestNegative:
    def _backbone(self):
        cl = khop_cluster(path_graph(8), 1)
        return build_backbone(cl, "NC-Mesh")

    def test_missing_gateway_detected(self):
        res = self._backbone()
        assert res.gateways  # needs at least one gateway on a path
        broken = dataclasses.replace(res, gateways=frozenset())
        with pytest.raises(ValidationError):
            check_links_realized(broken)

    def test_head_as_gateway_detected(self):
        res = self._backbone()
        broken = dataclasses.replace(
            res, gateways=res.gateways | {res.heads[0]}
        )
        with pytest.raises(ValidationError):
            check_gateways_are_members(broken)

    def test_disconnected_cds_detected(self):
        res = self._backbone()
        # drop all links AND gateways: heads alone are not connected
        broken = dataclasses.replace(
            res, gateways=frozenset(), selected_links=frozenset()
        )
        with pytest.raises(ValidationError):
            check_backbone_connected(broken)

    def test_domination_failure_detected(self):
        # clustering that k-dominates, then lie about k
        cl = khop_cluster(path_graph(12), 3)
        res = build_backbone(cl, "AC-LMST")
        shrunk = dataclasses.replace(
            res, clustering=dataclasses.replace(cl, k=1)
        )
        with pytest.raises(ValidationError):
            check_domination(shrunk)
