"""Tests for the broadcast application (flooding vs backbone)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cds.broadcast import backbone_broadcast, blind_flood
from repro.cds.builder import build_cds
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph
from repro.net.graph import Graph
from repro.net.paths import PathOracle

from ..conftest import connected_graphs, ks


class TestBlindFlood:
    def test_connected_costs_n(self):
        g = grid_graph(4, 4)
        stats = blind_flood(g, 5)
        assert stats.transmissions == 16
        assert stats.delivered == 16
        assert stats.delivered_all

    def test_disconnected_partial(self):
        g = Graph(4, [(0, 1)])
        stats = blind_flood(g, 0)
        assert stats.delivered == 2
        assert not stats.delivered_all


class TestBackboneBroadcast:
    def _setup(self, g, k, alg="AC-LMST"):
        cl = khop_cluster(g, k)
        res = build_backbone(cl, alg)
        return build_cds(res), PathOracle(g)

    def test_full_delivery_tree_mode(self):
        g = grid_graph(6, 6)
        cds, oracle = self._setup(g, 2)
        stats = backbone_broadcast(cds, oracle, source=35, mode="tree")
        assert stats.delivered_all
        assert stats.transmissions <= g.n

    def test_full_delivery_flood_mode(self):
        g = grid_graph(6, 6)
        cds, oracle = self._setup(g, 2)
        stats = backbone_broadcast(cds, oracle, source=35, mode="flood")
        assert stats.delivered_all

    def test_source_is_head(self):
        g = path_graph(8)
        cds, oracle = self._setup(g, 1)
        head = next(iter(cds.heads))
        stats = backbone_broadcast(cds, oracle, source=head)
        assert stats.delivered_all
        assert stats.uplink_tx == 0  # source already on the backbone

    def test_breakdown_sums(self):
        g = grid_graph(5, 5)
        cds, oracle = self._setup(g, 2)
        stats = backbone_broadcast(cds, oracle, source=24)
        assert stats.transmissions == (
            stats.uplink_tx + stats.backbone_tx + stats.intra_tx
        )

    def test_k1_saves_over_flooding(self):
        # At k=1 the CDS is a classic dominating backbone: broadcast cost
        # must not exceed flooding on a non-trivial grid.
        g = grid_graph(6, 6)
        cds, oracle = self._setup(g, 1)
        flood = blind_flood(g, 0).transmissions
        backbone = backbone_broadcast(cds, oracle, source=0).transmissions
        assert backbone <= flood

    def test_unknown_mode(self):
        g = path_graph(5)
        cds, oracle = self._setup(g, 1)
        with pytest.raises(InvalidParameterError):
            backbone_broadcast(cds, oracle, 0, mode="quantum")

    @given(connected_graphs(), ks, st.data())
    @settings(max_examples=40, deadline=None)
    def test_always_delivers_everywhere(self, g, k, data):
        source = data.draw(st.integers(0, g.n - 1))
        cds, oracle = self._setup(g, k)
        for mode in ("tree", "flood"):
            stats = backbone_broadcast(cds, oracle, source, mode=mode)
            assert stats.delivered_all, (mode, source)
