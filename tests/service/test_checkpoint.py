"""Durability primitives: WAL append/read, atomic snapshots, scanning."""

import json
import os

import pytest

from repro.errors import InvalidParameterError
from repro.service.checkpoint import (
    CHECKPOINT_SCHEMA,
    EVENT_LOG_NAME,
    append_event,
    checkpoint_path,
    latest_checkpoint,
    read_events,
    write_checkpoint,
)
from repro.service.events import ServiceEvent


def _events(k):
    return [ServiceEvent(seq=i, kind="flow", flows=5) for i in range(k)]


class TestEventLog:
    def test_append_read_round_trip(self, tmp_path):
        events = _events(7)
        for ev in events:
            append_event(tmp_path, ev)
        assert read_events(tmp_path) == events

    def test_missing_log_reads_empty(self, tmp_path):
        assert read_events(tmp_path) == []

    def test_truncated_tail_dropped(self, tmp_path):
        for ev in _events(5):
            append_event(tmp_path, ev)
        path = tmp_path / EVENT_LOG_NAME
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the final line mid-record
        assert read_events(tmp_path) == _events(4)

    def test_corrupt_interior_line_raises(self, tmp_path):
        for ev in _events(4):
            append_event(tmp_path, ev)
        path = tmp_path / EVENT_LOG_NAME
        lines = path.read_text().splitlines()
        lines[1] = '{"seq": 1, "kind":'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_events(tmp_path)

    def test_no_fsync_still_consistent(self, tmp_path):
        for ev in _events(3):
            append_event(tmp_path, ev, fsync=False)
        assert len(read_events(tmp_path)) == 3


class TestCheckpoints:
    def test_write_then_latest(self, tmp_path):
        write_checkpoint(tmp_path, 10, {"x": 1}, knobs={"seed": 7})
        write_checkpoint(tmp_path, 20, {"x": 2}, knobs={"seed": 7})
        seq, record = latest_checkpoint(tmp_path)
        assert seq == 20
        assert record["schema"] == CHECKPOINT_SCHEMA
        assert record["state"] == {"x": 2}
        assert record["knobs"] == {"seed": 7}

    def test_empty_dir_returns_none(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_corrupt_newest_skipped(self, tmp_path):
        write_checkpoint(tmp_path, 5, {"x": 1})
        checkpoint_path(tmp_path, 9).write_text("{ not json")
        seq, record = latest_checkpoint(tmp_path)
        assert seq == 5 and record["state"] == {"x": 1}

    def test_foreign_schema_skipped(self, tmp_path):
        write_checkpoint(tmp_path, 3, {"x": 1})
        checkpoint_path(tmp_path, 8).write_text(
            json.dumps({"schema": "other/1", "seq": 8, "state": {}})
        )
        assert latest_checkpoint(tmp_path)[0] == 3

    def test_seq_name_mismatch_skipped(self, tmp_path):
        write_checkpoint(tmp_path, 4, {"x": 1})
        rec = json.loads(checkpoint_path(tmp_path, 4).read_text())
        rec["seq"] = 99
        checkpoint_path(tmp_path, 7).write_text(json.dumps(rec))
        assert latest_checkpoint(tmp_path)[0] == 4

    def test_orphan_temp_file_ignored(self, tmp_path):
        write_checkpoint(tmp_path, 2, {"x": 1})
        (tmp_path / ".checkpoint-abc.tmp").write_text("partial")
        assert latest_checkpoint(tmp_path)[0] == 2

    def test_negative_seq_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            checkpoint_path(tmp_path, -1)

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"x": 1})
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []
