"""Restore-and-replay determinism: the kill-and-recover contract (S3).

The tested property: for *any* kill point, recovering from the durable
directory and replaying the log tail yields an engine bit-identical to
one that was never killed — same graph, cover, backbone link set, walk
digests, delivered fractions, and RNG stream position
(:meth:`ServiceEngine.fingerprint` equality).
"""

import pytest

from repro.errors import InvalidParameterError
from repro.service.checkpoint import EVENT_LOG_NAME, latest_checkpoint
from repro.service.engine import ServiceConfig, ServiceEngine, _initial_topology
from repro.service.events import ServiceEvent, seeded_schedule
from repro.service.recovery import recover, replay_events


def _config(**kw):
    base = dict(
        n=30, degree=8.0, k=2, seed=5, checkpoint_every=6, base_loss=0.1
    )
    base.update(kw)
    return ServiceConfig(**base)


def _schedule(cfg, events):
    return seeded_schedule(
        _initial_topology(cfg), events=events, seed=cfg.seed,
        flows_per_batch=15,
    )


def _uninterrupted(cfg, sched):
    engine = ServiceEngine(cfg)
    engine.apply_all(sched)
    return engine.fingerprint()


class TestRoundTripAcrossBackends:
    @pytest.mark.parametrize("backend", ["dense", "lazy", "landmark"])
    def test_state_round_trip(self, backend, tmp_path):
        cfg = _config(backend=backend, seed=7)
        sched = _schedule(cfg, 18)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched)
        restored = ServiceEngine.from_state(
            cfg, engine.state_dict(), None
        )
        assert restored.fingerprint() == engine.fingerprint()

    @pytest.mark.parametrize("backend", ["dense", "lazy", "landmark"])
    def test_restored_engine_continues_identically(self, backend, tmp_path):
        cfg = _config(backend=backend, seed=9)
        sched = _schedule(cfg, 24)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched[:12])
        restored = ServiceEngine.from_state(cfg, engine.state_dict(), None)
        for ev in sched[12:]:
            engine.apply(ev)
            restored.apply(ev, log=False, checkpoint=False)
        assert restored.fingerprint() == engine.fingerprint()


class TestKillAndRecover:
    def test_replay_identity_at_every_prefix(self, tmp_path):
        """Kill after each event; recovery must always converge."""
        cfg = _config(seed=3)
        events = 24
        sched = _schedule(cfg, events)
        reference = _uninterrupted(cfg, sched)
        for kill in range(events + 1):
            d = tmp_path / f"kill-{kill:02d}"
            engine = ServiceEngine(cfg, d)
            engine.apply_all(sched[:kill])
            del engine  # the process dies here
            revived = recover(d, config=cfg)
            for ev in sched[revived.cursor:]:
                revived.apply(ev)
            assert revived.fingerprint() == reference, f"kill point {kill}"

    def test_torn_log_tail_recovers_to_previous_event(self, tmp_path):
        cfg = _config(seed=11)
        sched = _schedule(cfg, 15)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched)
        log = tmp_path / EVENT_LOG_NAME
        log.write_bytes(log.read_bytes()[:-9])  # killed mid-append
        revived = recover(tmp_path)
        assert revived.cursor == 14
        for ev in sched[14:]:
            revived.apply(ev)
        assert revived.fingerprint() == _uninterrupted(cfg, sched)

    def test_recover_without_checkpoint_replays_from_scratch(self, tmp_path):
        cfg = _config(seed=13, checkpoint_every=0)
        sched = _schedule(cfg, 10)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched)
        assert latest_checkpoint(tmp_path) is None
        revived = recover(tmp_path, config=cfg)
        assert revived.fingerprint() == engine.fingerprint()

    def test_recover_reads_config_from_checkpoint(self, tmp_path):
        cfg = _config(seed=17)
        sched = _schedule(cfg, 12)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched)
        revived = recover(tmp_path)  # no config handed in
        assert revived.config == cfg
        assert revived.fingerprint() == engine.fingerprint()

    def test_empty_directory_needs_config(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            recover(tmp_path)

    def test_log_gap_detected(self, tmp_path):
        cfg = _config(seed=19)
        engine = ServiceEngine(cfg)
        tail = [ServiceEvent(seq=5, kind="flow", flows=3)]
        with pytest.raises(InvalidParameterError):
            replay_events(engine, tail)

    def test_rng_stream_position_survives(self, tmp_path):
        """The recovered stream must continue, not restart."""
        cfg = _config(seed=23)
        sched = _schedule(cfg, 16)
        engine = ServiceEngine(cfg, tmp_path)
        engine.apply_all(sched)
        revived = recover(tmp_path)
        a = engine.rng.integers(0, 2**31 - 1, size=4)
        b = revived.rng.integers(0, 2**31 - 1, size=4)
        assert a.tolist() == b.tolist()
