"""The service loop itself: growth, repair, guards, flows, counters."""

import json

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.service.checkpoint import read_events
from repro.service.engine import (
    INCIDENT_LOG_NAME,
    ServiceConfig,
    ServiceEngine,
    _initial_topology,
    run_service,
)
from repro.service.events import ServiceEvent, seeded_schedule

GROWTH_WEIGHTS = {
    "join": 0.5,
    "flow": 0.5,
    "move": 0.0,
    "leave": 0.0,
    "link_down": 0.0,
    "degrade": 0.0,
}


def _config(**kw):
    base = dict(n=40, degree=8.0, k=2, seed=11, checkpoint_every=0)
    base.update(kw)
    return ServiceConfig(**base)


class TestServiceConfig:
    def test_rejects_global_algorithm(self):
        with pytest.raises(InvalidParameterError):
            _config(algorithm="G-MST")

    def test_record_round_trip(self):
        cfg = _config(base_loss=0.1, fsync=False)
        assert ServiceConfig.from_record(cfg.to_record()) == cfg


class TestGrowthUnderTraffic:
    def test_pure_growth_never_reruns_clustering(self):
        cfg = _config(seed=3)
        engine = ServiceEngine(cfg)
        sched = seeded_schedule(
            _initial_topology(cfg), events=40, seed=cfg.seed,
            weights=GROWTH_WEIGHTS, flows_per_batch=20,
        )
        engine.apply_all(sched)
        joins = sum(1 for e in sched if e.kind == "join")
        assert engine.graph.n == cfg.n + joins
        assert engine.counts["khop_reruns"] == 0
        assert engine.counts["rebuild_fallbacks"] == 0
        assert (
            engine.counts["joins_admitted"] + engine.counts["heads_declared"]
            == joins
        )

    def test_grown_nodes_keep_valid_cover(self):
        from repro.maintenance.repair import clustering_still_valid

        cfg = _config(seed=5)
        engine = ServiceEngine(cfg)
        sched = seeded_schedule(
            _initial_topology(cfg), events=30, seed=cfg.seed,
            weights=GROWTH_WEIGHTS, flows_per_batch=10,
        )
        engine.apply_all(sched)
        assert clustering_still_valid(
            engine.clustering, engine.graph, exclude=engine.dead
        )

    def test_flow_history_records_digests(self):
        cfg = _config(seed=7)
        engine = ServiceEngine(cfg)
        engine.apply(ServiceEvent(seq=0, kind="flow", flows=25))
        (entry,) = engine.history
        assert entry["seq"] == 0
        assert entry["flows"] > 0
        assert entry["delivered"] == 1.0  # lossless config
        assert entry["walks_crc"] != 0


class TestComponentBridges:
    """An arrival in a radio hole islands itself; a later member arrival
    wires it back.  The graph becomes one component again, so the head
    graph must gain virtual links across the bridge — the member-join
    fast path alone cannot supply them (found by the 10^4 growth bench:
    "backbone does not connect heads").
    """

    @staticmethod
    def _hole_positions(engine):
        # Past the rightmost node: every deployed node has x <= anchor_x,
        # so a point 1.5r further right is > r from all of them (orphan),
        # while the midpoint is within r of both the anchor and the
        # orphan (the bridge).
        r = engine.topology.radius
        pts = engine.topology.positions
        anchor = int(np.argmax(pts[:, 0]))
        ax, ay = float(pts[anchor, 0]), float(pts[anchor, 1])
        return anchor, (ax + 1.5 * r, ay), (ax + 0.75 * r, ay)

    def test_bridging_member_join_reconnects_backbone(self):
        from repro.traffic.workloads import Workload

        cfg = _config(seed=11)
        engine = ServiceEngine(cfg)
        anchor, orphan_pos, bridge_pos = self._hole_positions(engine)
        engine.apply(ServiceEvent(seq=0, kind="join", position=orphan_pos))
        orphan = engine.graph.n - 1
        assert len(engine.graph.neighbors(orphan)) == 0
        assert orphan in engine.clustering.heads  # declared its own island
        engine.apply(ServiceEvent(seq=0, kind="join", position=bridge_pos))
        bridge = engine.graph.n - 1
        assert set(engine.graph.neighbors(bridge)) >= {anchor, orphan}
        assert engine.counts["component_bridges"] == 1
        assert engine.counts["rebuild_fallbacks"] == 0
        # An islanded arrival and its re-wiring are environmental, not
        # engine bugs: the per-component guard stays quiet throughout.
        assert engine.counts["guard_trips"] == 0
        # Cross-bridge traffic routes over the refreshed head graph.
        wl = Workload(
            "handmade",
            engine.graph.n,
            np.array([anchor]),
            np.array([orphan]),
            np.array([1]),
        )
        routed = engine.router.route_flows(wl, with_shortest=False)
        assert routed.walks

    def test_bridge_survives_state_round_trip(self):
        cfg = _config(seed=11)
        engine = ServiceEngine(cfg)
        _, orphan_pos, bridge_pos = self._hole_positions(engine)
        engine.apply(ServiceEvent(seq=0, kind="join", position=orphan_pos))
        engine.apply(ServiceEvent(seq=0, kind="join", position=bridge_pos))
        restored = ServiceEngine.from_state(cfg, engine.state_dict(), None)
        assert restored.fingerprint() == engine.fingerprint()
        flow = ServiceEvent(seq=0, kind="flow", flows=25)
        engine.apply(flow)
        restored.apply(flow, log=False, checkpoint=False)
        assert restored.fingerprint() == engine.fingerprint()


class TestDepartures:
    def test_leave_runs_repair_and_keeps_serving(self):
        cfg = _config(seed=13)
        engine = ServiceEngine(cfg)
        member = next(
            u
            for u in range(engine.graph.n)
            if u not in engine.backbone.cds
        )
        engine.apply(ServiceEvent(seq=0, kind="leave", node=member))
        assert member in engine.dead
        assert engine.counts["repairs"] == 1
        engine.apply(ServiceEvent(seq=0, kind="flow", flows=30))
        assert engine.history[-1]["flows"] > 0

    def test_leave_twice_is_idempotent_noop(self):
        cfg = _config(seed=13)
        engine = ServiceEngine(cfg)
        engine.apply(ServiceEvent(seq=0, kind="leave", node=1))
        engine.apply(ServiceEvent(seq=0, kind="leave", node=1))
        assert engine.counts["repairs"] == 1
        assert engine.counts["skipped"] == 1

    def test_dead_node_never_rewired_by_arrival(self):
        cfg = _config(seed=17)
        engine = ServiceEngine(cfg)
        victim = 3
        engine.apply(ServiceEvent(seq=0, kind="leave", node=victim))
        pos = tuple(float(c) for c in engine.topology.positions[victim])
        engine.apply(ServiceEvent(seq=0, kind="join", position=pos))
        x = engine.graph.n - 1
        assert victim not in engine.graph.neighbors(x)


class TestGuardsAndIncidents:
    def test_guard_trip_logs_incident_and_recovers(self, tmp_path):
        cfg = _config(seed=19)
        engine = ServiceEngine(cfg, tmp_path)
        # Rip out a head's entire neighborhood: the cover must break and
        # the guard ladder must catch it instead of crashing.
        head = engine.clustering.heads[0]
        edges = tuple(
            (min(head, v), max(head, v))
            for v in engine.graph.neighbors(head)
        )
        engine.apply(ServiceEvent(seq=0, kind="link_down", edges=edges))
        assert engine.counts["guard_trips"] >= 1
        assert engine.counts["rebuild_fallbacks"] >= 1
        assert engine.incidents
        logged = [
            json.loads(line)
            for line in (tmp_path / INCIDENT_LOG_NAME).read_text().splitlines()
        ]
        assert logged[0]["guard"] in ("cover", "backbone", "csr")
        # still serving
        engine.apply(ServiceEvent(seq=0, kind="flow", flows=20))
        assert engine.history[-1]["flows"] > 0

    def test_healthy_run_trips_no_guards(self):
        cfg = _config(seed=23)
        engine = ServiceEngine(cfg)
        sched = seeded_schedule(
            _initial_topology(cfg), events=25, seed=cfg.seed,
            weights=GROWTH_WEIGHTS, flows_per_batch=10,
        )
        engine.apply_all(sched)
        assert engine.incidents == []


class TestDegrade:
    def test_degrade_reduces_delivered_fraction(self):
        cfg = _config(seed=29, base_loss=0.0)
        engine = ServiceEngine(cfg)
        engine.apply(ServiceEvent(seq=0, kind="flow", flows=40))
        assert engine.history[-1]["delivered"] == 1.0
        edges = engine.graph.edges[:30]
        engine.apply(
            ServiceEvent(seq=0, kind="degrade", edges=edges, loss=0.9)
        )
        assert len(engine.loss) == 30
        engine.apply(ServiceEvent(seq=0, kind="flow", flows=40))
        assert engine.history[-1]["delivered"] < 1.0

    def test_zero_loss_clears_override(self):
        cfg = _config(seed=29)
        engine = ServiceEngine(cfg)
        e = engine.graph.edges[0]
        engine.apply(ServiceEvent(seq=0, kind="degrade", edges=(e,), loss=0.5))
        engine.apply(ServiceEvent(seq=0, kind="degrade", edges=(e,), loss=0.0))
        assert engine.loss == {}


class TestDurableLoop:
    def test_events_logged_before_effects(self, tmp_path):
        cfg = _config(seed=31, checkpoint_every=5)
        engine = ServiceEngine(cfg, tmp_path)
        sched = seeded_schedule(
            _initial_topology(cfg), events=12, seed=cfg.seed,
            weights=GROWTH_WEIGHTS, flows_per_batch=5,
        )
        engine.apply_all(sched)
        logged = read_events(tmp_path)
        assert [e.kind for e in logged] == [e.kind for e in sched]
        assert engine.counts["checkpoints"] == 2

    def test_run_service_reports(self, tmp_path):
        cfg = _config(seed=37, checkpoint_every=10)
        engine, report = run_service(
            cfg, events=20, directory=tmp_path, weights=GROWTH_WEIGHTS,
            flows_per_batch=10,
        )
        assert report.events_applied == 20
        assert report.final_n == engine.graph.n
        assert report.khop_reruns == 0
        assert 0.0 <= report.mean_delivered <= 1.0
        assert "events applied" in report.render()
