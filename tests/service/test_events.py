"""Service event model: validation, JSON round-trip, seeded schedules."""

import pytest

from repro.errors import InvalidParameterError
from repro.faults.plan import random_campaign
from repro.net.topology import random_topology
from repro.service.events import (
    SERVICE_EVENT_KINDS,
    ServiceEvent,
    events_from_fault_plan,
    interleave,
    seeded_schedule,
)


def _topo(seed=5, n=40):
    return random_topology(n, degree=8.0, seed=seed)


class TestServiceEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError):
            ServiceEvent(seq=0, kind="reboot")

    def test_join_needs_position(self):
        with pytest.raises(InvalidParameterError):
            ServiceEvent(seq=0, kind="join")

    def test_leave_needs_node(self):
        with pytest.raises(InvalidParameterError):
            ServiceEvent(seq=0, kind="leave")

    def test_flow_needs_flows(self):
        with pytest.raises(InvalidParameterError):
            ServiceEvent(seq=0, kind="flow")

    def test_loss_bounds(self):
        with pytest.raises(InvalidParameterError):
            ServiceEvent(seq=0, kind="degrade", edges=((0, 1),), loss=1.5)

    def test_record_round_trip_every_kind(self):
        events = [
            ServiceEvent(seq=0, kind="join", position=(3.5, 7.25)),
            ServiceEvent(seq=1, kind="leave", node=4),
            ServiceEvent(seq=2, kind="move", node=2, position=(1.0, 2.0)),
            ServiceEvent(seq=3, kind="link_down", edges=((0, 3), (1, 2))),
            ServiceEvent(seq=4, kind="link_up", edges=((0, 3),)),
            ServiceEvent(seq=5, kind="degrade", edges=((2, 5),), loss=0.25),
            ServiceEvent(seq=6, kind="flow", flows=40),
        ]
        assert {e.kind for e in events} == set(SERVICE_EVENT_KINDS)
        for ev in events:
            assert ServiceEvent.from_record(ev.to_record()) == ev

    def test_stamped_sets_seq(self):
        ev = ServiceEvent(seq=0, kind="flow", flows=3)
        assert ev.stamped(9).seq == 9


class TestSeededSchedule:
    def test_deterministic(self):
        topo = _topo()
        a = seeded_schedule(topo, events=60, seed=3)
        b = seeded_schedule(topo, events=60, seed=3)
        assert a == b
        assert a != seeded_schedule(topo, events=60, seed=4)

    def test_length_and_stamps(self):
        sched = seeded_schedule(_topo(), events=45, seed=1)
        assert len(sched) == 45
        assert [e.seq for e in sched] == list(range(45))

    def test_custom_weights_pure_growth(self):
        sched = seeded_schedule(
            _topo(), events=30, seed=2, weights={
                "join": 0.5, "flow": 0.5, "move": 0.0, "leave": 0.0,
                "link_down": 0.0, "degrade": 0.0,
            },
        )
        assert {e.kind for e in sched} <= {"join", "flow"}
        assert any(e.kind == "join" for e in sched)

    def test_unknown_weight_key_rejected(self):
        with pytest.raises(InvalidParameterError):
            seeded_schedule(_topo(), events=5, seed=1, weights={"crash": 1.0})

    def test_never_removes_same_node_twice(self):
        sched = seeded_schedule(
            _topo(n=30), events=120, seed=9, weights={"leave": 0.4}
        )
        gone = [e.node for e in sched if e.kind == "leave"]
        assert len(gone) == len(set(gone))


class TestFaultPlanAdapter:
    def test_folds_campaign_kinds(self):
        topo = _topo()
        plan = random_campaign(topo, events=40, epochs=8, seed=6)
        sched = events_from_fault_plan(plan)
        assert len(sched) == len(plan.events)
        assert [e.seq for e in sched] == list(range(len(sched)))
        allowed = {"leave", "link_down", "link_up", "degrade"}
        assert {e.kind for e in sched} <= allowed

    def test_join_becomes_service_join_with_position(self):
        topo = _topo()
        plan = random_campaign(
            topo, events=30, epochs=6, seed=4, weights={"join": 0.6}
        )
        fault_joins = [e for e in plan.events if e.kind == "join"]
        assert fault_joins  # the weight bump actually produced arrivals
        sched = events_from_fault_plan(plan)
        joins = [e for e in sched if e.kind == "join"]
        assert [e.position for e in joins] == [
            e.center for e in fault_joins
        ]

    def test_crash_becomes_leave_with_node(self):
        topo = _topo()
        plan = random_campaign(
            topo, events=30, epochs=6, seed=2, weights={"crash": 1.0}
        )
        sched = events_from_fault_plan(plan)
        crashes = [e for e in plan.events if e.kind == "crash"]
        leaves = [e for e in sched if e.kind == "leave"]
        assert crashes  # the weight bump actually produced crashes
        assert [e.node for e in leaves] == [e.node for e in crashes]
        assert all(e.node is not None for e in leaves)


class TestInterleave:
    def test_round_robin_restamps(self):
        flows = tuple(
            ServiceEvent(seq=0, kind="flow", flows=1) for _ in range(3)
        )
        leaves = (ServiceEvent(seq=0, kind="leave", node=1),)
        merged = list(interleave(flows, leaves))
        assert [e.seq for e in merged] == list(range(4))
        assert [e.kind for e in merged] == ["flow", "leave", "flow", "flow"]
