"""Chaos harness: clean campaigns, determinism, and repro rendering."""

import pytest

from repro.errors import InvalidParameterError
from repro.faults.chaos import run_chaos, render_chaos


class TestRunChaos:
    def test_small_campaign_holds_invariants(self):
        report = run_chaos(seed=3, events=60, n=60, flows=80)
        assert report.ok
        assert not report.violations
        assert report.events_applied >= 60
        assert report.checks_run > 0
        # Non-empty batches each ran the edge/backbone/router/loss checks.
        assert any(r.checks for r in report.epochs)

    def test_identical_seed_identical_campaign(self):
        a = run_chaos(seed=11, events=40, n=50, flows=60)
        b = run_chaos(seed=11, events=40, n=50, flows=60)
        assert a.events_applied == b.events_applied
        assert a.violations == b.violations
        assert [
            (r.epoch, r.events_applied, r.alive, r.edges, r.components,
             r.flows_routable, r.delivered, r.checks)
            for r in a.epochs
        ] == [
            (r.epoch, r.events_applied, r.alive, r.edges, r.components,
             r.flows_routable, r.delivered, r.checks)
            for r in b.epochs
        ]

    def test_growth_campaign_holds_invariants(self):
        # Arrivals interleaved with crashes, flaps and jams: the compiled
        # graph, component-local backbones, inheritance identity and the
        # loss ledger must all survive grow+shrink+rewire composition.
        report = run_chaos(
            seed=5, events=60, n=60, flows=80, join_weight=0.3
        )
        assert report.ok, report.violations
        assert report.checks_run > 0
        # The population actually grew past the initial deployment at
        # some point (alive = current n minus dead).
        assert max(r.alive for r in report.epochs) > 60 - 5

    def test_growth_campaign_deterministic(self):
        a = run_chaos(seed=13, events=40, n=50, flows=60, join_weight=0.25)
        b = run_chaos(seed=13, events=40, n=50, flows=60, join_weight=0.25)
        assert a.violations == b.violations
        assert [
            (r.epoch, r.alive, r.edges, r.delivered) for r in a.epochs
        ] == [(r.epoch, r.alive, r.edges, r.delivered) for r in b.epochs]

    def test_join_weight_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_chaos(seed=1, events=10, join_weight=1.0)

    def test_non_localized_algorithm_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_chaos(seed=1, events=10, algorithm="G-MST")

    def test_zero_events_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_chaos(seed=1, events=0)


class TestRenderChaos:
    def test_clean_run_renders_success(self):
        report = run_chaos(seed=4, events=30, n=50, flows=60)
        text = render_chaos(report)
        assert "all invariants held" in text
        assert f"seed={report.seed}" in text

    def test_violation_lines_carry_repro(self):
        report = run_chaos(seed=4, events=30, n=50, flows=60)
        # Forge a violation to exercise the failure rendering path
        # without needing a real engine bug.
        report.violations.append(
            "seed=4 events=12: forged (repro: repro-khop chaos "
            "--seed 4 --events 30)"
        )
        text = render_chaos(report)
        assert "VIOLATION" in text
        assert "repro-khop chaos --seed 4" in text


class TestTraceRepro:
    def test_violation_repro_line_carries_trace_flag(self, monkeypatch):
        # Force invariant 1's CSR check to fail so violate() runs; a
        # traced campaign's repro line must name the trace artifact.
        from repro.faults import chaos as chaos_mod

        monkeypatch.setattr(chaos_mod, "_csr_edge_set", lambda graph: None)
        report = run_chaos(
            seed=4, events=30, n=50, flows=60, trace_path="run.jsonl"
        )
        assert not report.ok
        line = report.violations[0]
        assert "CSR adjacency asymmetric" in line
        assert line.endswith("--trace run.jsonl)")

    def test_untraced_repro_line_has_no_trace_flag(self, monkeypatch):
        from repro.faults import chaos as chaos_mod

        monkeypatch.setattr(chaos_mod, "_csr_edge_set", lambda graph: None)
        report = run_chaos(seed=4, events=30, n=50, flows=60)
        assert not report.ok
        assert "--trace" not in report.violations[0]
