"""Lossy delivery: loss models, retry/backoff accounting, conservation."""

import numpy as np
import pytest

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.faults.delivery import (
    DeliveryReport,
    FlowOutcome,
    LossModel,
    deliver,
)
from repro.net.topology import random_topology
from repro.traffic.load import lossy_load, measure_load
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs


@pytest.fixture(scope="module")
def backbone():
    topo = random_topology(120, degree=7.0, seed=5)
    return build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")


@pytest.fixture(scope="module")
def routed(backbone):
    g = backbone.clustering.graph
    wl = uniform_pairs(g.n, 300, seed=8)
    return BatchRouter(backbone).route_flows(wl, with_shortest=True)


class TestLossModel:
    def test_uniform_applies_everywhere(self):
        m = LossModel.uniform(10, 0.25)
        assert m.num_overrides == 0
        assert m.link_loss(0, 1) == 0.25
        assert m.link_loss(7, 3) == 0.25

    def test_override_replaces_base(self):
        m = LossModel.from_overrides(10, {(2, 5): 0.9}, base_loss=0.1)
        assert m.num_overrides == 1
        assert m.link_loss(2, 5) == 0.9
        assert m.link_loss(5, 2) == 0.9  # orientation-free
        assert m.link_loss(0, 1) == 0.1

    def test_hop_loss_vectorized(self):
        m = LossModel.from_overrides(6, {(0, 1): 0.5, (2, 3): 0.7})
        u = np.asarray([1, 3, 4], dtype=np.int64)
        v = np.asarray([0, 2, 5], dtype=np.int64)
        assert m.hop_loss(u, v).tolist() == [0.5, 0.7, 0.0]

    def test_invalid_rates_rejected(self):
        with pytest.raises(InvalidParameterError):
            LossModel.uniform(5, 1.5)
        with pytest.raises(InvalidParameterError):
            LossModel.from_overrides(5, {(0, 1): -0.1})


class TestLossCombine:
    def test_base_rates_compose(self):
        m = LossModel.uniform(8, 0.5).combine(LossModel.uniform(8, 0.5))
        assert m.base_loss == 0.75
        assert m.link_loss(0, 1) == 0.75

    def test_overrides_union_and_compose(self):
        a = LossModel.from_overrides(8, {(0, 1): 0.5}, base_loss=0.1)
        b = LossModel.from_overrides(8, {(0, 1): 0.2, (2, 3): 0.4})
        m = a.combine(b)
        # both sides have (0,1): 1 - 0.5*0.8; only b has (2,3): it still
        # composes with a's base rate, not with zero
        assert m.link_loss(0, 1) == pytest.approx(1 - 0.5 * 0.8)
        assert m.link_loss(2, 3) == pytest.approx(1 - 0.9 * 0.6)
        # a's base composes with b's zero base everywhere else
        assert m.link_loss(4, 5) == pytest.approx(0.1)

    def test_commutative(self):
        a = LossModel.from_overrides(6, {(0, 1): 0.3}, base_loss=0.05)
        b = LossModel.from_overrides(6, {(1, 2): 0.6})
        ab, ba = a.combine(b), b.combine(a)
        for u, v in ((0, 1), (1, 2), (3, 4)):
            assert ab.link_loss(u, v) == pytest.approx(ba.link_loss(u, v))

    def test_zero_model_is_identity(self):
        a = LossModel.from_overrides(6, {(0, 1): 0.3}, base_loss=0.05)
        m = a.combine(LossModel.uniform(6, 0.0))
        assert m.base_loss == pytest.approx(a.base_loss)
        assert m.link_loss(0, 1) == pytest.approx(0.3)

    def test_mismatched_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            LossModel.uniform(5, 0.1).combine(LossModel.uniform(6, 0.1))


class TestDeliverLimits:
    def test_zero_loss_matches_binary_load(self, backbone, routed):
        report = deliver(routed, LossModel.uniform(120, 0.0), seed=1)
        assert (report.outcome == int(FlowOutcome.DELIVERED)).all()
        assert (report.attempts == 1).all()
        assert (report.failed_hop == -1).all()
        assert (report.completion_epoch == 0).all()
        assert report.delivered_fraction == 1.0
        assert report.lost_packets == 0
        load = measure_load(backbone, routed)
        np.testing.assert_array_equal(report.tx, load.tx)
        np.testing.assert_array_equal(report.rx, load.rx)

    def test_total_loss_drops_everything_at_hop_zero(self, routed):
        report = deliver(
            routed, LossModel.uniform(120, 1.0), seed=1, max_attempts=3
        )
        assert (report.outcome == int(FlowOutcome.DROPPED_AT_HOP)).all()
        assert (report.failed_hop == 0).all()
        assert (report.attempts == 3).all()
        assert report.rx.sum() == 0
        assert report.delivered_fraction == 0.0
        assert report.lost_packets == report.tx.sum()

    def test_backoff_timestamps(self, routed):
        # Attempt i re-enters backoff_base**(i-1) epochs after the
        # previous one, so three doomed attempts finish at 0 + 1 + 2 = 3.
        report = deliver(
            routed,
            LossModel.uniform(120, 1.0),
            seed=1,
            max_attempts=3,
            backoff_base=2,
        )
        assert (report.completion_epoch == 3).all()

    def test_zero_attempts_abandons_all(self, routed):
        report = deliver(
            routed, LossModel.uniform(120, 0.0), seed=1, max_attempts=0
        )
        assert (report.outcome == int(FlowOutcome.ABANDONED)).all()
        assert report.tx.sum() == 0
        assert report.attempts.sum() == 0
        assert report.delivered_fraction == 0.0

    def test_parameter_validation(self, routed):
        m = LossModel.uniform(120, 0.1)
        with pytest.raises(InvalidParameterError):
            deliver(routed, m, seed=1, max_attempts=-1)
        with pytest.raises(InvalidParameterError):
            deliver(routed, m, seed=1, backoff_base=0)


class TestDeliverStochastic:
    def test_same_seed_same_report(self, routed):
        m = LossModel.uniform(120, 0.2)
        a = deliver(routed, m, seed=33)
        b = deliver(routed, m, seed=33)
        for name in ("outcome", "attempts", "failed_hop", "completion_epoch",
                     "tx", "rx"):
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name), err_msg=name
            )

    def test_different_seed_different_fates(self, routed):
        m = LossModel.uniform(120, 0.2)
        a = deliver(routed, m, seed=33)
        b = deliver(routed, m, seed=34)
        assert not np.array_equal(a.tx, b.tx)

    def test_flow_conservation_identity(self, routed):
        report = deliver(routed, LossModel.uniform(120, 0.3), seed=7)
        dem = routed.workload.demands
        delivered = report.outcome == int(FlowOutcome.DELIVERED)
        expected = int((dem * report.attempts).sum() - dem[delivered].sum())
        assert report.lost_packets == expected
        assert report.lost_packets == int(report.tx.sum() - report.rx.sum())

    def test_retries_improve_delivery(self, routed):
        m = LossModel.uniform(120, 0.2)
        naive = deliver(routed, m, seed=5, max_attempts=1)
        persistent = deliver(routed, m, seed=5, max_attempts=4)
        assert persistent.delivered_fraction > naive.delivered_fraction
        assert persistent.mean_attempts > 1.0

    def test_routable_mask_abandons_without_transmitting(self, routed):
        mask = np.ones(routed.num_flows, dtype=bool)
        mask[::2] = False
        report = deliver(
            routed, LossModel.uniform(120, 0.1), seed=2, routable=mask
        )
        assert (
            report.outcome[~mask] == int(FlowOutcome.ABANDONED)
        ).all()
        assert report.attempts[~mask].sum() == 0
        assert (report.outcome[mask] != int(FlowOutcome.ABANDONED)).all()

    def test_bad_mask_shape_rejected(self, routed):
        with pytest.raises(InvalidParameterError):
            deliver(
                routed,
                LossModel.uniform(120, 0.1),
                seed=2,
                routable=np.ones(3, dtype=bool),
            )


class TestRoutedFlowsIntegration:
    def test_with_delivery_annotates_fraction(self, routed):
        report = deliver(routed, LossModel.uniform(120, 0.25), seed=11)
        annotated = routed.with_delivery(report)
        assert routed.delivered_fraction() == 1.0  # binary world untouched
        assert annotated.delivered_fraction() == pytest.approx(
            report.delivered_fraction
        )

    def test_with_delivery_rejects_mismatched_report(self, backbone, routed):
        g = backbone.clustering.graph
        other = BatchRouter(backbone).route_flows(
            uniform_pairs(g.n, 5, seed=1)
        )
        report = deliver(other, LossModel.uniform(120, 0.1), seed=1)
        with pytest.raises(InvalidParameterError):
            routed.with_delivery(report)

    def test_lossy_load_charges_actual_cost(self, backbone, routed):
        report = deliver(routed, LossModel.uniform(120, 0.25), seed=11)
        load = lossy_load(backbone, routed.with_delivery(report), report)
        np.testing.assert_array_equal(load.tx, report.tx)
        np.testing.assert_array_equal(load.rx, report.rx)
        assert load.packet_hops == int(report.tx.sum())
        # Transit is receptions minus delivered flows' terminal receptions
        # — and therefore never negative.
        dem = routed.workload.demands
        delivered = report.outcome == int(FlowOutcome.DELIVERED)
        terminal = np.bincount(
            routed.workload.targets[delivered],
            weights=dem[delivered].astype(np.float64),
            minlength=120,
        )
        np.testing.assert_array_equal(
            load.transit, report.rx - np.rint(terminal).astype(np.int64)
        )
        assert (load.transit >= 0).all()

    def test_lossy_load_rejects_flow_count_mismatch(self, backbone, routed):
        g = backbone.clustering.graph
        other = BatchRouter(backbone).route_flows(
            uniform_pairs(g.n, 5, seed=1), with_shortest=True
        )
        report = deliver(other, LossModel.uniform(120, 0.1), seed=1)
        with pytest.raises(InvalidParameterError):
            lossy_load(backbone, routed, report)

    def test_report_counts_partition_flows(self, routed):
        report = deliver(routed, LossModel.uniform(120, 0.2), seed=3)
        counts = report.counts()
        assert sum(counts.values()) == routed.num_flows
        assert set(counts) == {o.name for o in FlowOutcome}
        assert isinstance(report, DeliveryReport)
