"""Fault plans: seeded determinism, composition, and FaultState compilation."""

import pytest

from repro.errors import InvalidParameterError
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FaultState,
    compose,
    crash_plan,
    degrade_plan,
    edges_crossing_disk,
    flap_plan,
    jam_plan,
    random_campaign,
)
from repro.net.generators import (
    ring_of_cliques,
    topology_from_graph,
    toroidal_grid,
)
from repro.net.graph import Graph
from repro.net.topology import random_topology


def square_graph():
    return Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(epoch=0, kind="meteor")

    def test_negative_epoch_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(epoch=-1, kind="crash", node=0)

    def test_loss_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(epoch=0, kind="degrade", edges=((0, 1),), loss=1.5)


class TestFaultPlan:
    def test_events_sorted_by_epoch_stably(self):
        a = FaultEvent(epoch=2, kind="crash", node=0)
        b = FaultEvent(epoch=0, kind="crash", node=1)
        c = FaultEvent(epoch=2, kind="crash", node=2)
        plan = FaultPlan((a, b, c), epochs=3)
        assert plan.events == (b, a, c)  # sorted, a before c preserved

    def test_batches_cover_every_epoch(self):
        plan = FaultPlan(
            (FaultEvent(epoch=1, kind="crash", node=0),), epochs=4
        )
        batches = list(plan.batches())
        assert [e for e, _ in batches] == [0, 1, 2, 3]
        assert [len(b) for _, b in batches] == [0, 1, 0, 0]

    def test_event_outside_horizon_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan((FaultEvent(epoch=5, kind="crash", node=0),), epochs=3)

    def test_shifted_delays_everything(self):
        plan = FaultPlan(
            (FaultEvent(epoch=1, kind="crash", node=0),), epochs=2
        )
        moved = plan.shifted(3)
        assert moved.events[0].epoch == 4
        assert moved.epochs == 5

    def test_compose_is_stable_and_spans_longest(self):
        p1 = FaultPlan((FaultEvent(epoch=0, kind="crash", node=0),), epochs=2)
        p2 = FaultPlan((FaultEvent(epoch=0, kind="crash", node=1),), epochs=7)
        merged = compose(p1, p2)
        assert merged.epochs == 7
        assert [e.node for e in merged.events] == [0, 1]


class TestSeededBuilders:
    def test_crash_plan_distinct_nodes(self):
        g = toroidal_grid(5, 5)
        plan = crash_plan(g, count=10, epochs=6, seed=3)
        nodes = [e.node for e in plan.events]
        assert len(set(nodes)) == 10
        assert all(e.kind == "crash" for e in plan.events)

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (crash_plan, {"count": 8}),
            (flap_plan, {"count": 8}),
            (degrade_plan, {"count": 8}),
        ],
    )
    def test_same_seed_same_stream(self, builder, kwargs):
        g = ring_of_cliques(4, 5)
        p1 = builder(g, epochs=5, seed=11, **kwargs)
        p2 = builder(g, epochs=5, seed=11, **kwargs)
        assert p1.events == p2.events

    def test_different_seed_different_stream(self):
        g = toroidal_grid(6, 6)
        p1 = crash_plan(g, count=10, epochs=5, seed=1)
        p2 = crash_plan(g, count=10, epochs=5, seed=2)
        assert p1.events != p2.events

    def test_flap_schedules_recovery(self):
        g = square_graph()
        plan = flap_plan(g, count=3, epochs=10, seed=0, down_for=2)
        downs = [e for e in plan.events if e.kind == "link_down"]
        ups = [e for e in plan.events if e.kind == "link_up"]
        assert len(downs) == 3
        for up in ups:
            assert any(
                d.edges == up.edges and up.epoch == d.epoch + 2
                for d in downs
            )

    def test_degrade_rates_within_range(self):
        g = toroidal_grid(4, 4)
        plan = degrade_plan(
            g, count=12, epochs=4, seed=5, loss_range=(0.2, 0.3)
        )
        assert all(0.2 <= e.loss <= 0.3 for e in plan.events)

    def test_jam_plan_compiles_edges(self):
        topo = random_topology(60, degree=8.0, seed=2)
        plan = jam_plan(topo, count=4, epochs=6, seed=2)
        jams = [e for e in plan.events if e.kind == "jam"]
        assert len(jams) == 4
        edge_set = set(topo.graph.edges)
        for ev in jams:
            assert ev.center is not None and ev.radius > 0
            assert set(ev.edges) <= edge_set

    def test_random_campaign_deterministic(self):
        topo = random_topology(50, degree=7.0, seed=9)
        p1 = random_campaign(topo, events=40, epochs=10, seed=9)
        p2 = random_campaign(topo, events=40, epochs=10, seed=9)
        assert p1.events == p2.events
        assert len(p1) >= 40  # recoveries ride along

    def test_random_campaign_caps_crashes(self):
        topo = random_topology(40, degree=7.0, seed=1)
        plan = random_campaign(
            topo,
            events=200,
            epochs=20,
            seed=1,
            crash_fraction=0.1,
            weights={"crash": 1.0, "link_down": 0.0, "degrade": 0.0, "jam": 0.0},
        )
        crashes = [e for e in plan.events if e.kind == "crash"]
        assert len(crashes) == 4  # 10% of 40

    def test_random_campaign_join_opt_in(self):
        topo = random_topology(40, degree=7.0, seed=5)
        plan = random_campaign(
            topo, events=60, epochs=12, seed=5, weights={"join": 0.4}
        )
        joins = [e for e in plan.events if e.kind == "join"]
        assert joins  # the weight bump actually produced arrivals
        # Ids are assigned in plan order starting at n, and every
        # compiled attach link pairs an earlier node with the arrival.
        assert [e.node for e in joins] == list(
            range(topo.graph.n, topo.graph.n + len(joins))
        )
        for ev in joins:
            assert ev.center is not None
            for u, v in ev.edges:
                assert v == ev.node and u < v

    def test_join_weight_zero_keeps_legacy_stream(self):
        # The default campaign must stay bit-for-bit identical now that
        # "join" exists as a kind: a zero weight drops out of the RNG's
        # choice set entirely.
        topo = random_topology(40, degree=7.0, seed=2)
        a = random_campaign(topo, events=50, epochs=10, seed=2)
        b = random_campaign(
            topo, events=50, epochs=10, seed=2, weights={"join": 0.0}
        )
        assert a.events == b.events


class TestEdgesCrossingDisk:
    def test_disk_on_node_covers_incident_edges(self):
        topo = random_topology(40, degree=6.0, seed=4)
        u = 0
        center = tuple(topo.positions[u].tolist())
        covered = set(edges_crossing_disk(topo, center, 1e-9))
        incident = {e for e in topo.graph.edges if u in e}
        assert incident <= covered

    def test_midpoint_disk_covers_crossing_edge(self):
        topo = random_topology(40, degree=6.0, seed=4)
        u, v = topo.graph.edges[0]
        mid = tuple(((topo.positions[u] + topo.positions[v]) / 2).tolist())
        assert (min(u, v), max(u, v)) in edges_crossing_disk(topo, mid, 1e-9)

    def test_far_disk_covers_nothing(self):
        topo = random_topology(30, degree=6.0, seed=4)
        w, h = topo.area
        assert edges_crossing_disk(topo, (w * 100, h * 100), 1.0) == ()


class TestFaultState:
    def test_crash_isolates_node(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch([FaultEvent(epoch=0, kind="crash", node=1)])
        assert state.graph.neighbors(1) == ()
        assert set(state.graph.edges) == {(0, 3), (2, 3)}
        assert set(state.graph.edges) == state.expected_edges()

    def test_link_refcount_overlapping_outages(self):
        g = square_graph()
        e = (0, 1)
        state = FaultState(g)
        state.apply_batch(
            [
                FaultEvent(epoch=0, kind="link_down", edges=(e,)),
                FaultEvent(epoch=0, kind="jam", edges=(e,)),
            ]
        )
        assert e not in set(state.graph.edges)
        # One outage ends: the link is still held down by the other.
        state.apply_batch([FaultEvent(epoch=1, kind="link_up", edges=(e,))])
        assert e not in set(state.graph.edges)
        state.apply_batch([FaultEvent(epoch=2, kind="jam_end", edges=(e,))])
        assert e in set(state.graph.edges)
        assert set(state.graph.edges) == state.expected_edges()

    def test_link_up_never_resurrects_dead_endpoint(self):
        g = square_graph()
        e = (0, 1)
        state = FaultState(g)
        state.apply_batch([FaultEvent(epoch=0, kind="link_down", edges=(e,))])
        state.apply_batch([FaultEvent(epoch=1, kind="crash", node=0)])
        state.apply_batch([FaultEvent(epoch=2, kind="link_up", edges=(e,))])
        assert e not in set(state.graph.edges)
        assert set(state.graph.edges) == state.expected_edges()

    def test_degrade_overrides_and_crash_prunes(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch(
            [FaultEvent(epoch=0, kind="degrade", edges=((0, 1),), loss=0.4)]
        )
        assert state.loss == {(0, 1): 0.4}
        state.apply_batch(
            [FaultEvent(epoch=1, kind="degrade", edges=((0, 1),), loss=0.0)]
        )
        assert state.loss == {}
        state.apply_batch(
            [FaultEvent(epoch=2, kind="degrade", edges=((2, 3),), loss=0.2)]
        )
        state.apply_batch([FaultEvent(epoch=3, kind="crash", node=3)])
        assert state.loss == {}

    def test_join_grows_graph_and_expected_edges(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch(
            [FaultEvent(epoch=0, kind="join", node=4, edges=((0, 4), (2, 4)))]
        )
        assert state.graph.n == 5
        assert {(0, 4), (2, 4)} <= set(state.graph.edges)
        assert state.expected_edges() == set(state.graph.edges)

    def test_join_skips_attach_to_dead_node(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch([FaultEvent(epoch=0, kind="crash", node=0)])
        state.apply_batch(
            [FaultEvent(epoch=1, kind="join", node=4, edges=((0, 4), (2, 4)))]
        )
        assert state.graph.n == 5
        assert (2, 4) in set(state.graph.edges)
        assert (0, 4) not in set(state.graph.edges)
        assert state.expected_edges() == set(state.graph.edges)

    def test_join_numbering_conflict_rejected(self):
        state = FaultState(square_graph())
        with pytest.raises(InvalidParameterError):
            state.apply_batch([FaultEvent(epoch=0, kind="join", node=9)])

    def test_crash_of_joined_node_drops_grown_links(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch(
            [FaultEvent(epoch=0, kind="join", node=4, edges=((0, 4), (2, 4)))]
        )
        state.apply_batch([FaultEvent(epoch=1, kind="crash", node=4)])
        assert (0, 4) not in set(state.graph.edges)
        assert state.expected_edges() == set(state.graph.edges)

    def test_repeat_crash_is_noop(self):
        g = square_graph()
        state = FaultState(g)
        state.apply_batch([FaultEvent(epoch=0, kind="crash", node=2)])
        before = set(state.graph.edges)
        state.apply_batch([FaultEvent(epoch=1, kind="crash", node=2)])
        assert set(state.graph.edges) == before


class TestCampaignRegression:
    """Chained crash+flap+loss campaigns track expected_edges on three
    structurally different graphs, and identical seeds replay identical
    state trajectories."""

    def scenarios(self):
        yield "unit-disk", random_topology(60, degree=8.0, seed=6).graph
        yield "toroidal-grid", toroidal_grid(7, 7)
        yield "ring-of-cliques", ring_of_cliques(5, 6)

    @staticmethod
    def chained_plan(graph, seed):
        return compose(
            crash_plan(graph, count=4, epochs=8, seed=seed),
            flap_plan(graph, count=10, epochs=8, seed=seed + 1, down_for=2),
            degrade_plan(graph, count=8, epochs=8, seed=seed + 2),
        )

    def test_expected_edges_tracks_compiled_graph(self):
        for name, graph in self.scenarios():
            state = FaultState(graph)
            for epoch, g in state.run(self.chained_plan(graph, seed=13)):
                assert set(g.edges) == state.expected_edges(), (
                    f"{name} diverged at epoch {epoch}"
                )

    def test_identical_seed_identical_trajectory(self):
        for name, graph in self.scenarios():
            runs = []
            for _ in range(2):
                state = FaultState(graph)
                trace = [
                    (epoch, tuple(g.edges), tuple(sorted(state.dead)))
                    for epoch, g in state.run(self.chained_plan(graph, 21))
                ]
                runs.append(trace)
            assert runs[0] == runs[1], f"{name} not reproducible"

    def test_growth_campaign_tracks_expected_edges(self):
        # grow+shrink+rewire interleavings: every batch's compiled graph
        # must still match the independent edge bookkeeping.
        topo = random_topology(50, degree=7.0, seed=17)
        plan = random_campaign(
            topo,
            events=80,
            epochs=16,
            seed=17,
            weights={"join": 0.3, "crash": 0.2},
        )
        kinds = {e.kind for e in plan.events}
        assert "join" in kinds and "crash" in kinds
        state = FaultState(topo.graph)
        for epoch, g in state.run(plan):
            assert set(g.edges) == state.expected_edges(), (
                f"diverged at epoch {epoch}"
            )
        assert state.graph.n > topo.graph.n  # the network actually grew

    def test_jam_campaign_on_synthetic_topology(self):
        # topology_from_graph positions are synthetic (radius NaN), so the
        # jam radius must be explicit; the refcount machinery is what is
        # under test, not the geometry.
        graph = toroidal_grid(5, 5)
        topo = topology_from_graph(graph, spacing=10.0)
        plan = jam_plan(topo, count=3, epochs=6, seed=3, radius=12.0)
        state = FaultState(graph)
        for epoch, g in state.run(plan):
            assert set(g.edges) == state.expected_edges()
        assert not state.dead
