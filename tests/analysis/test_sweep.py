"""Tests for the sweep runner."""

import pytest

from repro.analysis.sweep import (
    CellKey,
    SweepConfig,
    default_trial_budget,
    run_cell,
    run_sweep,
)
from repro.errors import InvalidParameterError


class TestDefaultTrialBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert default_trial_budget() == 100
        assert default_trial_budget(17) == 17

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "7")
        assert default_trial_budget() == 7

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "many")
        with pytest.raises(InvalidParameterError):
            default_trial_budget()
        monkeypatch.setenv("REPRO_TRIALS", "0")
        with pytest.raises(InvalidParameterError):
            default_trial_budget()


class TestRunCell:
    def test_small_cell(self):
        cell = run_cell(
            CellKey(40, 6.0, 2), max_trials=3, min_trials=2
        )
        assert cell.trials == 3
        assert cell.num_heads.count == 3
        assert set(cell.gateways) == {
            "NC-Mesh",
            "AC-Mesh",
            "NC-LMST",
            "AC-LMST",
            "G-MST",
        }
        # invariants of the means
        assert cell.gateways["AC-Mesh"].mean <= cell.gateways["NC-Mesh"].mean
        for alg in cell.cds_size:
            assert cell.cds_size[alg].mean == pytest.approx(
                cell.gateways[alg].mean + cell.num_heads.mean
            )

    def test_reproducible(self):
        a = run_cell(CellKey(30, 6.0, 1), max_trials=2, min_trials=2, base_seed=5)
        b = run_cell(CellKey(30, 6.0, 1), max_trials=2, min_trials=2, base_seed=5)
        assert a.cds_size["AC-LMST"].mean == b.cds_size["AC-LMST"].mean

    def test_different_seed_differs(self):
        a = run_cell(CellKey(40, 6.0, 1), max_trials=3, min_trials=3, base_seed=5)
        b = run_cell(CellKey(40, 6.0, 1), max_trials=3, min_trials=3, base_seed=6)
        assert (
            a.cds_size["AC-LMST"].samples
            if hasattr(a.cds_size["AC-LMST"], "samples")
            else a.cds_size["AC-LMST"].mean
        ) != (b.cds_size["AC-LMST"].mean)


class TestRunSweep:
    def _config(self):
        return SweepConfig(
            ns=(30, 40),
            degrees=(6.0,),
            ks=(1, 2),
            max_trials=2,
            min_trials=2,
        )

    def test_all_cells_present(self):
        result = run_sweep(self._config())
        assert len(result.cells) == 4
        cell = result.cell(30, 6.0, 1)
        assert cell.key == CellKey(30, 6.0, 1)

    def test_series_extraction(self):
        result = run_sweep(self._config())
        series = result.series("cds_size", "AC-LMST", 6.0, 1)
        assert [n for n, _ in series] == [30, 40]
        heads = result.series("num_heads", "ignored", 6.0, 2)
        assert len(heads) == 2

    def test_series_unknown_metric(self):
        result = run_sweep(self._config())
        with pytest.raises(InvalidParameterError):
            result.series("latency", "AC-LMST", 6.0, 1)

    def test_csv_rows(self):
        result = run_sweep(self._config())
        rows = result.to_csv_rows()
        assert len(rows) == 4 * 5  # cells x algorithms
        assert {"n", "degree", "k", "algorithm", "cds_size_mean"} <= set(rows[0])

    def test_progress_callback(self):
        seen = []
        run_sweep(self._config(), progress=lambda key, cell: seen.append(key))
        assert len(seen) == 4
