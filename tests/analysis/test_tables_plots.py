"""Tests for table formatting, CSV export, and ASCII plots."""

import pytest

from repro.analysis.ascii_plot import line_plot, scatter_plot
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.analysis.tables import format_table, sweep_table, write_csv
from repro.errors import InvalidParameterError


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        # columns right-justified
        assert lines[2].endswith("22")

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        p = write_csv(tmp_path / "sub" / "t.csv", rows)
        text = p.read_text()
        assert "a,b" in text
        assert "2,y" in text

    def test_empty(self, tmp_path):
        p = write_csv(tmp_path / "e.csv", [])
        assert p.read_text() == ""


class TestSweepTable:
    def test_renders_all_ns(self):
        cfg = SweepConfig(ns=(30, 40), degrees=(6.0,), ks=(1,), max_trials=2, min_trials=2)
        res = run_sweep(cfg)
        out = sweep_table(res, 6.0, 1)
        assert "30" in out and "40" in out
        assert "AC-LMST" in out


class TestLinePlot:
    def test_basic(self):
        out = line_plot({"s": [(0, 0), (10, 10)]}, title="T", xlabel="x", ylabel="y")
        assert "T" in out
        assert "o s" in out
        assert "x: x" in out

    def test_multiple_series_distinct_glyphs(self):
        out = line_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o a" in out and "x b" in out

    def test_constant_series(self):
        out = line_plot({"c": [(0, 5), (10, 5)]})
        assert "5" in out

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            line_plot({})
        with pytest.raises(InvalidParameterError):
            line_plot({"s": []})


class TestScatterPlot:
    def test_basic(self):
        out = scatter_plot({"p": [(0, 0), (5, 5)], "q": [(2, 3)]}, title="S")
        assert "S" in out
        assert "o p" in out and "x q" in out

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            scatter_plot({})

    def test_single_point(self):
        out = scatter_plot({"only": [(1.0, 1.0)]})
        assert "o only" in out
