"""Tests for the statistics engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import AdaptiveEstimator, SummaryStat, summarize, t_halfwidth
from repro.errors import InvalidParameterError


class TestTHalfwidth:
    def test_single_sample_infinite(self):
        assert t_halfwidth([5.0]) == math.inf

    def test_zero_variance(self):
        assert t_halfwidth([3.0, 3.0, 3.0]) == 0.0

    def test_known_value(self):
        # mean 2, sd 1, n=4 -> se = 0.5; t_{0.95, 3} = 2.3534
        samples = [1.0, 2.0, 2.0, 3.0]
        hw = t_halfwidth(samples, confidence=0.90)
        sd = np.std(samples, ddof=1)
        expected = 2.353363 * sd / 2.0
        assert hw == pytest.approx(expected, rel=1e-4)

    def test_bad_confidence(self):
        with pytest.raises(InvalidParameterError):
            t_halfwidth([1.0, 2.0], confidence=1.5)

    @given(st.lists(st.floats(0, 100), min_size=5, max_size=50))
    @settings(max_examples=30)
    def test_higher_confidence_wider(self, xs):
        assert t_halfwidth(xs, 0.99) >= t_halfwidth(xs, 0.90) - 1e-12

    @given(st.lists(st.floats(1, 100), min_size=2, max_size=40))
    @settings(max_examples=30)
    def test_matches_scipy_interval(self, xs):
        from scipy import stats as sps

        hw = t_halfwidth(xs, 0.90)
        mean = np.mean(xs)
        se = np.std(xs, ddof=1) / math.sqrt(len(xs))
        if se == 0:
            assert hw == 0.0
        else:
            lo, hi = sps.t.interval(0.90, len(xs) - 1, loc=mean, scale=se)
            assert hw == pytest.approx((hi - lo) / 2, rel=1e-9)


class TestSummarize:
    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            summarize([])

    def test_basic(self):
        s = summarize([2.0, 4.0])
        assert s.mean == 3.0
        assert s.count == 2
        assert s.std == pytest.approx(math.sqrt(2))

    def test_single(self):
        s = summarize([7.0])
        assert s.mean == 7.0 and s.std == 0.0 and s.halfwidth == math.inf

    def test_relative_halfwidth(self):
        s = SummaryStat(mean=0.0, std=1.0, count=5, halfwidth=0.5, confidence=0.9)
        assert s.relative_halfwidth == math.inf
        s2 = SummaryStat(mean=10.0, std=1.0, count=5, halfwidth=0.5, confidence=0.9)
        assert s2.relative_halfwidth == 0.05

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestAdaptiveEstimator:
    def test_paper_rule_stops_at_max(self):
        est = AdaptiveEstimator(max_trials=5, rel_precision=1e-9, min_trials=2)
        for i in range(5):
            assert not est.done() or i >= 5
            est.add(float(i))
        assert est.done()

    def test_stops_early_on_zero_variance(self):
        est = AdaptiveEstimator(max_trials=100, min_trials=3)
        for _ in range(3):
            est.add(10.0)
        assert est.precise_enough()
        assert est.done()

    def test_respects_min_trials(self):
        est = AdaptiveEstimator(max_trials=100, min_trials=10)
        for _ in range(5):
            est.add(10.0)
        assert not est.done()

    def test_summary_roundtrip(self):
        est = AdaptiveEstimator()
        est.add(1.0)
        est.add(3.0)
        assert est.summary().mean == 2.0
        assert est.samples == (1.0, 3.0)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveEstimator(max_trials=0)
        with pytest.raises(InvalidParameterError):
            AdaptiveEstimator(min_trials=20, max_trials=10)
        with pytest.raises(InvalidParameterError):
            AdaptiveEstimator(rel_precision=0.0)


class TestJainFairness:
    def test_even_allocation_is_one(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_m(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_trivially_fair(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_rejects_negative(self):
        from repro.analysis.stats import jain_fairness

        with pytest.raises(InvalidParameterError):
            jain_fairness([1.0, -2.0])

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_one_over_m_and_one(self, xs):
        from repro.analysis.stats import jain_fairness

        f = jain_fairness(xs)
        assert 1.0 / len(xs) - 1e-9 <= f <= 1.0 + 1e-9
