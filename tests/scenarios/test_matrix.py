"""Seeded end-to-end scenario regression matrix.

Every cell of generators × workloads × oracle backends × static/mobile
runs the full pipeline (cluster → backbone → batch-route → account) and
asserts the structural invariants that must hold in *any* configuration:

* routed walks are real walks (every hop an edge, endpoints match);
* flow conservation (every flow contributes exactly ``demand × hops``
  transmits/receives and ``demand × (hops - 1)`` forwards);
* stretch >= 1 against the backend's own shortest distances;
* the clustering verifies, and a repaired clustering re-verifies after a
  seeded failure;
* mobile cells additionally require the edge-delta engine to reproduce
  the from-scratch rebuild walk-for-walk.

A representative diagonal runs in tier-1; the full cross product is
marked ``slow`` (``make test-all``, CI's scenario-matrix job).
"""

import numpy as np
import pytest

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.maintenance.repair import clustering_still_valid, repair
from repro.net.generators import ring_of_cliques, toroidal_grid
from repro.net.topology import random_topology
from repro.traffic.load import measure_load
from repro.traffic.mobile import simulate_mobile_traffic
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import make_workload

K = 2
ALGORITHM = "AC-LMST"
FLOWS = 240
SEED = 97

GENERATORS = {
    "unit-disk": lambda: random_topology(120, degree=7.0, seed=SEED).graph,
    "toroidal": lambda: toroidal_grid(9, 11),
    "ring-of-cliques": lambda: ring_of_cliques(10, 6),
}
WORKLOAD_KINDS = ("uniform", "cbr", "hotspot", "gossip")
BACKENDS = ("dense", "lazy", "landmark")

#: Cells that run in tier-1 (one per generator / workload / backend so
#: every axis keeps quick coverage); the rest are slow.
QUICK_STATIC = {
    ("unit-disk", "uniform", "lazy"),
    ("unit-disk", "hotspot", "dense"),
    ("toroidal", "gossip", "landmark"),
    ("ring-of-cliques", "cbr", "lazy"),
}
QUICK_MOBILE = {("uniform", "lazy")}


def _static_cells():
    for gen in GENERATORS:
        for kind in WORKLOAD_KINDS:
            for backend in BACKENDS:
                cell = (gen, kind, backend)
                marks = [] if cell in QUICK_STATIC else [pytest.mark.slow]
                yield pytest.param(*cell, marks=marks, id="-".join(cell))


def _mobile_cells():
    for kind in WORKLOAD_KINDS:
        for backend in BACKENDS:
            cell = (kind, backend)
            marks = [] if cell in QUICK_MOBILE else [pytest.mark.slow]
            yield pytest.param(*cell, marks=marks, id="mobile-" + "-".join(cell))


def _assert_routed_invariants(graph, backbone, wl, routed):
    # Walks are valid backbone-routed walks on the real graph.
    assert len(routed.walks) == wl.num_flows
    for i, walk in enumerate(routed.walks):
        assert walk[0] == wl.sources[i]
        assert walk[-1] == wl.targets[i]
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(a, b), f"walk {i} uses non-edge ({a},{b})"
    # Stretch >= 1 against the backend's own shortest distances.
    assert (routed.hops >= routed.shortest).all()
    assert (routed.shortest >= 1).all()
    # Flow conservation: demand-weighted transmit/receive/forward sums.
    load = measure_load(backbone, routed)
    demands = wl.demands
    assert load.packet_hops == int((demands * routed.hops).sum())
    assert int(load.tx.sum()) == load.packet_hops
    assert int(load.rx.sum()) == load.packet_hops
    assert int(load.transit.sum()) == int(
        (demands * (routed.hops - 1)).sum()
    )
    assert load.mean_stretch >= 1.0


@pytest.mark.parametrize("gen,kind,backend", list(_static_cells()))
def test_static_cell(gen, kind, backend):
    graph = GENERATORS[gen]()
    graph.use_distance_backend(backend)
    wl = make_workload(kind, graph.n, FLOWS, seed=SEED)
    clustering = khop_cluster(graph, K)
    # Every node within K hops of its head, on this backend.
    assert clustering_still_valid(clustering, graph)
    backbone = build_backbone(clustering, ALGORITHM)
    routed = BatchRouter(backbone).route_flows(wl, with_shortest=True)
    _assert_routed_invariants(graph, backbone, wl, routed)
    # The balance= mode must keep every invariant while only swapping
    # inter-cluster head walks within the stretch bound, deterministically.
    balancer = BatchRouter(backbone)
    balanced = balancer.route_flows(wl, with_shortest=True, balance=True)
    _assert_routed_invariants(graph, backbone, wl, balanced)
    hr = balancer.router
    for i, (seq, canon) in enumerate(
        zip(balanced.head_paths, routed.head_paths)
    ):
        assert bool(seq) == bool(canon)
        if not seq:
            assert balanced.walks[i] == routed.walks[i]
            continue
        assert (seq[0], seq[-1]) == (canon[0], canon[-1])
        assert hr.seq_weight(seq) <= 1.5 * max(hr.seq_weight(canon), 1)
        walk_iter = iter(balanced.walks[i])
        assert all(h in walk_iter for h in seq)
    again = BatchRouter(backbone).route_flows(wl, with_shortest=True, balance=True)
    assert again.walks == balanced.walks
    # Repaired clusterings re-verify: kill one seeded survivor of each
    # role class that exists and push it through the §3.3 ladder (repair
    # runs the full verification battery internally).
    rng = np.random.default_rng(SEED)
    victims = {int(rng.choice(backbone.heads))}
    non_heads = [u for u in graph.nodes() if u not in set(backbone.heads)]
    victims.add(int(rng.choice(non_heads)))
    for victim in sorted(victims):
        outcome = repair(backbone, victim)
        assert outcome.partitioned or outcome.backbone is not None
        if outcome.backbone is not None:
            assert clustering_still_valid(
                outcome.backbone.clustering,
                outcome.backbone.clustering.graph,
                exclude={victim},
            )


@pytest.mark.parametrize("kind,backend", list(_mobile_cells()))
def test_mobile_cell(kind, backend):
    topo = random_topology(120, degree=7.0, seed=SEED)
    topo.graph.use_distance_backend(backend)
    wl = make_workload(kind, topo.graph.n, FLOWS, seed=SEED)
    kw = dict(snapshots=3, speed=(0.1, 0.5), seed=SEED, collect_walks=True)
    delta = simulate_mobile_traffic(topo, K, wl, engine="delta", **kw)
    rebuild = simulate_mobile_traffic(topo, K, wl, engine="rebuild", **kw)
    # The tentpole contract: edge-delta maintenance is walk-invisible.
    assert delta.walks == rebuild.walks
    for e in delta.routed_epochs():
        assert e.mean_stretch >= 1.0
        assert e.delivered == 1.0
        assert e.cds_size >= e.num_heads > 0
