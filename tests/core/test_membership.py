"""Tests for membership (join) policies."""

import numpy as np
import pytest

from repro.core.membership import (
    DistanceBasedJoin,
    IDBasedJoin,
    JoinContext,
    SizeBasedJoin,
    resolve_membership,
)
from repro.errors import InvalidParameterError


def ctx(candidates, distances, sizes, node=42):
    return JoinContext(node=node, candidates=candidates, distances=distances, sizes=sizes)


class TestJoinContext:
    def test_requires_candidates(self):
        with pytest.raises(InvalidParameterError):
            ctx([], [], [])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            ctx([1, 2], [1], [1, 1])


class TestPolicies:
    def test_id_based(self):
        assert IDBasedJoin().choose(ctx([7, 3, 9], [1, 2, 1], [5, 1, 1])) == 3

    def test_distance_based(self):
        assert DistanceBasedJoin().choose(ctx([7, 3, 9], [2, 3, 1], [1, 1, 1])) == 9

    def test_distance_tie_breaks_by_id(self):
        assert DistanceBasedJoin().choose(ctx([7, 3], [2, 2], [1, 1])) == 3

    def test_size_based(self):
        assert SizeBasedJoin().choose(ctx([7, 3, 9], [1, 1, 1], [4, 2, 8])) == 3

    def test_size_tie_breaks_by_distance_then_id(self):
        assert SizeBasedJoin().choose(ctx([7, 3], [1, 2], [4, 4])) == 7
        assert SizeBasedJoin().choose(ctx([7, 3], [2, 2], [4, 4])) == 3

    def test_names(self):
        assert IDBasedJoin().name == "id-based"
        assert DistanceBasedJoin().name == "distance-based"
        assert SizeBasedJoin().name == "size-based"


class TestResolver:
    def test_default(self):
        assert isinstance(resolve_membership(None), IDBasedJoin)

    def test_by_name(self):
        assert isinstance(resolve_membership("size-based"), SizeBasedJoin)

    def test_instance_passthrough(self):
        p = DistanceBasedJoin()
        assert resolve_membership(p) is p

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            resolve_membership("random")

    def test_bad_type(self):
        with pytest.raises(InvalidParameterError):
            resolve_membership(3.14)


class TestChooseBatch:
    """The vectorized batch path against per-node choose() calls."""

    @staticmethod
    def segments():
        # three joining nodes: {3, 9}, {3}, {3, 9, 15} (heads ascending)
        nodes = np.asarray([10, 11, 12], dtype=np.int64)
        heads = np.asarray([3, 9, 15], dtype=np.int64)
        cand_indptr = np.asarray([0, 2, 3, 6], dtype=np.int64)
        cand_heads = np.asarray([3, 9, 3, 3, 9, 15], dtype=np.int64)
        cand_dists = np.asarray([2, 1, 1, 2, 2, 1], dtype=np.int64)
        return nodes, heads, cand_indptr, cand_heads, cand_dists

    @pytest.mark.parametrize(
        "policy", [IDBasedJoin(), DistanceBasedJoin(), SizeBasedJoin()]
    )
    def test_batch_matches_sequential_reference(self, policy):
        nodes, heads, indptr, cand_heads, cand_dists = self.segments()
        got = policy.choose_batch(nodes, heads, indptr, cand_heads, cand_dists)
        # replay the engine's sequential admission with scalar choose()
        sizes = {int(h): 1 for h in heads.tolist()}
        want = []
        for j, u in enumerate(nodes.tolist()):
            s, e = int(indptr[j]), int(indptr[j + 1])
            cands = cand_heads[s:e].tolist()
            chosen = policy.choose(
                JoinContext(
                    node=u,
                    candidates=cands,
                    distances=cand_dists[s:e].tolist(),
                    sizes=[sizes[h] for h in cands],
                )
            )
            sizes[chosen] += 1
            want.append(chosen)
        assert got.tolist() == want

    def test_rogue_policy_rejected(self):
        class Rogue(SizeBasedJoin):
            def choose(self, ctx):
                return 999  # never a candidate

        nodes, heads, indptr, cand_heads, cand_dists = self.segments()
        with pytest.raises(InvalidParameterError):
            Rogue().choose_batch(nodes, heads, indptr, cand_heads, cand_dists)
