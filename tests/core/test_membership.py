"""Tests for membership (join) policies."""

import pytest

from repro.core.membership import (
    DistanceBasedJoin,
    IDBasedJoin,
    JoinContext,
    SizeBasedJoin,
    resolve_membership,
)
from repro.errors import InvalidParameterError


def ctx(candidates, distances, sizes, node=42):
    return JoinContext(node=node, candidates=candidates, distances=distances, sizes=sizes)


class TestJoinContext:
    def test_requires_candidates(self):
        with pytest.raises(InvalidParameterError):
            ctx([], [], [])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            ctx([1, 2], [1], [1, 1])


class TestPolicies:
    def test_id_based(self):
        assert IDBasedJoin().choose(ctx([7, 3, 9], [1, 2, 1], [5, 1, 1])) == 3

    def test_distance_based(self):
        assert DistanceBasedJoin().choose(ctx([7, 3, 9], [2, 3, 1], [1, 1, 1])) == 9

    def test_distance_tie_breaks_by_id(self):
        assert DistanceBasedJoin().choose(ctx([7, 3], [2, 2], [1, 1])) == 3

    def test_size_based(self):
        assert SizeBasedJoin().choose(ctx([7, 3, 9], [1, 1, 1], [4, 2, 8])) == 3

    def test_size_tie_breaks_by_distance_then_id(self):
        assert SizeBasedJoin().choose(ctx([7, 3], [1, 2], [4, 4])) == 7
        assert SizeBasedJoin().choose(ctx([7, 3], [2, 2], [4, 4])) == 3

    def test_names(self):
        assert IDBasedJoin().name == "id-based"
        assert DistanceBasedJoin().name == "distance-based"
        assert SizeBasedJoin().name == "size-based"


class TestResolver:
    def test_default(self):
        assert isinstance(resolve_membership(None), IDBasedJoin)

    def test_by_name(self):
        assert isinstance(resolve_membership("size-based"), SizeBasedJoin)

    def test_instance_passthrough(self):
        p = DistanceBasedJoin()
        assert resolve_membership(p) is p

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            resolve_membership("random")

    def test_bad_type(self):
        with pytest.raises(InvalidParameterError):
            resolve_membership(3.14)
