"""Incremental clustering admission: ``admit_nodes`` on grown graphs.

The arrival analogue of §3.3 repair: new nodes join a head within ``k``
through the clustering's membership policy, or declare when uncovered —
without re-running the global algorithm.  The contract checked here is
the cover property (``clustering_still_valid``) plus policy fidelity,
not the initial rounds' head independence (arrivals, like splices, may
bridge clusters).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.clustering import (
    Clustering,
    admit_nodes,
    khop_cluster,
    resolve_head_conflicts,
)
from repro.errors import InvalidParameterError
from repro.maintenance.repair import clustering_still_valid
from repro.net.graph import Graph
from repro.net.topology import random_topology


def _grown(topo_seed=5, n=50, k=2, membership=None):
    topo = random_topology(n, 6, seed=topo_seed)
    g = topo.graph.use_distance_backend("lazy")
    c = khop_cluster(g, k, membership=membership)
    return g, c


class TestAdmitNodes:
    def test_join_preserves_cover(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            g, c = _grown(topo_seed=seed + 1)
            attach = sorted(
                int(u) for u in rng.choice(g.n, size=3, replace=False)
            )
            g2 = g.with_nodes(1, [(u, g.n) for u in attach])
            c2 = admit_nodes(c, g2)
            assert len(c2.head_of) == g2.n
            assert clustering_still_valid(c2, g2)
            # old assignments untouched
            assert c2.head_of[: g.n] == c.head_of
            # join distance within k
            x = g.n
            assert g2.hop_distance(x, c2.head_of[x]) <= c.k

    def test_isolated_arrival_declares(self):
        g, c = _grown()
        g2 = g.with_nodes(1)
        c2 = admit_nodes(c, g2)
        assert c2.head_of[g.n] == g.n
        assert g.n in c2.heads
        assert c2.heads[: len(c.heads)] == c.heads

    def test_out_of_range_arrival_declares(self):
        # pendant chain of length k+1 hangs the last node out of reach
        g, c = _grown(k=1)
        k = c.k
        chain = [(0, g.n)] + [(g.n + i, g.n + i + 1) for i in range(k)]
        g2 = g.with_nodes(k + 1, chain)
        c2 = admit_nodes(c, g2)
        last = g2.n - 1
        # nodes within k of a head joined; the far end declared or joined
        # an earlier declared arrival — either way the cover holds
        assert clustering_still_valid(c2, g2)
        assert c2.head_of[last] != -1

    def test_earlier_declared_arrival_is_candidate(self):
        # two isolated-from-old nodes wired to each other: the first
        # declares, the second must join it (not declare a second head)
        g, c = _grown()
        g2 = g.with_nodes(2, [(g.n, g.n + 1)])
        c2 = admit_nodes(c, g2)
        assert c2.head_of[g.n] == g.n
        assert c2.head_of[g.n + 1] == g.n

    @pytest.mark.parametrize(
        "membership", ["id-based", "distance-based", "size-based"]
    )
    def test_policy_fidelity(self, membership):
        g, c = _grown(membership=membership)
        k = c.k
        rng = np.random.default_rng(7)
        attach = sorted(int(u) for u in rng.choice(g.n, size=2, replace=False))
        g2 = g.with_nodes(1, [(u, g.n) for u in attach])
        c2 = admit_nodes(c, g2)
        x = g.n
        chosen = c2.head_of[x]
        cands = [
            (h, g2.hop_distance(x, h)) for h in c.heads
            if g2.hop_distance(x, h) <= k
        ]
        assert cands, "arrival attached to the giant component is covered"
        if membership == "id-based":
            assert chosen == min(h for h, _ in cands)
        elif membership == "distance-based":
            assert chosen == min((d, h) for h, d in cands)[1]
        else:
            sizes = c.cluster_sizes()
            assert chosen == min((sizes[h], d, h) for h, d in cands)[2]
        assert c2.membership_name == membership

    def test_size_based_sees_current_occupancy(self):
        # Two sequential admissions into the same reach: the second must
        # see the first arrival counted in its cluster's size.
        g, c = _grown(membership="size-based")
        rng = np.random.default_rng(9)
        attach = sorted(int(u) for u in rng.choice(g.n, size=2, replace=False))
        g2 = g.with_nodes(1, [(u, g.n) for u in attach])
        c2 = admit_nodes(c, g2)
        first = c2.head_of[g.n]
        assert c2.cluster_sizes()[first] == c.cluster_sizes()[first] + 1

    def test_provenance_and_rounds_carried(self):
        g, c = _grown()
        g2 = g.with_nodes(1, [(0, g.n)])
        c2 = admit_nodes(c, g2)
        assert c2.rounds == c.rounds
        assert c2.priority_name == c.priority_name
        assert c2.membership_name == c.membership_name
        assert c2.k == c.k
        assert c2.graph is g2

    def test_same_graph_is_identity(self):
        g, c = _grown()
        assert admit_nodes(c, g) is c

    def test_rejects_shrunken_or_foreign_graph(self):
        g, c = _grown()
        with pytest.raises(InvalidParameterError):
            admit_nodes(c, Graph(g.n - 1, [(0, 1)]))
        with pytest.raises(InvalidParameterError):
            admit_nodes(c, Graph(g.n, [(0, 1)]))

    def test_resolve_noop_after_plain_admission(self):
        # admitting member arrivals never moves heads closer together
        g, c = _grown()
        g2 = g.with_nodes(1, [(0, g.n)])
        c2 = admit_nodes(c, g2)
        assert resolve_head_conflicts(c2) is c2

    def test_matches_scalar_semantics_chain(self):
        # a long chain of single-node arrivals stays a valid clustering
        # and every joined arrival sits within k of its head
        g, c = _grown(topo_seed=11)
        rng = np.random.default_rng(3)
        for _ in range(15):
            deg = int(rng.integers(1, 4))
            attach = sorted(
                int(u) for u in rng.choice(g.n, size=deg, replace=False)
            )
            g2 = g.with_nodes(1, [(u, g.n) for u in attach])
            c = admit_nodes(c, g2)
            g = g2
        assert clustering_still_valid(c, g)
        assert isinstance(c, Clustering)
        for x in range(50, g.n):
            h = c.head_of[x]
            assert h == x or g.hop_distance(x, h) <= c.k


class TestResolveHeadConflicts:
    """Local head-merge after growth breaks head independence."""

    def test_fresh_clustering_is_identity(self):
        g, c = _grown()
        assert resolve_head_conflicts(c) is c

    def test_shortcut_edge_demotes_higher_id_head(self):
        g, c = _grown()
        h1, h2 = c.heads[0], c.heads[1]
        g2 = g.with_edge_delta(added=[(h1, h2)])
        c2 = resolve_head_conflicts(replace(c, graph=g2))
        assert h1 in c2.heads
        assert h2 not in c2.heads
        assert clustering_still_valid(c2, g2)

    def test_merge_restores_pairwise_separation(self):
        g, c = _grown(topo_seed=3)
        h1, h2 = c.heads[0], c.heads[1]
        g2 = g.with_edge_delta(added=[(h1, h2)])
        c2 = resolve_head_conflicts(replace(c, graph=g2))
        for i, a in enumerate(c2.heads):
            for b in c2.heads[i + 1:]:
                assert g2.hop_distance(a, b) > c.k

    def test_orphan_out_of_reach_redeclares(self):
        # path 0-1-2 with k=1 and adjacent heads {0, 1}: head 1 is
        # demoted, node 1 re-admits to head 0, node 2 (two hops from 0)
        # must re-declare rather than be left uncovered
        g = Graph(3, [(0, 1), (1, 2)])
        c = Clustering(
            graph=g, k=1, head_of=(0, 1, 1), heads=(0, 1), rounds=1
        )
        c2 = resolve_head_conflicts(c)
        assert c2.heads == (0, 2)
        assert c2.head_of == (0, 0, 2)
        assert clustering_still_valid(c2, g)

    def test_provenance_carried_through_merge(self):
        g, c = _grown(membership="distance-based")
        h1, h2 = c.heads[0], c.heads[1]
        g2 = g.with_edge_delta(added=[(h1, h2)])
        c2 = resolve_head_conflicts(replace(c, graph=g2))
        assert c2.k == c.k
        assert c2.rounds == c.rounds
        assert c2.priority_name == c.priority_name
        assert c2.membership_name == c.membership_name
