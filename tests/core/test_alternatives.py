"""Tests for the related-work baselines: Max-Min d-cluster and k-clusters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import khop_cluster
from repro.core.kcluster import k_clusters, kcluster_stats, power_graph
from repro.core.maxmin import maxmin_cluster
from repro.core.validate import check_dominating, check_partition
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.net.generators import complete_graph, cycle_graph, grid_graph, path_graph
from repro.net.graph import Graph

from ..conftest import connected_graphs


class TestMaxMin:
    def test_invalid_d(self):
        with pytest.raises(InvalidParameterError):
            maxmin_cluster(path_graph(4), 0)

    def test_disconnected(self):
        with pytest.raises(DisconnectedGraphError):
            maxmin_cluster(Graph(4, [(0, 1)]), 1)

    def test_single_node(self):
        cl = maxmin_cluster(Graph(1), 2)
        assert cl.heads == (0,)

    def test_complete_graph_one_head(self):
        cl = maxmin_cluster(complete_graph(6), 1)
        # the max ID (5) floods everywhere, then floods back: single head
        assert len(cl.heads) == 1

    def test_path_dominating(self):
        for d in (1, 2, 3):
            cl = maxmin_cluster(path_graph(12), d)
            check_partition(cl)
            check_dominating(cl)

    def test_provenance(self):
        cl = maxmin_cluster(grid_graph(4, 4), 2)
        assert cl.priority_name == "maxmin"
        assert cl.rounds == 4  # 2d synchronous rounds

    @given(connected_graphs(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_always_partition_and_dominating(self, g, d):
        cl = maxmin_cluster(g, d)
        check_partition(cl)
        check_dominating(cl)

    @given(connected_graphs(min_n=6, max_n=16), st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_comparison_with_lowest_id(self, g, d):
        """Max-Min lacks the independent-set guarantee; both dominate."""
        mm = maxmin_cluster(g, d)
        li = khop_cluster(g, d)
        check_dominating(mm)
        check_dominating(li)
        # both produce at least one head; element counts are comparable
        assert mm.num_clusters >= 1 and li.num_clusters >= 1


class TestKClusters:
    def test_power_graph_path(self):
        g = path_graph(4)
        h = power_graph(g, 2)
        assert h.has_edge(0, 2) and h.has_edge(1, 3)
        assert not h.has_edge(0, 3)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            power_graph(path_graph(3), 0)

    def test_path_k1_clusters_are_edges(self):
        clusters = k_clusters(path_graph(4), 1)
        assert set(clusters) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_clusters_overlap(self):
        stats = kcluster_stats(cycle_graph(8), 2)
        assert stats["mean_multiplicity"] > 1.0  # overlapping by design
        assert stats["num_clusters"] >= 2

    def test_complete_graph_single_cluster(self):
        clusters = k_clusters(complete_graph(5), 1)
        assert clusters == [frozenset(range(5))]

    @given(connected_graphs(max_n=12), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_definitional_properties(self, g, k):
        """Every k-cluster is mutually k-reachable and maximal."""
        dist = g.hop_distances
        clusters = k_clusters(g, k)
        # covers every node
        covered = set().union(*clusters) if clusters else set()
        assert covered == set(g.nodes())
        for c in clusters:
            members = sorted(c)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert dist[u, v] <= k
            # maximality: no outside node is within k of all members
            for w in g.nodes():
                if w not in c:
                    assert any(dist[w, u] > k for u in members)

    @given(connected_graphs(max_n=12), st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_paper_definition_is_disjoint_krishna_is_not(self, g, k):
        """The §1 contrast: our clusters partition, k-clusters overlap."""
        li = khop_cluster(g, k)
        sizes = sum(len(li.members(h)) for h in li.heads)
        assert sizes == g.n  # disjoint cover
        stats = kcluster_stats(g, k)
        assert stats["mean_multiplicity"] >= 1.0
