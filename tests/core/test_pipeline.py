"""Tests for the end-to-end backbone pipelines (the paper's five algorithms)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cds.verify import verify_backbone
from repro.core.pipeline import (
    ALGORITHMS,
    algorithm_names,
    build_all_backbones,
    build_backbone,
    run_pipeline,
)
from repro.core.clustering import khop_cluster
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph, two_cliques_bridge
from repro.net.paths import PathOracle

from ..conftest import connected_graphs, ks


class TestRegistry:
    def test_names(self):
        assert algorithm_names() == (
            "NC-Mesh",
            "AC-Mesh",
            "NC-LMST",
            "AC-LMST",
            "G-MST",
        )

    def test_unknown_algorithm(self):
        cl = khop_cluster(path_graph(4), 1)
        with pytest.raises(InvalidParameterError):
            build_backbone(cl, "BOGUS")


class TestBuildBackbone:
    def test_path_nc_mesh(self):
        cl = khop_cluster(path_graph(6), 1)
        res = build_backbone(cl, "NC-Mesh")
        assert res.gateways == frozenset({1, 3})
        assert res.cds == frozenset({0, 1, 2, 3, 4})
        assert res.cds_size == 5
        assert res.num_gateways == 2

    def test_gmst_has_no_neighbor_map(self):
        cl = khop_cluster(grid_graph(4, 4), 1)
        res = build_backbone(cl, "G-MST")
        assert res.neighbor_map is None
        assert len(res.selected_links) == len(cl.heads) - 1

    def test_localized_algorithms_have_neighbor_map(self):
        cl = khop_cluster(grid_graph(4, 4), 1)
        for alg in ("NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST"):
            res = build_backbone(cl, alg)
            assert res.neighbor_map is not None

    def test_single_cluster_empty_backbone(self):
        cl = khop_cluster(grid_graph(2, 3), 3)
        for alg in ALGORITHMS:
            res = build_backbone(cl, alg)
            assert res.gateways == frozenset()
            assert res.cds_size == 1
            verify_backbone(res)

    def test_shared_oracle_consistency(self):
        g = grid_graph(5, 5)
        cl = khop_cluster(g, 1)
        oracle = PathOracle(g)
        a = build_backbone(cl, "AC-LMST", oracle=oracle)
        b = build_backbone(cl, "AC-LMST")
        assert a.gateways == b.gateways  # oracle caching never changes results


class TestRunPipeline:
    def test_accepts_graph_and_topology(self, topo100):
        res_t = run_pipeline(topo100, k=2)
        res_g = run_pipeline(topo100.graph, k=2)
        assert res_t.gateways == res_g.gateways

    def test_default_algorithm_is_aclmst(self, topo100):
        assert run_pipeline(topo100, k=2).algorithm == "AC-LMST"

    def test_policies_forwarded(self, topo100):
        res = run_pipeline(
            topo100, k=2, membership="distance-based", priority="highest-degree"
        )
        assert res.clustering.membership_name == "distance-based"
        assert res.clustering.priority_name == "highest-degree"


class TestTheoremsEndToEnd:
    @given(connected_graphs(), ks, st.sampled_from(ALGORITHMS))
    @settings(max_examples=80, deadline=None)
    def test_every_backbone_valid(self, g, k, alg):
        """Theorem 2 (and its NC/mesh analogues): backbones verify."""
        cl = khop_cluster(g, k)
        res = build_backbone(cl, alg)
        verify_backbone(res)

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_ac_mesh_never_more_gateways_than_nc_mesh(self, g, k):
        cl = khop_cluster(g, k)
        res = build_all_backbones(cl, ("NC-Mesh", "AC-Mesh"))
        assert res["AC-Mesh"].gateways <= res["NC-Mesh"].gateways

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_gmst_no_worse_than_best_localized(self, g, k):
        """G-MST (with n_heads - 1 links) uses the fewest selected links."""
        cl = khop_cluster(g, k)
        res = build_all_backbones(cl)
        n_links_gmst = len(res["G-MST"].selected_links)
        for alg in ("NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST"):
            assert n_links_gmst <= max(len(res[alg].selected_links), n_links_gmst)

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_lmst_links_at_most_mesh_links(self, g, k):
        cl = khop_cluster(g, k)
        res = build_all_backbones(cl, ("NC-Mesh", "NC-LMST", "AC-Mesh", "AC-LMST"))
        assert res["NC-LMST"].selected_links <= res["NC-Mesh"].selected_links
        assert res["AC-LMST"].selected_links <= res["AC-Mesh"].selected_links

    def test_two_cliques_bridge_gateways_on_bridge(self):
        g = two_cliques_bridge(5, 4)  # bridge nodes 5..8
        cl = khop_cluster(g, 1)
        res = build_backbone(cl, "AC-LMST")
        verify_backbone(res)
        # connecting the cliques requires bridge nodes as gateways
        assert res.gateways & {5, 6, 7, 8}
