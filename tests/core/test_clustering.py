"""Tests for the k-hop clustering engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import khop_cluster
from repro.core.priorities import ExplicitPriority, HighestDegree
from repro.core.validate import validate_clustering
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.net.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    two_cliques_bridge,
)
from repro.net.graph import Graph
from repro.net.topology import random_topology

from ..conftest import connected_graphs, ks


class TestBasics:
    def test_k_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            khop_cluster(path_graph(3), 0)

    def test_disconnected_raises_by_default(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            khop_cluster(g, 1)

    def test_disconnected_allowed_explicitly(self):
        g = Graph(4, [(0, 1), (2, 3)])
        cl = khop_cluster(g, 1, require_connected=False)
        assert set(cl.heads) == {0, 2}

    def test_single_node(self):
        cl = khop_cluster(Graph(1), 1)
        assert cl.heads == (0,)
        assert cl.head_of == (0,)

    def test_complete_graph_single_cluster(self):
        cl = khop_cluster(complete_graph(6), 1)
        assert cl.heads == (0,)
        assert all(h == 0 for h in cl.head_of)

    def test_provenance_recorded(self):
        cl = khop_cluster(path_graph(5), 2, membership="distance-based")
        assert cl.priority_name == "lowest-id"
        assert cl.membership_name == "distance-based"


class TestLowestIdSemantics:
    def test_path_k1(self):
        # path 0-1-2-3-4-5: 0 declares; 1 joins; 2 declares (lowest among
        # remaining in its 1-hop: {2,3}); 3 joins; 4 declares; 5 joins.
        cl = khop_cluster(path_graph(6), 1)
        assert cl.heads == (0, 2, 4)
        assert cl.head_of == (0, 0, 2, 2, 4, 4)

    def test_path_k2(self):
        # 0 covers 1,2; then 3 is lowest among {3,4,5}; covers 4,5.
        cl = khop_cluster(path_graph(6), 2)
        assert cl.heads == (0, 3)
        assert cl.head_of == (0, 0, 0, 3, 3, 3)

    def test_star_hub_not_head_when_high_id(self):
        # star with hub 0: 0 is lowest ID, so it heads everything at k=1.
        cl = khop_cluster(star_graph(5), 1)
        assert cl.heads == (0,)

    def test_two_cliques_k1(self):
        g = two_cliques_bridge(4, 3)  # A=0..3, bridge=4,5,6, B=7..10
        cl = khop_cluster(g, 1)
        assert 0 in cl.heads  # lowest overall
        assert 7 in cl.heads  # lowest in far clique after bridge rounds
        validate_clustering(cl)

    def test_heads_prefer_low_ids(self):
        cl = khop_cluster(grid_graph(4, 4), 2)
        assert cl.heads[0] == 0
        validate_clustering(cl)

    def test_iterative_rounds_counted(self):
        cl = khop_cluster(path_graph(10), 1)
        assert cl.rounds >= 2  # needs multiple declare/join rounds


class TestMembershipPolicies:
    def test_id_based_prefers_low_head(self):
        # node 2 is 1 hop from head 0 (via edge) and 1 hop from head 9?
        # Construct: 0-2, 2-9 with 0 and 9 both heads at k=1 requires
        # d(0,9) > 1: path 0-2-9 gives d=2. Both 0,9 head only if 9 not
        # covered: 9's neighborhood {2}; after round 1, 2 joined 0; round 2:
        # 9 declares. But then 2 already joined. Use k=1 with two pendant
        # chains instead: heads 0 and 3, node 6 adjacent to both.
        g = Graph(7, [(0, 6), (3, 6), (0, 1), (3, 4), (1, 2), (4, 5)])
        cl_id = khop_cluster(g, 1, membership="id-based")
        assert cl_id.head_of[6] == 0

    def test_distance_based_prefers_near_head(self):
        # k=2: heads 0 and 1 cannot coexist... build explicit priorities.
        g = path_graph(7)
        # force heads at 0 and 6 with explicit priority
        prio = ExplicitPriority([0, 9, 9, 9, 9, 9, 1])
        cl = khop_cluster(g, 3, priority=prio, membership="distance-based")
        assert set(cl.heads) == {0, 6}
        assert cl.head_of[2] == 0  # distance 2 vs 4
        assert cl.head_of[4] == 6  # distance 4 vs 2
        # tie at node 3 (3 vs 3) -> lower head ID
        assert cl.head_of[3] == 0

    def test_size_based_balances(self):
        # hub-and-spokes where ID-based would dump everyone on head 0
        g = Graph(8, [(0, i) for i in range(2, 8)] + [(1, i) for i in range(2, 8)])
        prio = ExplicitPriority([0, 1, 9, 9, 9, 9, 9, 9])
        cl_size = khop_cluster(g, 1, priority=prio, membership="size-based")
        sizes = cl_size.cluster_sizes()
        assert set(cl_size.heads) == {0, 1}
        assert abs(sizes[0] - sizes[1]) <= 1
        cl_id = khop_cluster(g, 1, priority=prio, membership="id-based")
        assert cl_id.cluster_sizes()[0] == 7  # everyone piles on head 0

    def test_unknown_policy(self):
        with pytest.raises(InvalidParameterError):
            khop_cluster(path_graph(3), 1, membership="nope")


class TestPriorities:
    def test_highest_degree_picks_hub(self):
        g = star_graph(6)
        # hub 0 has degree 6; with highest-degree priority it still wins.
        cl = khop_cluster(g, 1, priority=HighestDegree())
        assert cl.heads == (0,)

    def test_highest_degree_vs_lowest_id_differ(self):
        # node 5 is the hub; lowest-ID would pick 0.
        g = Graph(6, [(5, i) for i in range(5)])
        cl_deg = khop_cluster(g, 1, priority="highest-degree")
        assert cl_deg.heads == (5,)
        cl_id = khop_cluster(g, 1, priority="lowest-id")
        assert 0 in cl_id.heads

    def test_explicit_priority_wrong_length(self):
        with pytest.raises(InvalidParameterError):
            khop_cluster(path_graph(3), 1, priority=ExplicitPriority([1.0]))


class TestClusteringAccessors:
    def test_members_include_head(self):
        cl = khop_cluster(path_graph(6), 2)
        assert 0 in cl.members(0)
        assert sum(len(cl.members(h)) for h in cl.heads) == 6

    def test_members_of_non_head_raises(self):
        cl = khop_cluster(path_graph(6), 2)
        with pytest.raises(InvalidParameterError):
            cl.members(1)

    def test_clusters_mapping(self):
        cl = khop_cluster(path_graph(6), 2)
        clusters = cl.clusters()
        assert set(clusters) == set(cl.heads)

    def test_head_distance(self):
        cl = khop_cluster(path_graph(6), 2)
        assert cl.head_distance(2) == 2
        assert cl.head_distance(0) == 0

    def test_non_heads(self):
        cl = khop_cluster(path_graph(6), 2)
        assert set(cl.non_heads()) == {1, 2, 4, 5}


class TestPropertyInvariants:
    @given(connected_graphs(), ks)
    @settings(max_examples=60, deadline=None)
    def test_all_invariants_hold(self, g, k):
        cl = khop_cluster(g, k)
        validate_clustering(cl)

    @given(connected_graphs(), ks, st.sampled_from(["id-based", "distance-based", "size-based"]))
    @settings(max_examples=40, deadline=None)
    def test_invariants_for_all_policies(self, g, k, policy):
        cl = khop_cluster(g, k, membership=policy)
        validate_clustering(cl)

    def test_larger_k_fewer_heads_on_average(self):
        # Per-instance head counts are *not* monotone in k: on e.g. a
        # 15-node tree-plus-chords graph the iterative rounds yield
        # counts [8, 3, 4] for k=1..3 (identically under the scalar and
        # batched engines — the algorithm, not an engine, is
        # non-monotone; hypothesis found such graphs).  The paper's
        # fewer-heads-for-larger-k claim is statistical (claim 5 in
        # figures/claims.py), so assert the trend over a seeded
        # unit-disk ensemble in the paper's regime.
        totals = []
        for k in (1, 2, 3):
            totals.append(
                sum(
                    khop_cluster(
                        random_topology(60, degree=6.0, seed=s).graph, k
                    ).num_clusters
                    for s in range(8)
                )
            )
        assert totals[0] >= totals[1] >= totals[2]

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_head_zero_always_elected(self, g, k):
        # node 0 has the globally lowest ID: always a clusterhead.
        cl = khop_cluster(g, k)
        assert 0 in cl.heads

    def test_caterpillar_spine_heads(self):
        g = caterpillar(8, 3)
        cl = khop_cluster(g, 2)
        validate_clustering(cl)
        assert all(h < 8 for h in cl.heads)  # heads on the spine (low IDs)

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_k_at_least_diameter_single_cluster(self, g, k):
        if g.diameter() <= k:
            cl = khop_cluster(g, k)
            assert cl.num_clusters == 1

    def test_cycle_alternating(self):
        cl = khop_cluster(cycle_graph(9), 1)
        validate_clustering(cl)
        assert cl.num_clusters >= 3
