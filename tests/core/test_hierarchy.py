"""Tests for hierarchical (recursive) clustering."""

import pytest
from hypothesis import given, settings

from repro.core.hierarchy import build_hierarchy
from repro.core.validate import validate_clustering
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph

from ..conftest import connected_graphs, ks


class TestBuildHierarchy:
    def test_terminates_at_single_cluster(self):
        h = build_hierarchy(grid_graph(8, 8), 1)
        assert h.heads_per_level()[-1] == 1
        assert len(h.apex_heads) == 1

    def test_head_counts_strictly_decrease(self):
        h = build_hierarchy(path_graph(40), 1)
        counts = h.heads_per_level()
        assert all(a > b for a, b in zip(counts, counts[1:]))

    def test_every_level_valid(self):
        h = build_hierarchy(grid_graph(7, 7), 1)
        for lvl in h.levels:
            validate_clustering(lvl.clustering)

    def test_head_chain_consistent(self):
        g = grid_graph(6, 6)
        h = build_hierarchy(g, 1)
        apex = h.apex_heads[0]
        for u in g.nodes():
            chain = h.head_chain(u)
            assert len(chain) == h.depth
            assert chain[-1] == apex
            # first entry is u's level-1 head
            assert chain[0] == h.levels[0].clustering.cluster_of(u)

    def test_per_level_ks(self):
        g = grid_graph(8, 8)
        h = build_hierarchy(g, [1, 2])
        assert h.ks[0] == 1
        if h.depth > 1:
            assert h.ks[1] == 2

    def test_level_node_ids_are_previous_heads(self):
        g = grid_graph(8, 8)
        h = build_hierarchy(g, 1)
        if h.depth >= 2:
            assert h.levels[1].node_ids == h.levels[0].heads

    def test_max_levels_cap(self):
        h = build_hierarchy(path_graph(60), 1, max_levels=2)
        assert h.depth == 2

    def test_single_node_graph(self):
        from repro.net.graph import Graph

        h = build_hierarchy(Graph(1), 2)
        assert h.depth == 1
        assert h.apex_heads == (0,)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            build_hierarchy(path_graph(5), [])
        with pytest.raises(InvalidParameterError):
            build_hierarchy(path_graph(5), 1, max_levels=0)

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_hierarchy_invariants(self, g, k):
        h = build_hierarchy(g, k)
        counts = h.heads_per_level()
        # monotone decrease except possibly the (capped) last level
        assert all(a > b for a, b in zip(counts, counts[1:]))
        for lvl in h.levels:
            validate_clustering(lvl.clustering)
        # apex reached unless capped
        if h.depth < 8:
            assert counts[-1] == 1
        # every node's chain ends at an apex head
        apex = set(h.apex_heads)
        for u in range(0, g.n, max(1, g.n // 5)):
            assert h.head_chain(u)[-1] in apex
