"""Tests for virtual graphs and the gateway algorithms (Mesh/LMST/G-MST)."""

import pytest
from hypothesis import given, settings

from repro.core.clustering import khop_cluster
from repro.core.gmst import gmst_gateways, gmst_selected_links, gmst_virtual_graph
from repro.core.lmst import lmst_gateways, lmst_selected_links, local_mst_edges
from repro.core.mesh import mesh_gateways, mesh_selected_links
from repro.core.neighbor import ancr_neighbors, nc_neighbors
from repro.core.virtual_graph import VirtualGraph, VirtualLink
from repro.core.wulou import wu_lou_gateways
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph, two_cliques_bridge
from repro.net.paths import PathOracle

from ..conftest import connected_graphs, ks


def _vgraph(g, k, rule="AC"):
    cl = khop_cluster(g, k)
    oracle = PathOracle(g)
    nmap = ancr_neighbors(cl) if rule == "AC" else nc_neighbors(cl)
    return cl, VirtualGraph.from_neighbor_map(cl, nmap, oracle)


class TestVirtualLink:
    def test_weight_and_interior(self):
        link = VirtualLink(0, 3, (0, 5, 7, 3))
        assert link.weight == 3
        assert link.interior == (5, 7)
        assert link.order_key() == (3, 0, 3)
        assert link.other(0) == 3 and link.other(3) == 0

    def test_invalid_orientation(self):
        with pytest.raises(InvalidParameterError):
            VirtualLink(3, 0, (3, 1, 0))
        with pytest.raises(InvalidParameterError):
            VirtualLink(0, 3, (0, 1, 2))  # path must end at v

    def test_other_rejects_non_endpoint(self):
        link = VirtualLink(0, 3, (0, 1, 3))
        with pytest.raises(InvalidParameterError):
            link.other(1)


class TestVirtualGraph:
    def test_from_neighbor_map_path(self):
        g = path_graph(6)
        cl, vg = _vgraph(g, 1)
        assert vg.heads == (0, 2, 4)
        assert vg.num_links == 2
        assert vg.has_link(0, 2) and vg.has_link(2, 4)
        assert not vg.has_link(0, 4)
        assert vg.link(0, 2).path == (0, 1, 2)
        assert vg.neighbors(2) == (0, 4)
        assert vg.weight(0, 2) == 2
        assert vg.is_connected()

    def test_metric_closure_complete(self):
        g = path_graph(6)
        cl = khop_cluster(g, 1)
        vg = VirtualGraph.metric_closure(cl, PathOracle(g))
        assert vg.num_links == 3  # all head pairs

    def test_gateways_for(self):
        g = path_graph(6)
        _, vg = _vgraph(g, 1)
        assert vg.gateways_for([(0, 2)]) == frozenset({1})
        assert vg.gateways_for([]) == frozenset()

    def test_non_head_endpoint_rejected(self):
        with pytest.raises(InvalidParameterError):
            VirtualGraph([0, 2], [VirtualLink(0, 5, (0, 1, 5))])

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_interiors_never_heads(self, g, k):
        cl, vg = _vgraph(g, k)
        heads = set(cl.heads)
        for link in vg.links():
            assert not (set(link.interior) & heads)

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_ac_virtual_graph_connected(self, g, k):
        _, vg = _vgraph(g, k, "AC")
        assert vg.is_connected()


class TestMesh:
    def test_keeps_all_links(self):
        g = path_graph(6)
        _, vg = _vgraph(g, 1)
        assert mesh_selected_links(vg) == {(0, 2), (2, 4)}
        assert mesh_gateways(vg) == frozenset({1, 3})

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_ac_mesh_subset_of_nc_mesh(self, g, k):
        cl = khop_cluster(g, k)
        oracle = PathOracle(g)
        vg_nc = VirtualGraph.from_neighbor_map(cl, nc_neighbors(cl), oracle)
        vg_ac = VirtualGraph.from_neighbor_map(cl, ancr_neighbors(cl), oracle)
        assert mesh_gateways(vg_ac) <= mesh_gateways(vg_nc)


class TestLMST:
    def test_local_mst_is_spanning(self):
        g = grid_graph(5, 5)
        cl, vg = _vgraph(g, 1)
        for h in vg.heads:
            edges = local_mst_edges(vg, h)
            view = {h, *vg.neighbors(h)}
            assert len(edges) == len(view) - 1  # spanning tree of the view

    def test_lmst_selected_subset_of_mesh(self):
        g = grid_graph(6, 6)
        _, vg = _vgraph(g, 1)
        assert lmst_selected_links(vg) <= mesh_selected_links(vg)

    def test_path_lmst_equals_mesh_on_chain(self):
        # on a chain of clusters every link is a tree edge
        g = path_graph(10)
        _, vg = _vgraph(g, 1)
        assert lmst_selected_links(vg) == mesh_selected_links(vg)

    @given(connected_graphs(), ks)
    @settings(max_examples=50, deadline=None)
    def test_lmst_gateways_subset_of_mesh(self, g, k):
        _, vg = _vgraph(g, k)
        assert lmst_gateways(vg) <= mesh_gateways(vg)

    @given(connected_graphs(), ks)
    @settings(max_examples=50, deadline=None)
    def test_theorem2_lmst_links_connect_heads(self, g, k):
        """Theorem 2: LMSTGA-selected links span all clusterheads."""
        from repro.core.neighbor import cluster_graph_connected

        cl, vg = _vgraph(g, k)
        selected = lmst_selected_links(vg)
        assert cluster_graph_connected(cl.heads, selected)


class TestGMST:
    def test_tree_size(self):
        g = grid_graph(6, 6)
        cl = khop_cluster(g, 1)
        vg = gmst_virtual_graph(cl, PathOracle(g))
        links = gmst_selected_links(vg)
        assert len(links) == len(cl.heads) - 1

    def test_single_head(self):
        g = grid_graph(2, 2)
        cl = khop_cluster(g, 2)
        vg = gmst_virtual_graph(cl, PathOracle(g))
        assert gmst_selected_links(vg) == set()
        assert gmst_gateways(vg) == frozenset()

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_gmst_is_spanning_tree(self, g, k):
        from repro.core.neighbor import cluster_graph_connected

        cl = khop_cluster(g, k)
        vg = gmst_virtual_graph(cl, PathOracle(g))
        links = gmst_selected_links(vg)
        assert len(links) == max(0, len(cl.heads) - 1)
        assert cluster_graph_connected(cl.heads, links)

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_gmst_weight_minimal_among_trees(self, g, k):
        """The chosen tree's weight matches networkx's MST weight."""
        import networkx as nx

        cl = khop_cluster(g, k)
        if len(cl.heads) < 2:
            return
        oracle = PathOracle(g)
        vg = gmst_virtual_graph(cl, oracle)
        links = gmst_selected_links(vg)
        ours = sum(vg.weight(a, b) for a, b in links)
        nxg = nx.Graph()
        nxg.add_nodes_from(cl.heads)
        for link in vg.links():
            nxg.add_edge(link.u, link.v, weight=link.weight)
        theirs = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(nxg, data=True)
        )
        assert ours == theirs


class TestWuLouGateways:
    def test_requires_k1(self):
        g = path_graph(8)
        cl = khop_cluster(g, 2)
        with pytest.raises(InvalidParameterError):
            wu_lou_gateways(cl, PathOracle(g))

    def test_connects_backbone_on_examples(self):
        for g in (path_graph(10), grid_graph(5, 5), two_cliques_bridge(4, 4)):
            cl = khop_cluster(g, 1)
            gws = wu_lou_gateways(cl, PathOracle(g))
            cds = set(cl.heads) | set(gws)
            assert g.is_connected_subset(cds)

    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_wu_lou_backbone_connected(self, g):
        cl = khop_cluster(g, 1)
        gws = wu_lou_gateways(cl, PathOracle(g))
        assert g.is_connected_subset(set(cl.heads) | set(gws))
