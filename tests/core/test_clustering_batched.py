"""Batched-vs-scalar clustering engine equivalence.

The batched engine (CSR key-min propagation + multi-source join BFS) must
produce ``head_of`` *identical* to the per-node scalar reference on every
priority × membership × generator combination the repo exercises — the
module-level round-equivalence argument in :mod:`repro.core.clustering`,
checked empirically here, including on the incrementally derived
(``without_nodes``) graphs churn produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import khop_cluster
from repro.core.priorities import (
    ExplicitPriority,
    RandomTimer,
    ResidualEnergy,
)
from repro.core.validate import validate_clustering
from repro.errors import InvalidParameterError
from repro.net.generators import ring_of_cliques, toroidal_grid
from repro.net.graph import Graph
from repro.net.topology import random_topology

from ..conftest import connected_graphs, ks

#: The three scenario families the satellite task names.
SCENARIOS = [
    pytest.param(lambda: random_topology(80, degree=7.0, seed=11).graph, id="unit-disk-80"),
    pytest.param(lambda: random_topology(150, degree=9.0, seed=13).graph, id="unit-disk-150"),
    pytest.param(lambda: toroidal_grid(9, 11), id="toroidal-9x11"),
    pytest.param(lambda: ring_of_cliques(8, 6), id="ring-of-cliques-8x6"),
]

MEMBERSHIPS = ["id-based", "distance-based", "size-based"]


def priorities_for(g: Graph):
    """One instance of every priority scheme family, seeded per graph."""
    rng = np.random.default_rng(99)
    return [
        None,
        "highest-degree",
        RandomTimer(seed=5),
        ResidualEnergy(rng.random(g.n).tolist()),
        ExplicitPriority(rng.integers(0, 4, g.n).tolist()),  # many ties
    ]


def assert_engines_agree(g: Graph, k: int, priority, membership) -> None:
    scalar = khop_cluster(
        g, k, priority=priority, membership=membership,
        require_connected=False, engine="scalar",
    )
    batched = khop_cluster(
        g, k, priority=priority, membership=membership,
        require_connected=False, engine="batched",
    )
    assert batched.head_of == scalar.head_of
    assert batched.heads == scalar.heads
    assert batched.rounds == scalar.rounds


class TestScenarioEquivalence:
    @pytest.mark.parametrize("make", SCENARIOS)
    @pytest.mark.parametrize("membership", MEMBERSHIPS)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_all_priorities_agree(self, make, membership, k):
        g = make()
        for priority in priorities_for(g):
            assert_engines_agree(g, k, priority, membership)

    @pytest.mark.parametrize("make", SCENARIOS)
    def test_post_churn_states_agree(self, make):
        """Equivalence holds on incrementally derived without_nodes graphs."""
        g = make()
        rng = np.random.default_rng(3)
        for _ in range(3):
            victim = int(rng.integers(0, g.n))
            g = g.without_nodes([victim])  # single-node incremental path
            for membership in MEMBERSHIPS:
                assert_engines_agree(g, 2, None, membership)

    def test_env_flag_selects_scalar(self, monkeypatch):
        g = toroidal_grid(5, 6)
        monkeypatch.setenv("REPRO_CLUSTER_ENGINE", "scalar")
        a = khop_cluster(g, 2)
        monkeypatch.setenv("REPRO_CLUSTER_ENGINE", "batched")
        b = khop_cluster(g, 2)
        assert a.head_of == b.head_of

    def test_unknown_engine_rejected(self):
        with pytest.raises(InvalidParameterError):
            khop_cluster(toroidal_grid(3, 4), 1, engine="nope")


class TestPropertyEquivalence:
    @given(connected_graphs(), ks, st.sampled_from(MEMBERSHIPS))
    @settings(max_examples=50, deadline=None)
    def test_random_graphs_agree(self, g, k, membership):
        assert_engines_agree(g, k, None, membership)
        batched = khop_cluster(g, k, membership=membership)
        validate_clustering(batched)

    @given(connected_graphs(min_n=4), st.sampled_from(MEMBERSHIPS))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_with_ties_and_churn(self, g, membership):
        prio = ExplicitPriority([u % 3 for u in range(g.n)])
        assert_engines_agree(g, 2, prio, membership)
        g2 = g.without_nodes([g.n - 1])
        assert_engines_agree(g2, 2, prio, membership)


class TestKeyFaithfulness:
    """key_array must never change the order keys() defines."""

    def test_tuple_valued_explicit_priority_falls_back(self):
        # Non-numeric (tuple) keys cannot become a float array; the
        # batched engine must rank them via keys() instead of crashing.
        g = toroidal_grid(4, 5)
        prio = ExplicitPriority([(u % 3, -u) for u in range(g.n)])
        assert_engines_agree(g, 2, prio, "id-based")

    def test_huge_ints_beyond_float53_stay_exact(self):
        # 2**53 and 2**53 + 1 collide in float64; the exact integer
        # order must survive into the batched engine's ranks.
        from repro.net.generators import path_graph

        g = path_graph(6)
        prio = ExplicitPriority([2**53 + 1, 2**53, 10, 11, 12, 13])
        for membership in MEMBERSHIPS:
            assert_engines_agree(g, 1, prio, membership)

    def test_unrepresentable_floats_fall_back(self):
        from repro.net.generators import path_graph

        g = path_graph(4)
        prio = ExplicitPriority([10**400, 1, 2, 3])  # overflows float64
        assert_engines_agree(g, 1, prio, "id-based")
