"""Tests for priority schemes."""

import pytest

from repro.core.priorities import (
    ExplicitPriority,
    HighestDegree,
    LowestID,
    RandomTimer,
    ResidualEnergy,
    resolve_priority,
)
from repro.errors import InvalidParameterError
from repro.net.generators import path_graph, star_graph


class TestSchemes:
    def test_lowest_id_keys(self):
        keys = LowestID().keys(path_graph(3))
        assert keys == [(0,), (1,), (2,)]
        assert min(keys) == (0,)

    def test_highest_degree_keys(self):
        g = star_graph(3)
        keys = HighestDegree().keys(g)
        assert min(keys) == (-3, 0)  # hub wins

    def test_residual_energy_orders_by_energy(self):
        g = path_graph(3)
        keys = ResidualEnergy([5.0, 50.0, 5.0]).keys(g)
        assert min(keys) == (-50.0, 1)
        # tie between 0 and 2 broken by id
        assert keys[0] < keys[2]

    def test_residual_energy_length_check(self):
        with pytest.raises(InvalidParameterError):
            ResidualEnergy([1.0]).keys(path_graph(3))

    def test_random_timer_deterministic(self):
        g = path_graph(5)
        a = RandomTimer(seed=3).keys(g)
        b = RandomTimer(seed=3).keys(g)
        c = RandomTimer(seed=4).keys(g)
        assert a == b
        assert a != c

    def test_random_timer_keys_distinct(self):
        keys = RandomTimer(seed=0).keys(path_graph(10))
        assert len(set(keys)) == 10

    def test_explicit(self):
        keys = ExplicitPriority([3.0, 1.0, 2.0]).keys(path_graph(3))
        assert min(keys) == (1.0, 1)

    def test_explicit_length_check(self):
        with pytest.raises(InvalidParameterError):
            ExplicitPriority([1.0, 2.0]).keys(path_graph(3))


class TestResolver:
    def test_none_defaults_to_lowest_id(self):
        assert isinstance(resolve_priority(None), LowestID)

    def test_instance_passthrough(self):
        p = HighestDegree()
        assert resolve_priority(p) is p

    def test_by_name(self):
        assert isinstance(resolve_priority("lowest-id"), LowestID)
        assert isinstance(resolve_priority("highest-degree"), HighestDegree)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            resolve_priority("chaotic")

    def test_bad_type(self):
        with pytest.raises(InvalidParameterError):
            resolve_priority(42)

    def test_all_keys_end_with_id(self):
        g = star_graph(4)
        for scheme in (LowestID(), HighestDegree(), RandomTimer(1)):
            keys = scheme.keys(g)
            assert [k[-1] for k in keys] == list(g.nodes())
