"""Tests for clustering validation (negative cases especially)."""

import pytest

from repro.core.clustering import Clustering, khop_cluster
from repro.core.validate import (
    check_dominating,
    check_heads_consistent,
    check_independent,
    check_partition,
    validate_clustering,
)
from repro.errors import ValidationError
from repro.net.generators import path_graph


def make(graph, k, head_of, heads):
    return Clustering(
        graph=graph, k=k, head_of=tuple(head_of), heads=tuple(heads), rounds=1
    )


class TestNegativeCases:
    def test_unassigned_node(self):
        g = path_graph(3)
        cl = make(g, 1, [0, 0, -1], [0])
        with pytest.raises(ValidationError):
            check_partition(cl)

    def test_assigned_to_non_head(self):
        g = path_graph(3)
        cl = make(g, 1, [0, 0, 1], [0])
        with pytest.raises(ValidationError):
            check_partition(cl)

    def test_heads_inconsistent(self):
        g = path_graph(3)
        cl = make(g, 1, [0, 0, 2], [0])  # 2 is a fixed point but not listed
        with pytest.raises(ValidationError):
            check_heads_consistent(cl)

    def test_domination_violated(self):
        g = path_graph(4)
        cl = make(g, 1, [0, 0, 0, 0], [0])  # node 3 is 3 hops from head 0
        with pytest.raises(ValidationError):
            check_dominating(cl)

    def test_domination_catches_non_head_assignment_standalone(self):
        # check_dominating must fail on a node pointing at a non-head even
        # without check_partition running first (the alternatives tests run
        # it standalone).
        g = path_graph(4)
        cl = make(g, 1, [0, 0, 3, 3], [0])  # 2 and 3 assigned to non-head 3
        with pytest.raises(ValidationError, match="not a clusterhead"):
            check_dominating(cl)

    def test_independence_violated(self):
        g = path_graph(3)
        cl = make(g, 1, [0, 1, 1], [0, 1])  # heads 0,1 are neighbors
        with pytest.raises(ValidationError):
            check_independent(cl)

    def test_validate_runs_all(self):
        g = path_graph(3)
        bad = make(g, 1, [0, 1, 1], [0, 1])
        with pytest.raises(ValidationError):
            validate_clustering(bad)


class TestPositiveCases:
    def test_real_clustering_passes(self):
        for k in (1, 2, 3):
            validate_clustering(khop_cluster(path_graph(12), k))

    def test_hand_built_valid(self):
        g = path_graph(4)
        cl = make(g, 1, [0, 0, 2, 2], [0, 2])
        validate_clustering(cl)
