"""Tests for neighbor-clusterhead selection rules (NC, A-NCR, Wu-Lou)."""

import pytest
from hypothesis import given, settings

from repro.core.clustering import khop_cluster
from repro.core.neighbor import (
    adjacent_head_pairs,
    ancr_neighbors,
    cluster_graph_connected,
    is_symmetric,
    nc_neighbors,
    neighbor_pairs,
    resolve_neighbor_rule,
    wu_lou_neighbors,
)
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph, two_cliques_bridge

from ..conftest import connected_graphs, ks


class TestNCRule:
    def test_path_k1_exact(self):
        cl = khop_cluster(path_graph(6), 1)
        nc = nc_neighbors(cl)
        assert nc[0] == (2,)
        assert nc[2] == (0, 4)
        assert nc[4] == (2,)

    def test_symmetric(self):
        cl = khop_cluster(grid_graph(5, 5), 1)
        assert is_symmetric(nc_neighbors(cl))

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_nc_within_range_and_symmetric(self, g, k):
        cl = khop_cluster(g, k)
        nc = nc_neighbors(cl)
        assert is_symmetric(nc)
        for h, nbrs in nc.items():
            for w in nbrs:
                assert 1 <= g.hop_distance(h, w) <= 2 * k + 1


class TestAdjacency:
    def test_path_adjacent_pairs(self):
        cl = khop_cluster(path_graph(6), 1)  # clusters {0,1},{2,3},{4,5}
        pairs = adjacent_head_pairs(cl)
        assert pairs == {(0, 2), (2, 4)}

    def test_two_cliques(self):
        g = two_cliques_bridge(4, 5)
        cl = khop_cluster(g, 1)
        pairs = adjacent_head_pairs(cl)
        # chain of clusters along the bridge: adjacency forms a path, so
        # the number of pairs is heads - 1 (tree) or more
        assert cluster_graph_connected(cl.heads, pairs)

    def test_single_cluster_no_pairs(self):
        cl = khop_cluster(grid_graph(2, 2), 2)
        assert cl.num_clusters == 1
        assert adjacent_head_pairs(cl) == set()
        assert ancr_neighbors(cl) == {cl.heads[0]: ()}

    @given(connected_graphs(), ks)
    @settings(max_examples=60, deadline=None)
    def test_theorem1_adjacent_graph_connected(self, g, k):
        """Theorem 1: the adjacent cluster graph G'' is connected."""
        cl = khop_cluster(g, k)
        pairs = adjacent_head_pairs(cl)
        assert cluster_graph_connected(cl.heads, pairs)

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_adjacent_heads_distance_bounds(self, g, k):
        """Adjacent heads are k+1 .. 2k+1 hops apart (paper §3.1)."""
        cl = khop_cluster(g, k)
        for a, b in adjacent_head_pairs(cl):
            d = g.hop_distance(a, b)
            assert k + 1 <= d <= 2 * k + 1

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_ancr_subset_of_nc(self, g, k):
        """A-NCR refines NC: every adjacent head is within 2k+1 hops."""
        cl = khop_cluster(g, k)
        nc = nc_neighbors(cl)
        ac = ancr_neighbors(cl)
        for h in cl.heads:
            assert set(ac[h]) <= set(nc[h])

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_ancr_symmetric(self, g, k):
        cl = khop_cluster(g, k)
        assert is_symmetric(ancr_neighbors(cl))


class TestWuLou:
    def test_requires_k1(self):
        cl = khop_cluster(path_graph(8), 2)
        with pytest.raises(InvalidParameterError):
            wu_lou_neighbors(cl)

    def test_covers_2hop_heads(self):
        cl = khop_cluster(path_graph(6), 1)
        wl = wu_lou_neighbors(cl)
        assert 2 in wl[0]
        assert set(wl[2]) == {0, 4}

    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_inclusion_chain_at_k1(self, g):
        """A-NCR ⊆ Wu-Lou ⊆ NC as pair sets at k = 1."""
        cl = khop_cluster(g, 1)
        ac_pairs = neighbor_pairs(ancr_neighbors(cl))
        wl_pairs = neighbor_pairs(wu_lou_neighbors(cl))
        nc_pairs = neighbor_pairs(nc_neighbors(cl))
        assert ac_pairs <= wl_pairs <= nc_pairs

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_wu_lou_pairs_connect_heads(self, g):
        """The 2.5-hop coverage pairs keep the cluster graph connected."""
        cl = khop_cluster(g, 1)
        pairs = neighbor_pairs(wu_lou_neighbors(cl))
        assert cluster_graph_connected(cl.heads, pairs)


class TestHelpers:
    def test_cluster_graph_connected_trivial(self):
        assert cluster_graph_connected((), set())
        assert cluster_graph_connected((5,), set())
        assert not cluster_graph_connected((1, 2), set())
        assert cluster_graph_connected((1, 2), {(1, 2)})

    def test_resolve_neighbor_rule(self):
        assert resolve_neighbor_rule("NC") is nc_neighbors
        assert resolve_neighbor_rule("AC") is ancr_neighbors
        with pytest.raises(InvalidParameterError):
            resolve_neighbor_rule("XX")

    def test_neighbor_pairs_drops_direction(self):
        pairs = neighbor_pairs({1: (2,), 2: ()})
        assert pairs == {(1, 2)}
