"""Congestion model: capacities, fluid-queue drops, loss export."""

import pytest

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.faults.delivery import LossModel, deliver
from repro.net.topology import random_topology
from repro.traffic.congestion import CongestionModel, congestion_report
from repro.traffic.load import link_utilization
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs


@pytest.fixture(scope="module")
def backbone():
    topo = random_topology(120, degree=7.0, seed=17)
    return build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")


@pytest.fixture(scope="module")
def routed(backbone):
    g = backbone.clustering.graph
    wl = uniform_pairs(g.n, 800, seed=31, demand=4)
    return BatchRouter(backbone).route_flows(wl, with_shortest=False)


class TestCongestionModel:
    def test_capacities_derive_from_link_weights(self, backbone):
        model = CongestionModel.from_backbone(backbone, radio_budget=120.0)
        assert model.num_links == len(backbone.selected_links)
        for ab in backbone.selected_links:
            link = backbone.virtual_graph.link(*ab)
            assert model.capacity[ab] == 120.0 / max(link.weight, 1)
            assert model.paths[ab] == link.path

    def test_rejects_non_positive_budget(self, backbone):
        for bad in (0.0, -2.5):
            with pytest.raises(InvalidParameterError):
                CongestionModel.from_backbone(backbone, radio_budget=bad)

    def test_capacity_conservation(self, backbone):
        """Carried load ``q * (1 - p)`` equals ``min(q, c)`` exactly."""
        model = CongestionModel.from_backbone(backbone, radio_budget=60.0)
        e = sorted(model.capacity)[0]
        c = model.capacity[e]
        for q in (c / 2, c, 1.5 * c, 10 * c):
            p = model.drop_probabilities({e: q}).get(e, 0.0)
            assert q * (1.0 - p) == pytest.approx(min(q, c))

    def test_drops_monotone_in_offered_load(self, backbone):
        model = CongestionModel.from_backbone(backbone, radio_budget=60.0)
        e = sorted(model.capacity)[0]
        c = model.capacity[e]
        probs = [
            model.drop_probabilities({e: q}).get(e, 0.0)
            for q in (0.5 * c, c, 2 * c, 4 * c, 16 * c)
        ]
        assert probs == sorted(probs)
        assert probs[0] == probs[1] == 0.0  # at/under capacity never drops
        assert 0.0 < probs[2] < probs[4] < 1.0

    def test_non_selected_edges_ignored(self, backbone):
        model = CongestionModel.from_backbone(backbone, radio_budget=1.0)
        n = backbone.clustering.graph.n
        bogus = (n - 2, n - 1)
        assert bogus not in model.capacity
        assert model.drop_probabilities({bogus: 1e9}) == {}

    def test_loss_model_spreads_over_gateway_path(self, backbone, routed):
        """Per-edge rate composes back to the link's drop probability."""
        model = CongestionModel.from_backbone(backbone, radio_budget=8.0)
        n = backbone.clustering.graph.n
        drops = model.drop_probabilities(link_utilization(routed, n))
        assert drops  # the tiny budget congests this batch
        lm = model.loss_model(routed)
        for e, p in drops.items():
            path = model.paths[e]
            w = max(len(path) - 1, 1)
            r = 1.0 - (1.0 - p) ** (1.0 / w)
            survive = 1.0
            for x, y in zip(path, path[1:]):
                # shared physical edges take the worst link's rate
                assert lm.link_loss(x, y) >= r - 1e-12
                survive *= 1.0 - lm.link_loss(x, y)
            assert survive <= (1.0 - p) + 1e-12

    def test_loss_model_clean_under_capacity(self, backbone, routed):
        """A generous budget yields a zero-loss model."""
        model = CongestionModel.from_backbone(backbone, radio_budget=1e9)
        lm = model.loss_model(routed)
        assert lm.base_loss == 0.0
        assert lm.num_overrides == 0


class TestCongestionReport:
    def test_report_matches_manual_tallies(self, backbone, routed):
        model = CongestionModel.from_backbone(backbone, radio_budget=50.0)
        n = backbone.clustering.graph.n
        offered = link_utilization(routed, n)
        report = congestion_report(model, routed)
        assert report.links == model.num_links
        assert report.loaded_links == len(offered)
        assert report.offered_packets == pytest.approx(sum(offered.values()))
        expect_drop = sum(
            max(0.0, q - model.capacity[e])
            for e, q in offered.items()
            if e in model.capacity
        )
        assert report.dropped_packets == pytest.approx(expect_drop)
        assert report.congested_links == sum(
            1
            for e, q in offered.items()
            if e in model.capacity and q > model.capacity[e]
        )
        assert 0.0 <= report.drop_fraction < 1.0

    def test_empty_batch_reports_zero(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 1, seed=31)
        routed_one = BatchRouter(backbone).route_flows(wl, with_shortest=False)
        model = CongestionModel.from_backbone(backbone, radio_budget=1e9)
        report = congestion_report(model, routed_one)
        assert report.congested_links == 0
        assert report.dropped_packets == 0.0
        assert report.drop_fraction == 0.0


class TestCongestionDelivery:
    def test_congestion_degrades_delivery(self, backbone, routed):
        """The same batch delivers less as the radio budget shrinks."""
        clean = LossModel.uniform(backbone.clustering.graph.n, 0.0)
        fractions = []
        for budget in (1e9, 200.0, 20.0):
            model = CongestionModel.from_backbone(
                backbone, radio_budget=budget
            )
            report = deliver(routed, clean, seed=5, congestion=model)
            fractions.append(report.delivered_fraction)
        assert fractions[0] == 1.0
        assert fractions[0] >= fractions[1] >= fractions[2]
        assert fractions[2] < 1.0

    def test_congestion_charges_retransmissions(self, backbone, routed):
        """Congested delivery burns more tx than the congestion-free one."""
        clean = LossModel.uniform(backbone.clustering.graph.n, 0.0)
        free = deliver(routed, clean, seed=5)
        model = CongestionModel.from_backbone(backbone, radio_budget=20.0)
        squeezed = deliver(routed, clean, seed=5, congestion=model)
        assert squeezed.lost_packets > free.lost_packets == 0
        assert squeezed.mean_attempts > free.mean_attempts
