"""Batch-vs-scalar routing equivalence and router invariants."""

import numpy as np
import pytest

from repro.cds.routing import HeadRouter, route, routing_report
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.net.oracle import DIST_DTYPE
from repro.net.paths import PathOracle
from repro.net.topology import random_topology
from repro.traffic.router import BatchRouter, RoutedFlows
from repro.traffic.workloads import uniform_pairs


@pytest.fixture(scope="module")
def backbone():
    topo = random_topology(150, degree=7.0, seed=13)
    return build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")


class TestHeadRouter:
    def test_head_sequence_matches_scalar_route(self, backbone):
        """The shared Dijkstra tree reproduces the per-call head chains."""
        hr = HeadRouter(backbone)
        oracle = PathOracle(backbone.clustering.graph)
        heads = backbone.heads
        for hs in heads[:5]:
            for ht in heads:
                walk = hr.head_walk(hs, ht)
                assert walk[0] == hs and walk[-1] == ht
                # scalar route between the heads themselves takes the
                # same backbone walk
                assert route(backbone, oracle, hs, ht) == walk

    def test_walk_cached(self, backbone):
        hr = HeadRouter(backbone)
        oracle = PathOracle(backbone.clustering.graph)
        a = hr.walk(oracle, 3, 140)
        b = hr.walk(oracle, 3, 140)
        assert a is b or a == b


class TestBatchEquivalence:
    @pytest.mark.parametrize("pin_backend", [None, "lazy"])
    def test_batch_reproduces_scalar_walks(self, backbone, pin_backend):
        """Every batched walk equals the looped cds.routing.route() walk."""
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 400, seed=21)
        import contextlib

        ctx = (
            g.pinned_distance_backend(pin_backend)
            if pin_backend
            else contextlib.nullcontext()
        )
        with ctx:
            routed = BatchRouter(backbone).route_flows(wl)
            oracle = PathOracle(g)
            for i in range(wl.num_flows):
                s, t = int(wl.sources[i]), int(wl.targets[i])
                assert routed.walks[i] == route(backbone, oracle, s, t), (s, t)

    def test_walks_are_real_edge_walks(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 300, seed=22)
        routed = BatchRouter(backbone).route_flows(wl)
        for walk in routed.walks:
            for a, b in zip(walk, walk[1:]):
                assert g.has_edge(a, b)

    def test_hops_and_shortest_consistent(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 300, seed=23)
        routed = BatchRouter(backbone).route_flows(wl)
        assert (routed.hops == [len(w) - 1 for w in routed.walks]).all()
        # walks can never beat the shortest path
        assert (routed.hops >= routed.shortest).all()
        assert (routed.stretches() >= 1.0).all()

    def test_stretch_matches_routing_report(self, backbone):
        """Batch stretch over the report's own sample pairs agrees."""
        g = backbone.clustering.graph
        rng = np.random.default_rng(1)
        pairs = [
            tuple(int(x) for x in rng.choice(g.n, size=2, replace=False))
            for _ in range(50)
        ]
        rep = routing_report(
            backbone, PathOracle(g), samples=50, seed=1
        )
        from repro.traffic.workloads import Workload

        wl = Workload(
            name="sampled",
            n=g.n,
            sources=np.array([p[0] for p in pairs]),
            targets=np.array([p[1] for p in pairs]),
            demands=np.ones(len(pairs), dtype=np.int64),
        )
        routed = BatchRouter(backbone).route_flows(wl)
        stretches = routed.stretches()
        assert float(stretches.mean()) == pytest.approx(rep.mean_stretch)
        assert float(stretches.max()) == pytest.approx(rep.max_stretch)

    def test_intra_cluster_flows_have_empty_head_path(self, backbone):
        cl = backbone.clustering
        g = cl.graph
        wl = uniform_pairs(g.n, 200, seed=24)
        routed = BatchRouter(backbone).route_flows(wl)
        for i in range(wl.num_flows):
            s, t = int(wl.sources[i]), int(wl.targets[i])
            if cl.cluster_of(s) == cl.cluster_of(t):
                assert routed.head_paths[i] == ()
            else:
                assert routed.head_paths[i][0] == cl.cluster_of(s)
                assert routed.head_paths[i][-1] == cl.cluster_of(t)

    def test_rejects_mismatched_workload(self, backbone):
        wl = uniform_pairs(10, 5, seed=25)
        with pytest.raises(InvalidParameterError):
            BatchRouter(backbone).route_flows(wl)

    def test_routed_arrays_are_dist_dtype(self, backbone):
        """PR 6 regression (repro-lint R002): RoutedFlows used to build
        ``hops``/``shortest`` in int64; both are hop counts and belong on
        the oracle's DIST_DTYPE contract — and must stay there however
        the batch is routed."""
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 64, seed=26)
        routed = BatchRouter(backbone).route_flows(wl)
        assert routed.hops.dtype == DIST_DTYPE
        assert routed.shortest.dtype == DIST_DTYPE
        skipped = BatchRouter(backbone).route_flows(wl, with_shortest=False)
        assert skipped.shortest.dtype == DIST_DTYPE
        assert skipped.shortest.size == 0
        # stretch stays exact float division, unharmed by the narrowing
        assert routed.stretches().dtype == np.float64


class TestRouterInheritance:
    """Inherited-vs-fresh BatchRouter walk identity across repairs."""

    @staticmethod
    def _warm_router(backbone, flows=400, seed=31):
        g = backbone.clustering.graph
        router = BatchRouter(backbone)
        router.route_flows(uniform_pairs(g.n, flows, seed=seed), with_shortest=False)
        return router

    @staticmethod
    def _surviving_workload(n, dead, flows=400, seed=32):
        alive = np.ones(n, dtype=bool)
        alive[list(dead)] = False
        return uniform_pairs(n, flows, seed=seed).restrict(alive)

    def _assert_identical(self, backbone, inherited, dead):
        wl = self._surviving_workload(backbone.clustering.graph.n, dead)
        got = inherited.route_flows(wl, with_shortest=False)
        want = BatchRouter(backbone).route_flows(wl, with_shortest=False)
        assert got.walks == want.walks
        assert got.head_paths == want.head_paths

    def test_member_death_inherits_everything(self, backbone):
        from repro.maintenance.repair import failure_role, repair

        router = self._warm_router(backbone)
        member = next(
            u
            for u in range(backbone.clustering.graph.n)
            if failure_role(backbone, u) == "member"
        )
        outcome = repair(backbone, member)
        assert outcome.action == "none"
        inherited = BatchRouter(outcome.backbone)
        stats = inherited.inherit_from(router, member, outcome.scope_heads)
        assert stats["head_graph_unchanged"] == 1
        assert stats["trees"] > 0
        assert stats["head_walks"] > 0
        assert stats["legs"] > 0
        self._assert_identical(outcome.backbone, inherited, {member})

    def test_head_death_still_produces_identical_walks(self, backbone):
        from repro.maintenance.repair import repair

        router = self._warm_router(backbone)
        victim = backbone.heads[1]
        outcome = repair(backbone, victim)
        assert outcome.backbone is not None
        inherited = BatchRouter(outcome.backbone)
        stats = inherited.inherit_from(router, victim, outcome.scope_heads)
        # a recluster rebuilds the head graph: trees must not carry over
        assert stats["head_graph_unchanged"] == 0
        assert stats["trees"] == 0
        self._assert_identical(outcome.backbone, inherited, {victim})

    def test_chained_repairs_keep_identity(self, backbone):
        from repro.maintenance.repair import repair

        router = self._warm_router(backbone)
        current = backbone
        dead = set()
        rng = np.random.default_rng(8)
        for _ in range(4):
            victim = int(rng.integers(0, current.clustering.graph.n))
            while victim in dead:
                victim = int(rng.integers(0, current.clustering.graph.n))
            outcome = repair(current, victim)
            if outcome.partitioned:
                break
            dead.add(victim)
            nxt = BatchRouter(outcome.backbone)
            nxt.inherit_from(router, victim, outcome.scope_heads)
            router, current = nxt, outcome.backbone
            self._assert_identical(current, router, dead)

    def test_lifetime_reports_rebuilds_avoided(self):
        from repro.net.energy import EnergyParams
        from repro.traffic.lifetime import simulate_traffic_lifetime

        topo = random_topology(150, degree=8.0, seed=11)
        wl = uniform_pairs(topo.graph.n, 500, seed=5)
        params = EnergyParams(
            initial=8000.0,
            tx_cost=1.0,
            rx_cost=0.5,
            idle_member=0.01,
            idle_backbone=1.0,
        )
        report = simulate_traffic_lifetime(
            topo.graph, 2, wl, epochs=120, scheme="static", params=params
        )
        assert report.total_deaths > 0
        # member deaths splice the backbone: the routing layer survives
        assert report.router_rebuilds_avoided > 0
        assert report.router_legs_inherited > 0


class TestRouterEdgeDeltaInheritance:
    """Inherited-vs-fresh walk identity across mobility edge deltas."""

    @staticmethod
    def _instance(seed=17, n=150):
        topo = random_topology(n, degree=7.0, seed=seed)
        from repro.net.graph import Graph

        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("lazy")
        return g

    def _build(self, g):
        paths = PathOracle(g)
        backbone = build_backbone(khop_cluster(g, 2), "AC-LMST", oracle=paths)
        router = BatchRouter(backbone, oracle=paths)
        return backbone, router, paths

    def test_delta_inherited_router_walk_identical(self):
        g = self._instance()
        _, router, paths = self._build(g)
        wl = uniform_pairs(g.n, 400, seed=3)
        router.route_flows(wl, with_shortest=True)
        rng = np.random.default_rng(5)
        edges = list(g.edges)
        removed = [edges[int(i)] for i in rng.choice(len(edges), 3, replace=False)]
        added = []
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if not g.has_edge(u, v):
                    added.append((u, v))
                    break
            if len(added) == 3:
                break
        g2 = g.with_edge_delta(added, removed)
        touched = {x for e in added + removed for x in e}
        new_paths = PathOracle(g2)
        new_paths.inherit_edge_delta(paths, touched)
        backbone2 = build_backbone(
            khop_cluster(g2, 2), "AC-LMST", oracle=new_paths
        )
        router2 = BatchRouter(backbone2, oracle=new_paths)
        router2.router.inherit_from(router.router)
        got = router2.route_flows(wl, with_shortest=True)
        fresh_backbone = build_backbone(khop_cluster(g2, 2), "AC-LMST")
        want = BatchRouter(fresh_backbone).route_flows(wl, with_shortest=True)
        assert got.walks == want.walks
        assert got.head_paths == want.head_paths
        assert np.array_equal(got.shortest, want.shortest)

    def test_empty_delta_inherits_whole_head_layer(self):
        """Unchanged head set + links: all-or-nothing rung still fires."""
        g = self._instance(seed=19)
        backbone, router, paths = self._build(g)
        router.route_flows(uniform_pairs(g.n, 300, seed=7), with_shortest=False)
        # Same graph, same backbone: the head layer must carry whole.
        router2 = BatchRouter(backbone, oracle=PathOracle(g))
        stats = router2.inherit_edge_delta(router, set())
        assert stats["head_graph_unchanged"] == 1
        assert stats["trees"] == len(router.router._trees)
        assert stats["head_seqs"] == len(router.router._head_seqs)
        assert stats["head_walks"] == len(router.router._head_walks)
        assert stats["legs"] == len(paths)

    def test_batchrouter_inherit_edge_delta_skips_shared_oracle(self):
        g = self._instance(seed=23)
        backbone, router, paths = self._build(g)
        router.route_flows(uniform_pairs(g.n, 200, seed=9), with_shortest=False)
        router2 = BatchRouter(backbone, oracle=paths)  # same oracle object
        stats = router2.inherit_edge_delta(router, set())
        assert stats["legs"] == 0  # legs already live in the shared oracle


class TestDegradedValidity:
    """Regression: the valid mask gates delivery and stretch accounting."""

    @staticmethod
    def _batch(outcome=None):
        from repro.traffic.workloads import Workload

        wl = Workload(
            name="degraded",
            n=6,
            sources=np.array([0, 2, 4]),
            targets=np.array([1, 3, 5]),
            demands=np.array([2, 3, 5]),
        )
        return RoutedFlows(
            workload=wl,
            walks=[(0, 1), (2,), (4, 5)],
            hops=np.array([1, 0, 1], dtype=DIST_DTYPE),
            shortest=np.array([1, 0, 1], dtype=DIST_DTYPE),
            head_paths=[(), (), ()],
            outcome=outcome,
            valid=np.array([True, False, True]),
        )

    def test_binary_world_counts_only_valid_demand(self):
        """A degraded batch never reports 1.0: placeholders are undelivered."""
        routed = self._batch()
        assert routed.num_valid == 2
        assert routed.delivered_fraction() == pytest.approx((2 + 5) / 10)

    def test_lossy_world_masks_placeholder_survivals(self):
        """A zero-hop placeholder trivially 'delivered' still counts lost."""
        outcome = np.array([0, 0, 1], dtype=np.int8)
        routed = self._batch(outcome=outcome)
        assert routed.delivered_fraction() == pytest.approx(2 / 10)

    def test_stretches_cover_valid_flows_only(self):
        stretches = self._batch().stretches()
        assert stretches.shape == (2,)
        assert stretches.tolist() == [1.0, 1.0]
