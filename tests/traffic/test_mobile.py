"""Mobility-coupled traffic loop: delta-vs-rebuild identity and invariants."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.topology import random_topology
from repro.traffic.mobile import render_mobile, simulate_mobile_traffic
from repro.traffic.workloads import make_workload, uniform_pairs


@pytest.fixture(scope="module")
def instance():
    topo = random_topology(200, degree=8.0, seed=11)
    topo.graph.use_distance_backend("lazy")
    wl = uniform_pairs(topo.graph.n, 300, seed=5)
    return topo, wl


def _run(topo, wl, engine, **kw):
    kw.setdefault("snapshots", 5)
    kw.setdefault("speed", (0.1, 0.4))
    kw.setdefault("seed", 3)
    return simulate_mobile_traffic(topo, 2, wl, engine=engine, **kw)


class TestEngineEquivalence:
    def test_delta_walks_identical_to_rebuild(self, instance):
        topo, wl = instance
        rb = _run(topo, wl, "rebuild", collect_walks=True)
        dl = _run(topo, wl, "delta", collect_walks=True)
        assert rb.walks == dl.walks
        assert len(dl.walks) == len(dl.epochs)

    def test_metrics_identical_across_engines(self, instance):
        topo, wl = instance
        rb = _run(topo, wl, "rebuild")
        dl = _run(topo, wl, "delta")
        assert len(rb.epochs) == len(dl.epochs)
        for a, b in zip(rb.epochs, dl.epochs):
            assert a.step == b.step
            assert a.connected == b.connected
            assert (a.edges_added, a.edges_removed) == (
                b.edges_added,
                b.edges_removed,
            )
            assert a.num_heads == b.num_heads
            assert a.cds_size == b.cds_size
            if a.connected:
                assert a.mean_stretch == pytest.approx(b.mean_stretch)
                assert a.max_node_load == b.max_node_load
                assert a.backbone_fairness == pytest.approx(b.backbone_fairness)

    @pytest.mark.parametrize("workload", ["hotspot", "gossip"])
    def test_other_workloads_stay_identical(self, instance, workload):
        topo, _ = instance
        wl = make_workload(workload, topo.graph.n, 300, seed=9)
        rb = _run(topo, wl, "rebuild", snapshots=3, collect_walks=True)
        dl = _run(topo, wl, "delta", snapshots=3, collect_walks=True)
        assert rb.walks == dl.walks


class TestEpochInvariants:
    def test_epoch_series_shape_and_metrics(self, instance):
        topo, wl = instance
        report = _run(topo, wl, "delta")
        assert len(report.epochs) == 6  # initial + 5 moved snapshots
        assert report.epochs[0].step == 0
        assert report.epochs[0].edges_added == 0
        assert report.epochs[0].edges_removed == 0
        for e in report.routed_epochs():
            assert e.delivered == 1.0
            assert e.flows_routed == wl.num_flows
            assert e.mean_stretch >= 1.0
            assert e.p95_stretch >= 1.0
            assert 0.0 <= e.backbone_fairness <= 1.0
            assert 0.0 <= e.cds_share <= 1.0
            assert e.cds_size >= e.num_heads > 0
        churn = [e.head_churn for e in report.routed_epochs()[1:]]
        assert all(0.0 <= c <= 1.0 for c in churn)
        assert math.isnan(report.routed_epochs()[0].head_churn)

    def test_inheritance_counters_populate(self, instance):
        topo, wl = instance
        report = _run(topo, wl, "delta", speed=(0.02, 0.08))
        assert (
            report.rows_inherited + report.rows_partial_inherited > 0
        )
        rb = _run(topo, wl, "rebuild")
        assert rb.rows_inherited == 0
        assert rb.paths_inherited == 0

    def test_mean_and_delivery_rate(self, instance):
        topo, wl = instance
        report = _run(topo, wl, "delta")
        assert report.mean("mean_stretch") >= 1.0
        assert report.delivery_rate == pytest.approx(1.0)

    def test_render_smoke(self, instance):
        topo, wl = instance
        text = render_mobile(_run(topo, wl, "delta"))
        assert "mobility-coupled traffic" in text
        assert "inherited:" in text

    def test_disconnected_snapshots_record_delivery(self):
        # A sparse instance moved violently disconnects; those epochs
        # must record partial delivery, not crash, and the delta chain
        # must survive the gap.
        topo = random_topology(60, degree=5.0, seed=23)
        wl = uniform_pairs(topo.graph.n, 120, seed=2)
        report = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            engine="delta", collect_walks=True,
        )
        rebuilt = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            engine="rebuild", collect_walks=True,
        )
        assert report.walks == rebuilt.walks
        if report.skipped_disconnected:
            bad = [e for e in report.epochs if not e.connected]
            assert all(0.0 <= e.delivered < 1.0 + 1e-9 for e in bad)
            assert all(e.flows_routed == 0 for e in bad)


class TestValidation:
    def test_engine_name_validated(self, instance):
        topo, wl = instance
        with pytest.raises(InvalidParameterError):
            simulate_mobile_traffic(topo, 2, wl, snapshots=2, engine="warp")

    def test_snapshots_validated(self, instance):
        topo, wl = instance
        with pytest.raises(InvalidParameterError):
            simulate_mobile_traffic(topo, 2, wl, snapshots=0)

    def test_workload_size_validated(self, instance):
        topo, _ = instance
        wl = uniform_pairs(77, 50, seed=1)
        with pytest.raises(InvalidParameterError):
            simulate_mobile_traffic(topo, 2, wl, snapshots=2)

    def test_delivered_fraction_shape_validated(self, instance):
        _, wl = instance
        with pytest.raises(InvalidParameterError):
            wl.delivered_fraction(np.zeros(3, dtype=np.int64))


class TestDegradedMobility:
    """Component-local routing keeps serving disconnected snapshots."""

    @pytest.fixture(scope="class")
    def sparse(self):
        topo = random_topology(60, degree=5.0, seed=23)
        wl = uniform_pairs(topo.graph.n, 120, seed=2)
        return topo, wl

    def test_degraded_epochs_route_flows(self, sparse):
        topo, wl = sparse
        report = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            degraded=True,
        )
        if not report.degraded_epochs:
            pytest.skip("scenario never disconnected")
        served = [e for e in report.epochs if e.degraded]
        assert len(served) == report.degraded_epochs
        assert any(e.flows_routed > 0 for e in served)
        for e in served:
            assert not e.connected
            assert math.isnan(e.head_churn)
            assert 0.0 <= e.delivered <= 1.0

    def test_degraded_does_not_change_connected_epochs(self, sparse):
        topo, wl = sparse
        plain = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            collect_walks=True,
        )
        deg = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            degraded=True, collect_walks=True,
        )
        for a, b in zip(plain.epochs, deg.epochs):
            if a.connected:
                assert b.connected
                assert a.flows_routed == b.flows_routed
                assert a.mean_stretch == b.mean_stretch

    def test_recovery_times_recorded(self, sparse):
        topo, wl = sparse
        report = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            degraded=True,
        )
        if not report.degraded_epochs:
            pytest.skip("scenario never disconnected")
        assert all(t >= 1 for t in report.recovery_times)
        assert sum(report.recovery_times) <= report.degraded_epochs

    def test_degraded_requires_localized_algorithm(self, sparse):
        topo, wl = sparse
        with pytest.raises(InvalidParameterError):
            simulate_mobile_traffic(
                topo, 2, wl, snapshots=2, degraded=True, algorithm="G-MST"
            )

    def test_route_degraded_marks_cross_component_flows(self):
        import numpy as np

        from repro.net.generators import two_cliques_bridge
        from repro.traffic.mobile import route_degraded
        from repro.traffic.workloads import Workload

        g = two_cliques_bridge(6, 3).without_nodes([7])  # partitioned
        wl = Workload(
            name="manual",
            n=15,
            sources=np.asarray([1, 9, 2]),
            targets=np.asarray([5, 14, 12]),  # last one crosses
            demands=np.asarray([1, 1, 1]),
        )
        backbone, routed = route_degraded(g, 1, wl)
        assert routed.valid is not None
        assert routed.valid.tolist() == [True, True, False]
        assert len(routed.walks[0]) >= 2
        assert routed.hops[~routed.valid].tolist() == [0]

    def test_render_mentions_degraded(self, sparse):
        topo, wl = sparse
        report = simulate_mobile_traffic(
            topo, 2, wl, snapshots=12, speed=(3.0, 8.0), seed=1,
            degraded=True,
        )
        if not report.degraded_epochs:
            pytest.skip("scenario never disconnected")
        text = render_mobile(report)
        assert "degraded" in text
