"""Multipath primitives and the load-adaptive ``balance=`` routing mode."""

import numpy as np
import pytest

from repro.cds.routing import HeadRouter
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.topology import random_topology
from repro.traffic.load import measure_load
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs


@pytest.fixture(scope="module")
def backbone():
    topo = random_topology(150, degree=7.0, seed=13)
    return build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")


@pytest.fixture(scope="module")
def head_pairs(backbone):
    """A spread of distinct head pairs to exercise."""
    heads = backbone.heads
    return [
        (heads[i], heads[j])
        for i in range(0, len(heads), 3)
        for j in range(1, len(heads), 4)
        if heads[i] != heads[j]
    ][:40]


class TestKShortestSequences:
    def test_first_sequence_is_canonical(self, backbone, head_pairs):
        hr = HeadRouter(backbone)
        for a, b in head_pairs:
            seqs = hr.k_shortest_sequences(a, b, 4)
            assert seqs[0] == hr.head_sequence(a, b)

    def test_sequences_sorted_loopless_distinct(self, backbone, head_pairs):
        hr = HeadRouter(backbone)
        for a, b in head_pairs:
            seqs = hr.k_shortest_sequences(a, b, 4)
            assert 1 <= len(seqs) <= 4
            weights = [hr.seq_weight(s) for s in seqs]
            assert weights == sorted(weights)
            assert len(set(seqs)) == len(seqs)
            for s in seqs:
                assert s[0] == a and s[-1] == b
                assert len(set(s)) == len(s)  # loopless
                for u, v in zip(s, s[1:]):
                    assert hr.link_weight(u, v) >= 1  # real head edges

    def test_max_weight_bounds_detours(self, backbone, head_pairs):
        hr = HeadRouter(backbone)
        for a, b in head_pairs:
            w0 = hr.seq_weight(hr.head_sequence(a, b))
            bound = 1.5 * max(w0, 1)
            for s in hr.k_shortest_sequences(a, b, 4, max_weight=bound):
                assert hr.seq_weight(s) <= bound + 1e-9

    def test_k_one_is_just_canonical(self, backbone, head_pairs):
        hr = HeadRouter(backbone)
        a, b = head_pairs[0]
        assert hr.k_shortest_sequences(a, b, 1) == [hr.head_sequence(a, b)]

    def test_walk_for_seq_expands_segments(self, backbone, head_pairs):
        g = backbone.clustering.graph
        hr = HeadRouter(backbone)
        for a, b in head_pairs[:10]:
            for s in hr.k_shortest_sequences(a, b, 3):
                walk = hr.walk_for_seq(s)
                assert walk[0] == a and walk[-1] == b
                for u, v in zip(walk, walk[1:]):
                    assert g.has_edge(u, v)
                # the walk visits the sequence's heads in order
                it = iter(walk)
                assert all(h in it for h in s)


class TestTieVariants:
    def test_alt_sequences_keep_distance(self, backbone, head_pairs):
        """Seeded tie-breaking only reroutes among equal-cost paths."""
        hr = HeadRouter(backbone)
        for a, b in head_pairs:
            w0 = hr.seq_weight(hr.head_sequence(a, b))
            for variant in range(4):
                s = hr.alt_sequence(a, b, variant)
                assert s[0] == a and s[-1] == b
                assert hr.seq_weight(s) == w0

    def test_variants_deterministic_across_routers(self, backbone, head_pairs):
        h1, h2 = HeadRouter(backbone), HeadRouter(backbone)
        for a, b in head_pairs[:10]:
            for variant in range(3):
                assert h1.alt_sequence(a, b, variant) == h2.alt_sequence(
                    a, b, variant
                )


class TestBalancedRouting:
    @pytest.fixture(scope="class")
    def batches(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 600, seed=23, demand=2)
        canonical = BatchRouter(backbone).route_flows(wl)
        balancer = BatchRouter(backbone)
        balanced = balancer.route_flows(wl, balance=True)
        return wl, canonical, balanced, balancer

    def test_walks_are_real_edge_walks(self, backbone, batches):
        g = backbone.clustering.graph
        wl, _, balanced, _ = batches
        for i, walk in enumerate(balanced.walks):
            assert walk[0] == wl.sources[i]
            assert walk[-1] == wl.targets[i]
            for a, b in zip(walk, walk[1:]):
                assert g.has_edge(a, b)
        assert (balanced.hops >= balanced.shortest).all()

    def test_flow_conservation(self, backbone, batches):
        wl, _, balanced, _ = batches
        load = measure_load(backbone, balanced)
        d = wl.demands
        assert load.packet_hops == int((d * balanced.hops).sum())
        assert int(load.tx.sum()) == load.packet_hops
        assert int(load.rx.sum()) == load.packet_hops
        assert int(load.transit.sum()) == int((d * (balanced.hops - 1)).sum())

    def test_only_inter_cluster_walks_change(self, batches):
        """Balance swaps head walks; legs and intra flows are untouched."""
        wl, canonical, balanced, _ = batches
        for i, (seq, canon) in enumerate(
            zip(balanced.head_paths, canonical.head_paths)
        ):
            assert bool(seq) == bool(canon)
            if not seq:
                assert balanced.walks[i] == canonical.walks[i]
            else:
                assert (seq[0], seq[-1]) == (canon[0], canon[-1])

    def test_stretch_bound_respected(self, batches):
        wl, canonical, balanced, balancer = batches
        hr = balancer.router
        for seq, canon in zip(balanced.head_paths, canonical.head_paths):
            if seq:
                assert hr.seq_weight(seq) <= 1.5 * max(
                    hr.seq_weight(canon), 1
                )

    def test_deterministic(self, backbone, batches):
        wl, _, balanced, _ = batches
        again = BatchRouter(backbone).route_flows(wl, balance=True)
        assert again.walks == balanced.walks
        assert again.head_paths == balanced.head_paths

    def test_balance_does_not_hurt_fairness(self, backbone, batches):
        _, canonical, balanced, _ = batches
        base = measure_load(backbone, canonical)
        load = measure_load(backbone, balanced)
        assert load.backbone_fairness >= base.backbone_fairness

    def test_stats_published(self, batches):
        *_, balancer = batches
        stats = balancer.last_balance
        assert set(stats) == {
            "groups",
            "candidates",
            "moves",
            "flows_rerouted",
        }
        assert stats["groups"] > 0
        assert stats["candidates"] >= stats["groups"]

    def test_all_flows_stay_valid(self, batches):
        _, canonical, balanced, _ = batches
        assert balanced.valid is None
        assert balanced.num_valid == canonical.num_valid
        assert balanced.delivered_fraction() == 1.0

    def test_seed_changes_are_contained(self, backbone, batches):
        """A different balance seed still satisfies every invariant."""
        wl, canonical, _, _ = batches
        other = BatchRouter(backbone).route_flows(
            wl, balance=True, balance_seed=99
        )
        hr = BatchRouter(backbone).router
        for seq, canon in zip(other.head_paths, canonical.head_paths):
            assert bool(seq) == bool(canon)
            if seq:
                assert hr.seq_weight(seq) <= 1.5 * max(
                    hr.seq_weight(canon), 1
                )
