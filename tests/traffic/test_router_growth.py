"""Router inheritance across node arrivals: ``BatchRouter.inherit_node_add``.

A member-join arrival leaves the head layer object-identical (the
backbone is ``dataclasses.replace``d with the extended clustering), so
the head router's same-object fast path must carry every tree, head
sequence, and head walk — and the path-oracle legs must survive the
canonical-walk rules.  Walk identity against a freshly built router is
the contract.
"""

import dataclasses

import numpy as np

from repro.core.clustering import admit_nodes, khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.graph import Graph
from repro.net.paths import PathOracle
from repro.net.topology import random_topology
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs


def _instance(seed=17, n=120):
    topo = random_topology(n, degree=7.0, seed=seed)
    g = Graph(topo.graph.n, topo.graph.edges)
    g.use_distance_backend("lazy")
    return g


def _build(g):
    paths = PathOracle(g)
    backbone = build_backbone(khop_cluster(g, 2), "NC-Mesh", oracle=paths)
    router = BatchRouter(backbone, oracle=paths)
    return backbone, router, paths


class TestRouterNodeAddInheritance:
    def test_member_join_carries_whole_head_layer(self):
        g = _instance()
        backbone, router, paths = _build(g)
        router.route_flows(uniform_pairs(g.n, 300, seed=3), with_shortest=False)
        rng = np.random.default_rng(5)
        attach = sorted(int(u) for u in rng.choice(g.n, size=3, replace=False))
        g2 = g.with_nodes(1, [(u, g.n) for u in attach])
        c2 = admit_nodes(backbone.clustering, g2)
        assert c2.head_of[g.n] != g.n  # a join, not a declaration
        backbone2 = dataclasses.replace(backbone, clustering=c2)
        new_paths = PathOracle(g2)
        router2 = BatchRouter(backbone2, oracle=new_paths)
        stats = router2.inherit_node_add(router)
        assert stats["head_graph_unchanged"] == 1
        assert stats["trees"] == len(router.router._trees)
        assert stats["head_seqs"] == len(router.router._head_seqs)
        assert stats["head_walks"] == len(router.router._head_walks)
        assert stats["legs"] == new_paths.paths_inherited

    def test_inherited_walks_identical_to_fresh(self):
        g = _instance(seed=19)
        backbone, router, paths = _build(g)
        router.route_flows(uniform_pairs(g.n, 250, seed=7), with_shortest=True)
        # attach to a head so the arrival joins (a declared arrival would
        # need the scoped backbone rebuild instead of the fast path)
        attach = [int(backbone.clustering.heads[0]), 5]
        g2 = g.with_nodes(1, [(u, g.n) for u in sorted(set(attach))])
        c2 = admit_nodes(backbone.clustering, g2)
        assert c2.head_of[g.n] != g.n
        backbone2 = dataclasses.replace(backbone, clustering=c2)
        new_paths = PathOracle(g2)
        router2 = BatchRouter(backbone2, oracle=new_paths)
        router2.inherit_node_add(router)
        wl = uniform_pairs(g2.n, 250, seed=7)  # post-growth address space
        got = router2.route_flows(wl, with_shortest=True)
        fresh = BatchRouter(backbone2).route_flows(wl, with_shortest=True)
        assert got.walks == fresh.walks
        assert got.head_paths == fresh.head_paths
        assert np.array_equal(got.shortest, fresh.shortest)
        # the grown node itself is routable
        p = router2.route(0, g.n)
        assert p[0] == 0 and p[-1] == g.n

    def test_shared_oracle_skips_leg_inheritance(self):
        g = _instance(seed=23)
        backbone, router, paths = _build(g)
        router.route_flows(uniform_pairs(g.n, 150, seed=9), with_shortest=False)
        router2 = BatchRouter(backbone, oracle=paths)  # same oracle object
        stats = router2.inherit_node_add(router)
        assert stats["legs"] == 0


class TestAdmitMember:
    """The O(1) in-place rebind the service growth loop uses per arrival."""

    def _grown(self, seed=19):
        g = _instance(seed=seed)
        backbone, router, paths = _build(g)
        router.route_flows(uniform_pairs(g.n, 250, seed=7), with_shortest=True)
        attach = [int(backbone.clustering.heads[0]), 5]
        g2 = g.with_nodes(1, [(u, g.n) for u in sorted(set(attach))])
        c2 = admit_nodes(backbone.clustering, g2)
        assert c2.head_of[g.n] != g.n  # a join, not a declaration
        backbone2 = dataclasses.replace(backbone, clustering=c2)
        return g, g2, backbone2, router

    def test_walks_identical_to_fresh_build(self):
        g, g2, backbone2, router = self._grown()
        trees_before = router.router._trees
        router.admit_member(backbone2, PathOracle(g2))
        assert router.result is backbone2
        assert router.router._trees is trees_before  # kept, not copied
        wl = uniform_pairs(g2.n, 250, seed=7)
        got = router.route_flows(wl, with_shortest=True)
        fresh = BatchRouter(backbone2).route_flows(wl, with_shortest=True)
        assert got.walks == fresh.walks
        assert got.head_paths == fresh.head_paths
        assert np.array_equal(got.shortest, fresh.shortest)
        p = router.route(0, g.n)
        assert p[0] == 0 and p[-1] == g.n

    def test_rejects_changed_head_graph(self):
        from repro.errors import InvalidParameterError

        import pytest

        g, g2, _, router = self._grown(seed=29)
        rebuilt = build_backbone(khop_cluster(g2, 2), "NC-Mesh")
        with pytest.raises(InvalidParameterError):
            router.admit_member(rebuilt, PathOracle(g2))
