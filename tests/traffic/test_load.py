"""Flow-conservation invariants and load accounting."""

import numpy as np
import pytest

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.generators import path_graph
from repro.net.topology import random_topology
from repro.traffic.load import measure_load
from repro.traffic.router import BatchRouter, RoutedFlows
from repro.traffic.workloads import Workload, hotspot, uniform_pairs


@pytest.fixture(scope="module")
def backbone():
    topo = random_topology(120, degree=7.0, seed=17)
    return build_backbone(khop_cluster(topo.graph, 2), "AC-LMST")


class TestFlowConservation:
    def test_totals_match_per_node_sums(self, backbone):
        """Every flow contributes exactly demand*hops tx, rx and
        demand*(hops-1) forwards — totals equal the per-node sums."""
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 500, seed=31, demand=3)
        routed = BatchRouter(backbone).route_flows(wl)
        ld = measure_load(backbone, routed)
        d, hops = wl.demands, routed.hops
        assert int(ld.tx.sum()) == int((d * hops).sum())
        assert int(ld.rx.sum()) == int((d * hops).sum())
        assert int(ld.transit.sum()) == int((d * (hops - 1)).sum())
        assert ld.packet_hops == int((d * hops).sum())

    def test_endpoint_accounting(self):
        """On a path graph one intra-cluster flow charges exactly its walk."""
        g = path_graph(5)
        bb = build_backbone(khop_cluster(g, 4), "AC-LMST")
        wl = Workload(
            name="one",
            n=5,
            sources=np.array([0]),
            targets=np.array([4]),
            demands=np.array([2]),
        )
        routed = BatchRouter(bb).route_flows(wl)
        ld = measure_load(bb, routed)
        assert routed.walks[0] == (0, 1, 2, 3, 4)
        assert ld.tx.tolist() == [2, 2, 2, 2, 0]
        assert ld.rx.tolist() == [0, 2, 2, 2, 2]
        assert ld.transit.tolist() == [0, 2, 2, 2, 0]

    def test_link_utilization_counts_demand(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 400, seed=32, demand=5)
        routed = BatchRouter(backbone).route_flows(wl)
        ld = measure_load(backbone, routed)
        # each inter-cluster flow crosses len(head_path)-1 links, weighted
        expect = sum(
            5 * (len(hp) - 1) for hp in routed.head_paths if hp
        )
        assert sum(ld.link_util.values()) == expect
        # utilization only on selected links
        assert set(ld.link_util) <= set(backbone.selected_links)


class TestCongestionMetrics:
    def test_cds_carries_the_transit(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 800, seed=33)
        ld = measure_load(backbone, BatchRouter(backbone).route_flows(wl))
        assert 0.5 < ld.cds_share <= 1.0
        assert 0.0 < ld.backbone_fairness <= 1.0
        assert ld.max_node_load >= ld.p99_node_load >= ld.p50_node_load

    def test_hotspot_is_less_fair_than_uniform(self, backbone):
        g = backbone.clustering.graph
        router = BatchRouter(backbone)
        uni = measure_load(
            backbone, router.route_flows(uniform_pairs(g.n, 600, seed=34))
        )
        hot = measure_load(
            backbone,
            router.route_flows(hotspot(g.n, 600, sinks=1, seed=34)),
        )
        assert hot.backbone_fairness < uni.backbone_fairness

    def test_top_loaded_sorted(self, backbone):
        g = backbone.clustering.graph
        wl = uniform_pairs(g.n, 300, seed=35)
        ld = measure_load(backbone, BatchRouter(backbone).route_flows(wl))
        top = ld.top_loaded(5)
        loads = [load for _, load in top]
        assert loads == sorted(loads, reverse=True)
        assert loads[0] == int(ld.node_load.max())

    def test_empty_workload(self, backbone):
        g = backbone.clustering.graph
        wl = Workload(
            name="empty",
            n=g.n,
            sources=np.zeros(0, dtype=np.int64),
            targets=np.zeros(0, dtype=np.int64),
            demands=np.zeros(0, dtype=np.int64),
        )
        ld = measure_load(backbone, BatchRouter(backbone).route_flows(wl))
        assert ld.packet_hops == 0
        assert ld.max_node_load == 0.0


class TestDegradedAccounting:
    """Regression: degraded batches must not pollute the statistics."""

    @staticmethod
    def _degraded_batch():
        """A real walk plus a valid=False placeholder (see route_degraded)."""
        from repro.net.oracle import DIST_DTYPE

        g = path_graph(5)
        bb = build_backbone(khop_cluster(g, 4), "AC-LMST")
        wl = Workload(
            name="degraded",
            n=5,
            sources=np.array([0, 2]),
            targets=np.array([4, 3]),
            demands=np.array([2, 3]),
        )
        routed = BatchRouter(bb).route_flows(wl)
        return bb, RoutedFlows(
            workload=wl,
            walks=[routed.walks[0], (2,)],
            hops=np.array([4, 0], dtype=DIST_DTYPE),
            shortest=np.array([4, 0], dtype=DIST_DTYPE),
            head_paths=[routed.head_paths[0], ()],
            valid=np.array([True, False]),
        )

    def test_stretch_stats_exclude_placeholders(self):
        """Zero-hop placeholder walks must not drag the stretch to 0."""
        bb, routed = self._degraded_batch()
        ld = measure_load(bb, routed)
        assert ld.mean_stretch == 1.0
        assert ld.max_stretch == 1.0
        assert ld.p95_stretch == 1.0

    def test_placeholders_carry_no_load(self):
        bb, routed = self._degraded_batch()
        ld = measure_load(bb, routed)
        # only the valid flow's demand*hops land anywhere
        assert ld.packet_hops == 2 * 4
        assert ld.tx.tolist() == [2, 2, 2, 2, 0]
        assert ld.rx.tolist() == [0, 2, 2, 2, 2]

    def test_top_loaded_breaks_ties_by_min_id(self):
        """Equal loads surface in ascending node-ID order, never reversed."""
        g = path_graph(5)
        bb = build_backbone(khop_cluster(g, 4), "AC-LMST")
        wl = Workload(
            name="one",
            n=5,
            sources=np.array([0]),
            targets=np.array([4]),
            demands=np.array([2]),
        )
        ld = measure_load(bb, BatchRouter(bb).route_flows(wl))
        # node_load is [2, 4, 4, 4, 2]: two three-way ties
        assert ld.top_loaded(5) == [(1, 4), (2, 4), (3, 4), (0, 2), (4, 2)]
        assert ld.top_loaded(2) == [(1, 4), (2, 4)]
