"""Tests for the seeded workload generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.traffic.workloads import (
    WORKLOADS,
    Workload,
    cbr_flows,
    gossip,
    hotspot,
    make_workload,
    uniform_pairs,
)


class TestWorkloadStruct:
    def test_basic_invariants(self):
        wl = uniform_pairs(50, 200, seed=1)
        assert wl.num_flows == 200
        assert wl.total_packets == 200
        assert (wl.sources != wl.targets).all()
        assert wl.sources.min() >= 0 and wl.targets.max() < 50
        assert not wl.sources.flags.writeable

    def test_rejects_self_flows(self):
        with pytest.raises(InvalidParameterError):
            Workload(
                name="bad",
                n=5,
                sources=np.array([1]),
                targets=np.array([1]),
                demands=np.array([1]),
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            Workload(
                name="bad",
                n=3,
                sources=np.array([0]),
                targets=np.array([3]),
                demands=np.array([1]),
            )

    def test_does_not_freeze_caller_arrays(self):
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([2, 3], dtype=np.int64)
        dem = np.array([1, 1], dtype=np.int64)
        Workload(name="x", n=4, sources=src, targets=dst, demands=dem)
        src[0] = 3  # the caller's array must stay writable
        assert src[0] == 3

    def test_rejects_non_integer_arrays(self):
        with pytest.raises(InvalidParameterError):
            Workload(
                name="bad",
                n=5,
                sources=np.array([0]),
                targets=np.array([1]),
                demands=np.array([1.9]),
            )

    def test_rejects_zero_demand(self):
        with pytest.raises(InvalidParameterError):
            Workload(
                name="bad",
                n=5,
                sources=np.array([0]),
                targets=np.array([1]),
                demands=np.array([0]),
            )

    def test_restrict_drops_dead_endpoints(self):
        wl = uniform_pairs(20, 300, seed=2)
        alive = np.ones(20, dtype=bool)
        alive[[3, 7]] = False
        sub = wl.restrict(alive)
        assert sub.num_flows < wl.num_flows
        assert 3 not in sub.sources and 3 not in sub.targets
        assert 7 not in sub.sources and 7 not in sub.targets
        # flows untouched by the dead nodes all survive
        keep = alive[wl.sources] & alive[wl.targets]
        assert sub.num_flows == int(keep.sum())


class TestGenerators:
    def test_deterministic_in_seed(self):
        a = uniform_pairs(40, 100, seed=9)
        b = uniform_pairs(40, 100, seed=9)
        c = uniform_pairs(40, 100, seed=10)
        assert (a.sources == b.sources).all() and (a.targets == b.targets).all()
        assert (a.sources != c.sources).any() or (a.targets != c.targets).any()

    def test_cbr_concentrates_demand(self):
        wl = cbr_flows(30, 5, packets=64, seed=3)
        assert wl.num_flows == 5
        assert (wl.demands == 64).all()
        assert wl.total_packets == 320

    def test_hotspot_targets_are_sinks(self):
        wl = hotspot(60, 500, sinks=3, seed=4)
        assert len(np.unique(wl.targets)) <= 3
        assert (wl.sources != wl.targets).all()

    def test_gossip_covers_every_source(self):
        wl = gossip(25, fanout=3, seed=5)
        assert wl.num_flows == 75
        assert (np.bincount(wl.sources, minlength=25) == 3).all()
        # per-source peers are distinct
        for u in range(25):
            peers = wl.targets[wl.sources == u]
            assert len(set(peers.tolist())) == 3

    def test_registry_and_scaling(self):
        for name in WORKLOADS:
            wl = make_workload(name, 80, 400, seed=6)
            assert wl.num_flows >= 1
            assert wl.n == 80
        with pytest.raises(InvalidParameterError):
            make_workload("nope", 80, 400, seed=6)

    def test_scales_to_tens_of_thousands(self):
        wl = uniform_pairs(2000, 20000, seed=7)
        assert wl.num_flows == 20000
        assert (wl.sources != wl.targets).all()
