"""End-to-end traffic-driven lifetime: drain -> death -> repair -> replay."""

import pytest

from repro.errors import InvalidParameterError
from repro.net.energy import EnergyParams
from repro.net.topology import random_topology
from repro.traffic.lifetime import (
    compare_rotation_under_traffic,
    simulate_traffic_lifetime,
)
from repro.traffic.workloads import uniform_pairs


@pytest.fixture(scope="module")
def scenario():
    """The acceptance scenario: a load regime where batteries run out."""
    topo = random_topology(150, degree=8.0, seed=11)
    wl = uniform_pairs(topo.graph.n, 500, seed=5)
    params = EnergyParams(
        initial=8000.0,
        tx_cost=1.0,
        rx_cost=0.5,
        idle_member=0.01,
        idle_backbone=1.0,
    )
    return topo.graph, wl, params


@pytest.fixture(scope="module")
def both_reports(scenario):
    graph, wl, params = scenario
    return compare_rotation_under_traffic(
        graph, 2, wl, epochs=120, params=params
    )


class TestTrafficDrivenLifetime:
    def test_load_kills_backbone_nodes_first(self, both_reports):
        """Load-proportional drain: the first death is a CDS node."""
        static = both_reports["static"]
        assert static.total_deaths > 0
        first_epoch, first_node, first_role = static.deaths[0]
        assert first_role in ("head", "gateway")

    def test_repair_absorbs_deaths_and_flows_replay(self, both_reports):
        """Deaths run the §3.3 ladder; later epochs still route flows."""
        static = both_reports["static"]
        assert sum(static.repair_actions.values()) == static.total_deaths
        # at least one death was repaired (not everything partitioned)
        repaired = (
            static.repair_actions["none"]
            + static.repair_actions["gateway-reselect"]
            + static.repair_actions["recluster"]
        )
        assert repaired > 0
        first_death_epoch = static.deaths[0][0]
        later = [e for e in static.epochs if e.epoch > first_death_epoch]
        assert later, "simulation must continue past the first death"
        assert all(e.flows_routed > 0 for e in later)

    def test_partition_ends_the_simulation(self, both_reports):
        for report in both_reports.values():
            if report.first_partition_epoch is not None:
                assert report.epochs[-1].epoch == report.first_partition_epoch
                assert report.repair_actions["partition"] == 1

    def test_rotation_extends_time_to_first_partition(self, both_reports):
        """§3.3's claim, under measured traffic: rotation lives longer."""
        energy = both_reports["energy"]
        static = both_reports["static"]
        assert static.first_partition_epoch is not None
        assert energy.lifetime > static.lifetime
        # rotation spreads the head role over many more nodes …
        assert energy.distinct_heads > 2 * static.distinct_heads
        # … and loses fewer nodes to drained batteries
        assert energy.total_deaths < static.total_deaths

    def test_min_residual_declines_monotonically_pre_death(self, both_reports):
        static = both_reports["static"]
        first_death_epoch = static.deaths[0][0]
        # strictly before the first death: the alive set is constant, so
        # the alive-minimum can only decay (deaths can lift it later).
        pre = [e.min_residual for e in static.epochs if e.epoch < first_death_epoch]
        assert all(a >= b for a, b in zip(pre, pre[1:]))


class TestLifetimeValidation:
    def test_rejects_bad_scheme(self, scenario):
        graph, wl, params = scenario
        with pytest.raises(InvalidParameterError):
            simulate_traffic_lifetime(
                graph, 2, wl, epochs=1, scheme="nope", params=params
            )

    def test_rejects_mismatched_workload(self, scenario):
        graph, _, params = scenario
        wl = uniform_pairs(10, 5, seed=1)
        with pytest.raises(InvalidParameterError):
            simulate_traffic_lifetime(graph, 2, wl, epochs=1, params=params)

    def test_no_deaths_when_batteries_are_huge(self, scenario):
        graph, wl, _ = scenario
        rich = EnergyParams(initial=1e9)
        report = simulate_traffic_lifetime(
            graph, 2, wl, epochs=2, scheme="static", params=rich
        )
        assert report.total_deaths == 0
        assert report.first_partition_epoch is None
        assert len(report.epochs) == 2
        assert report.lifetime == 2


class TestLossyLifetime:
    def test_lossless_equals_default_world(self, scenario):
        from repro.faults.delivery import LossModel

        graph, wl, params = scenario
        plain = simulate_traffic_lifetime(
            graph, 2, wl, epochs=5, params=params
        )
        lossless = simulate_traffic_lifetime(
            graph, 2, wl, epochs=5, params=params,
            loss=LossModel.uniform(graph.n, 0.0),
        )
        assert plain.mean_delivered == 1.0
        assert lossless.mean_delivered == 1.0
        assert [e.deaths for e in plain.epochs] == [
            e.deaths for e in lossless.epochs
        ]

    def test_loss_reduces_delivery_and_reshapes_drain(self, scenario):
        from repro.faults.delivery import LossModel

        graph, wl, params = scenario
        lossy = simulate_traffic_lifetime(
            graph, 2, wl, epochs=5, params=params,
            loss=LossModel.uniform(graph.n, 0.15),
        )
        assert 0.0 < lossy.mean_delivered < 1.0
        assert all(0.0 <= e.delivered <= 1.0 for e in lossy.epochs)

    def test_same_delivery_seed_reproduces(self, scenario):
        from repro.faults.delivery import LossModel

        graph, wl, params = scenario
        m = LossModel.uniform(graph.n, 0.1)
        a = simulate_traffic_lifetime(
            graph, 2, wl, epochs=4, params=params, loss=m, delivery_seed=3
        )
        b = simulate_traffic_lifetime(
            graph, 2, wl, epochs=4, params=params, loss=m, delivery_seed=3
        )
        assert [e.delivered for e in a.epochs] == [
            e.delivered for e in b.epochs
        ]

    def test_rejects_mismatched_loss_model(self, scenario):
        from repro.faults.delivery import LossModel

        graph, wl, params = scenario
        with pytest.raises(InvalidParameterError):
            simulate_traffic_lifetime(
                graph, 2, wl, epochs=1, params=params,
                loss=LossModel.uniform(graph.n + 1, 0.1),
            )
