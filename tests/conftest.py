"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.net.graph import Graph
from repro.net.topology import Topology, random_topology


# --------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 18, max_extra: int = 25):
    """Random connected graphs: a random spanning tree plus extra edges.

    The tree guarantees connectivity; the extra edges densify arbitrarily,
    so the strategy covers trees, sparse graphs and near-cliques.
    """
    n = draw(st.integers(min_n, max_n))
    edges: set[tuple[int, int]] = set()
    for i in range(1, n):
        p = draw(st.integers(0, i - 1))
        edges.add((p, i))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_extra,
        )
    )
    for u, v in extra:
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, edges)


@st.composite
def trees(draw, min_n: int = 1, max_n: int = 20):
    """Random labelled trees (connected, m = n - 1)."""
    n = draw(st.integers(min_n, max_n))
    edges = []
    for i in range(1, n):
        p = draw(st.integers(0, i - 1))
        edges.append((p, i))
    return Graph(n, edges)


#: The paper's k range.
ks = st.integers(1, 4)


# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def topo100() -> Topology:
    """A 100-node, degree-6 connected unit-disk topology (paper workload)."""
    return random_topology(100, degree=6.0, seed=42)


@pytest.fixture(scope="session")
def topo60() -> Topology:
    """A smaller instance for the distributed-protocol tests."""
    return random_topology(60, degree=6.0, seed=7)


@pytest.fixture(scope="session")
def dense80() -> Topology:
    """A dense (D = 10) instance."""
    return random_topology(80, degree=10.0, seed=3)
