"""Integration tests for the figure drivers and the claims checker."""

import pytest

from repro.figures import ablations, claims, figure4, figure5, figure6, figure7, overhead


@pytest.fixture(scope="module")
def tiny_sparse():
    """A miniature Figure-5 style sweep (fast but structurally complete)."""
    return figure5.run(trials=4, ks=(1, 2, 3, 4), ns=(40, 70, 100))


@pytest.fixture(scope="module")
def tiny_dense():
    return figure6.run(trials=3, ks=(2, 3), ns=(40, 70))


class TestFigure4:
    def test_runs_and_orders(self):
        data = figure4.run(n=80, k=2, seed=1)
        counts = data.gateway_counts()
        assert set(counts) == {"G-MST", "NC-Mesh", "NC-LMST", "AC-LMST"}
        assert counts["G-MST"] <= counts["NC-Mesh"]
        assert counts["NC-LMST"] <= counts["NC-Mesh"]

    def test_render_contains_counts(self):
        data = figure4.run(n=60, k=2, seed=2)
        out = figure4.render(data)
        assert "clusterheads" in out
        assert "AC-LMST" in out


class TestFigure5And6:
    def test_sweep_shape(self, tiny_sparse):
        assert len(tiny_sparse.cells) == 4 * 3
        out = figure5.render(tiny_sparse)
        assert "Figure 5" in out
        assert "k = 4" in out

    def test_cds_grows_with_n(self, tiny_sparse):
        for k in (1, 2):
            series = tiny_sparse.series("cds_size", "NC-Mesh", 6.0, k)
            assert series[-1][1].mean > series[0][1].mean

    def test_dense_runs(self, tiny_dense):
        out = figure6.render(tiny_dense)
        assert "Figure 6" in out

    def test_dense_fewer_heads_than_sparse(self, tiny_sparse, tiny_dense):
        sparse_heads = tiny_sparse.cell(70, 6.0, 2).num_heads.mean
        dense_heads = tiny_dense.cell(70, 10.0, 2).num_heads.mean
        assert dense_heads <= sparse_heads + 1  # dense nets need fewer heads


class TestFigure7:
    def test_monotone_in_k(self):
        res = figure7.run(trials=4, ks=(1, 2, 3), ns=(60, 100))
        heads = [res.cell(100, 6.0, k).num_heads.mean for k in (1, 2, 3)]
        assert heads[0] > heads[1] > heads[2]
        out = figure7.render(res)
        assert "Figure 7(a)" in out and "Figure 7(b)" in out


class TestClaims:
    def test_verdict_structure(self, tiny_sparse, tiny_dense):
        verdicts = claims.check_claims(tiny_sparse, tiny_dense)
        assert [v.claim_id for v in verdicts] == [1, 2, 3, 4, 5, 6]
        out = claims.render_verdicts(verdicts)
        assert "A-NCR" in out

    def test_core_claims_hold_on_small_sweep(self, tiny_sparse):
        verdicts = {v.claim_id: v for v in claims.check_claims(tiny_sparse)}
        # the robust claims should hold even on a small budget
        assert verdicts[1].holds, verdicts[1].evidence
        assert verdicts[3].holds, verdicts[3].evidence
        assert verdicts[6].holds, verdicts[6].evidence


class TestOverheadAndAblations:
    def test_overhead_increases_with_k(self):
        rows = overhead.run(trials=2, ks=(1, 2, 3))
        assert rows[0].total_tx < rows[-1].total_tx
        assert "overhead" in overhead.render(rows).lower()

    def test_membership_ablation(self):
        rows = ablations.run_membership(trials=3)
        byname = {r.policy: r for r in rows}
        assert set(byname) == {"id-based", "distance-based", "size-based"}
        # distance-based joins the nearest head: mean head distance minimal
        assert (
            byname["distance-based"].mean_head_distance
            <= byname["id-based"].mean_head_distance + 1e-9
        )
        # size-based balances: smallest size spread
        assert (
            byname["size-based"].cluster_size_std
            <= byname["id-based"].cluster_size_std + 1e-9
        )

    def test_priority_ablation(self):
        rows = ablations.run_priority(trials=2)
        assert {r.scheme for r in rows} == {
            "lowest-id",
            "highest-degree",
            "random-timer",
        }

    def test_neighbor_rule_ablation_ordering(self):
        rows = ablations.run_neighbor_rules(trials=3)
        by = {r.rule: r.pairs for r in rows}
        assert by["A-NCR"] <= by["Wu-Lou 2.5-hop"] <= by["NC(2k+1)"]

    def test_ablation_render(self):
        out = ablations.render(
            ablations.run_membership(trials=2),
            ablations.run_priority(trials=2),
            ablations.run_neighbor_rules(trials=2),
        )
        assert "Ablation A1" in out and "Ablation A3" in out
