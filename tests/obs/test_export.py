"""Manifest contents, JSONL round-trip, and the ASCII renderers."""

import json
import re

from repro import obs
from repro.obs.export import TRACE_SCHEMA


def _sample_spans():
    with obs.span("root", seed=7) as root:
        obs.counter("events").add(2)
        with obs.span("stage", step=0):
            obs.counter("events").add(3)
    return [root]


class TestRunManifest:
    def test_self_describing_fields(self):
        m = obs.run_manifest(seed=7, n=400, k=2, backend="landmark")
        assert m["type"] == "manifest"
        assert m["schema"] == TRACE_SCHEMA
        assert m["git_sha"]  # "unknown" at worst, never empty
        assert m["python"].count(".") == 2
        assert "T" in m["created"] and m["created"].endswith("Z")
        assert m["knobs"] == {
            "backend": "landmark",
            "k": 2,
            "n": 400,
            "seed": 7,
        }

    def test_knobs_are_sorted_for_stable_diffs(self):
        m = obs.run_manifest(zulu=1, alpha=2, mid=3)
        assert list(m["knobs"]) == ["alpha", "mid", "zulu"]


class TestJsonlRoundTrip:
    def test_write_then_read_restores_all_three_sections(
        self, obs_on, tmp_path
    ):
        spans = _sample_spans()
        out = obs.write_trace(
            tmp_path / "t.jsonl", spans, obs.run_manifest(seed=7)
        )
        manifest, span_dicts, metrics = obs.read_trace(out)
        assert manifest["knobs"] == {"seed": 7}
        assert len(span_dicts) == 1
        root = span_dicts[0]
        assert root["name"] == "root"
        assert root["meta"] == {"seed": 7}
        assert root["counters"] == {"events": 2}
        (child,) = root["children"]
        assert child["name"] == "stage"
        assert child["counters"] == {"events": 3}
        assert metrics["counters"] == {"events": 5}

    def test_file_is_one_json_record_per_line(self, obs_on, tmp_path):
        out = obs.write_trace(
            tmp_path / "t.jsonl", _sample_spans(), obs.run_manifest()
        )
        lines = out.read_text().splitlines()
        assert [json.loads(ln)["type"] for ln in lines] == [
            "manifest",
            "span",
            "metrics",
        ]

    def test_round_trip_dicts_render_like_live_spans(self, obs_on, tmp_path):
        spans = _sample_spans()
        out = obs.write_trace(
            tmp_path / "t.jsonl", spans, obs.run_manifest()
        )
        _, span_dicts, _ = obs.read_trace(out)
        live = obs.render_trace_summary(spans)
        reread = obs.render_trace_summary(span_dicts)
        assert live == reread


class TestRenderers:
    def test_trace_summary_rows_and_footer(self, obs_on):
        text = obs.render_trace_summary(_sample_spans())
        lines = text.splitlines()
        assert "root[seed=7]" in lines[2]
        assert "  stage[step=0]" in lines[3]
        assert "events=3" in lines[3]  # per-span counter attribution
        assert "of tallest root" in lines[-1]
        # Self-times telescope to the root; the footer is computed from
        # microsecond-rounded to_dict values, so allow rounding slack on
        # these sub-millisecond test spans.
        match = re.search(r"\((\d+(?:\.\d+)?)% of tallest root\)", lines[-1])
        assert match is not None
        assert float(match.group(1)) >= 90.0

    def test_trace_summary_without_spans(self):
        assert obs.render_trace_summary([]) == "no spans recorded"

    def test_metrics_tables(self, obs_on):
        obs.counter("c.hits").add(3)
        obs.gauge("g.depth").set(2.5)
        obs.histogram("h.attempts", bounds=(1.0, 4.0)).observe_many(
            [1, 2, 9]
        )
        text = obs.render_metrics()
        assert "counters:" in text
        assert "c.hits" in text and "3" in text
        assert "gauges:" in text and "2.5" in text
        assert "histograms:" in text
        assert "count=3" in text
        assert ">" in text  # the 9 sample lands in the overflow row

    def test_metrics_empty_message(self, obs_off):
        assert "no metrics recorded" in obs.render_metrics()
