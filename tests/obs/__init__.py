"""Test package marker (enables relative imports of the shared conftest)."""
