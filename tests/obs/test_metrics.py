"""Registry instruments, publish helpers, and the disabled fast path."""

import os

import pytest

from repro import obs
from repro.net.topology import random_topology
from repro.obs.metrics import _NOOP, Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("c").add(-1)

    def test_gauge_overwrites(self):
        g = Gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_bins_cumulative_upper_bounds(self):
        h = Histogram("h", bounds=(1.0, 4.0, 16.0))
        for v in (0.5, 1.0, 5.0, 16.0, 17.0):
            h.observe(v)
        # bin i holds values <= bounds[i]; the extra bin is overflow.
        assert h.counts == [2, 0, 2, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(39.5 / 5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascend"):
            Histogram("h", bounds=(4.0, 1.0))

    def test_default_buckets_cover_large_counts(self):
        h = Histogram("h")
        h.observe_many([1, 10**9, 10**10])
        assert h.count == 3
        assert h.counts[-1] == 1  # 10^10 > 4^15 lands in overflow


class TestRegistry:
    def test_instruments_are_created_once(self, obs_on):
        assert obs.counter("x") is obs.counter("x")
        assert obs.gauge("y") is obs.gauge("y")
        assert obs.histogram("z") is obs.histogram("z")
        assert len(obs.registry()) == 3

    def test_snapshot_shape_and_sorting(self, obs_on):
        obs.counter("b").add(2)
        obs.counter("a").add(1)
        obs.gauge("g").set(7)
        obs.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = obs.registry().snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "bounds": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_reset_drops_everything(self, obs_on):
        obs.counter("x").add()
        obs.reset()
        assert len(obs.registry()) == 0


class TestPublishHelpers:
    def test_publish_counters_prefixes_and_adds(self, obs_on):
        obs.publish_counters("router.inherit", {"legs": 3, "trees": 1})
        obs.publish_counters("router.inherit", {"legs": 2})
        values = obs.registry().counter_values()
        assert values["router.inherit.legs"] == 5
        assert values["router.inherit.trees"] == 1

    def test_publish_oracle_stats_gauges_by_backend(self, obs_on):
        g = random_topology(40, degree=5.0, seed=3).graph
        g.use_distance_backend("lazy")
        g.oracle.row(0)
        g.oracle.row(0)
        obs.publish_oracle_stats(g.oracle.stats())
        snap = obs.registry().snapshot()
        assert snap["gauges"]["oracle.lazy.rows_computed"] == 1.0
        assert snap["gauges"]["oracle.lazy.row_hits"] == 1.0
        # zero-valued fields are skipped, not published as 0-gauges
        assert "oracle.lazy.balls_computed" not in snap["gauges"]

    def test_publish_is_idempotent_for_repeated_snapshots(self, obs_on):
        g = random_topology(40, degree=5.0, seed=3).graph
        g.use_distance_backend("lazy")
        g.oracle.row(0)
        obs.publish_oracle_stats(g.oracle.stats())
        obs.publish_oracle_stats(g.oracle.stats())  # gauges: set, not add
        snap = obs.registry().snapshot()
        assert snap["gauges"]["oracle.lazy.rows_computed"] == 1.0


class TestDisabledFastPath:
    def test_helpers_return_shared_noop(self, obs_off):
        assert obs.counter("x") is _NOOP
        assert obs.gauge("y") is _NOOP
        assert obs.histogram("z") is _NOOP
        _NOOP.add(5)
        _NOOP.set(1)
        _NOOP.observe(2)
        _NOOP.observe_many([3])
        assert len(obs.registry()) == 0

    def test_publishers_are_noops(self, obs_off):
        obs.publish_counters("p", {"x": 1})
        g = random_topology(30, degree=5.0, seed=1).graph
        obs.publish_oracle_stats(g.oracle.stats())
        assert len(obs.registry()) == 0

    def test_env_default_is_off(self):
        if os.environ.get("REPRO_TRACE", "0") not in ("", "0"):
            pytest.skip("REPRO_TRACE set in the environment")
        # The suite runs without REPRO_TRACE: nothing may be collecting.
        assert not obs.enabled()
