"""Shared fixtures for the observability-layer tests.

The obs layer is process-global state (one registry, one span stack), so
every test that flips the switch must restore a pristine disabled world
— including on failure — or it would leak instrumentation into the rest
of the suite.
"""

import pytest

from repro import obs


@pytest.fixture
def obs_on():
    """Enable the observability layer with clean state; disable after."""
    obs.set_enabled(True)
    obs.reset()
    obs.reset_tracer()
    yield
    obs.reset()
    obs.reset_tracer()
    obs.set_enabled(False)


@pytest.fixture
def obs_off():
    """Guarantee the disabled state with clean registry/tracer."""
    obs.set_enabled(False)
    obs.reset()
    obs.reset_tracer()
    yield
    obs.reset()
    obs.reset_tracer()
    obs.set_enabled(False)
