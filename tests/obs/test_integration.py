"""The instrumented pipeline: span coverage and disabled-mode identity."""

import pytest

from repro import obs
from repro.traffic.report import run_traffic

RUN = dict(n=60, degree=6.0, k=2, flows=50, seed=11)


class TestTracedTrafficRun:
    @pytest.fixture()
    def traced(self, obs_on):
        report = run_traffic(**RUN, lifetime_epochs=2, backend="landmark")
        (root,) = obs.take_finished()
        return report, root

    def test_root_span_covers_the_documented_stages(self, traced):
        _, root = traced
        assert root.name == "traffic"
        assert root.meta["n"] == RUN["n"] and root.meta["seed"] == RUN["seed"]
        names = {sp.name for sp in root.walk()}
        # the acceptance-criteria stage set, end to end
        for stage in (
            "topology",
            "cluster",
            "cds",
            "labels",
            "router",
            "epochs",
            "epoch",
        ):
            assert stage in names, f"missing {stage} span"

    def test_self_times_cover_the_root_duration(self, traced):
        _, root = traced
        covered = sum(sp.self_time for sp in root.walk())
        assert covered == pytest.approx(root.duration, rel=1e-6)
        assert covered >= 0.90 * root.duration

    def test_lifetime_epochs_emit_epoch_spans(self, traced):
        _, root = traced
        epochs = [sp for sp in root.walk() if sp.name == "epoch"]
        # step-0 accounting epoch + 2 lifetime epochs x 2 schemes
        assert len(epochs) == 5

    def test_oracle_stats_land_in_the_registry(self, traced):
        snap = obs.registry().snapshot()
        oracle_gauges = [
            name for name in snap["gauges"] if name.startswith("oracle.")
        ]
        assert oracle_gauges, "no oracle.* gauges published"
        paths_gauges = [
            name for name in snap["gauges"] if name.startswith("paths.")
        ]
        assert paths_gauges, "no paths.* gauges published"


class TestDisabledIdentity:
    def test_disabled_run_matches_enabled_run(self, obs_off):
        base = run_traffic(**RUN)
        assert len(obs.registry()) == 0
        assert obs.take_finished() == []

        obs.set_enabled(True)
        try:
            traced = run_traffic(**RUN)
        finally:
            obs.reset()
            obs.reset_tracer()
            obs.set_enabled(False)

        assert traced.load.packet_hops == base.load.packet_hops
        assert traced.load.mean_stretch == base.load.mean_stretch
        assert traced.load.max_node_load == base.load.max_node_load
        assert traced.load.cds_share == base.load.cds_share
        assert traced.backbone.cds_size == base.backbone.cds_size
        assert traced.routing.mean_table == base.routing.mean_table
