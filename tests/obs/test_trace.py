"""Span nesting, self-time telescoping, and counter-delta attribution."""

import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN


class TestNesting:
    def test_children_attach_and_stack_unwinds(self, obs_on):
        with obs.span("root") as root:
            assert obs.active_span() is root
            with obs.span("a") as a:
                assert obs.active_span() is a
            with obs.span("b"):
                with obs.span("b1"):
                    pass
        assert obs.active_span() is None
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[1].children] == ["b1"]

    def test_timing_is_monotone_and_self_times_telescope(self, obs_on):
        with obs.span("root") as root:
            with obs.span("a"):
                pass
            with obs.span("b"):
                with obs.span("b1"):
                    pass
        for node in root.walk():
            assert node.duration >= 0.0
            assert node.self_time >= 0.0
            for child in node.children:
                assert child.start >= node.start
                assert child.end <= node.end
                assert child.duration <= node.duration
        # The additive contract behind the flame summary footer.
        total_self = sum(node.self_time for node in root.walk())
        assert total_self == pytest.approx(root.duration)

    def test_take_finished_drains_roots_in_order(self, obs_on):
        with obs.span("first"):
            pass
        with obs.span("second"):
            with obs.span("child"):
                pass
        roots = obs.take_finished()
        assert [sp.name for sp in roots] == ["first", "second"]
        assert obs.take_finished() == []

    def test_walk_is_depth_first_preorder(self, obs_on):
        with obs.span("root") as root:
            with obs.span("a"):
                with obs.span("a1"):
                    pass
            with obs.span("b"):
                pass
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]


class TestCounterAttribution:
    def test_children_claim_their_deltas(self, obs_on):
        with obs.span("parent") as parent:
            obs.counter("x").add(1)
            with obs.span("left") as left:
                obs.counter("x").add(3)
            with obs.span("right") as right:
                obs.counter("x").add(2)
        assert left.counters == {"x": 3}
        assert right.counters == {"x": 2}
        # parent keeps only its own unattributed remainder
        assert parent.counters == {"x": 1}

    def test_grandchild_claims_survive_zero_remainder_child(self, obs_on):
        # The middle span increments nothing itself: its remainder for x
        # is empty, but its *child's* claim must still shield the root.
        with obs.span("root") as root:
            with obs.span("mid") as mid:
                with obs.span("leaf") as leaf:
                    obs.counter("x").add(5)
        assert leaf.counters == {"x": 5}
        assert mid.counters == {}
        assert root.counters == {}

    def test_fully_claimed_counters_vanish_from_parent(self, obs_on):
        with obs.span("parent") as parent:
            with obs.span("child") as child:
                obs.counter("x").add(4)
        assert child.counters == {"x": 4}
        assert "x" not in parent.counters

    def test_meta_rides_along(self, obs_on):
        with obs.span("epoch", step=3, scheme="rotate") as sp:
            pass
        assert sp.meta == {"step": 3, "scheme": "rotate"}


class TestToDict:
    def test_times_are_relative_to_root_start(self, obs_on):
        with obs.span("root") as root:
            with obs.span("child"):
                pass
        d = root.to_dict()
        assert d["start"] == 0.0
        child = d["children"][0]
        assert child["start"] >= 0.0
        assert child["start"] + child["duration"] <= d["duration"] + 1e-6

    def test_empty_fields_are_omitted(self, obs_on):
        with obs.span("bare") as sp:
            pass
        d = sp.to_dict()
        assert "meta" not in d
        assert "counters" not in d
        assert "children" not in d


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self, obs_off):
        first = obs.span("anything", n=1)
        second = obs.span("else")
        assert first is second is _NOOP_SPAN
        with first:
            with obs.span("nested"):
                pass
        assert obs.take_finished() == []
        assert obs.active_span() is None
        assert len(obs.registry()) == 0

    def test_exception_still_closes_and_records_span(self, obs_on):
        with pytest.raises(RuntimeError):
            with obs.span("root"):
                with obs.span("child"):
                    raise RuntimeError("boom")
        roots = obs.take_finished()
        assert [sp.name for sp in roots] == ["root"]
        assert roots[0].end >= roots[0].start
        assert obs.active_span() is None
