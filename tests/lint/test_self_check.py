"""The shipped tree must lint clean, and the CLI must report honestly.

This is the repository's own gate: the same ``run_lint`` invocation
``make lint`` performs, asserted from pytest so tier-1 fails the moment
a rule violation lands.
"""

from pathlib import Path

from repro.cli import main
from repro.lint import DEFAULT_PATHS, RULE_DOCS, all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTree:
    def test_repository_lints_clean(self):
        run = run_lint(REPO_ROOT, paths=DEFAULT_PATHS)
        report = "\n".join(str(d) for d in run.diagnostics)
        assert not run.diagnostics, f"repro-lint findings:\n{report}"
        # The suite actually covered the tree (not a silently-empty glob).
        assert run.files_checked > 100

    def test_every_rule_is_registered_and_documented(self):
        rules = all_rules()
        assert [r.code for r in rules] == sorted(r.code for r in rules)
        assert {r.code for r in rules} == {
            f"R{i:03d}" for i in range(1, 12)
        }
        for rule in rules:
            assert rule.code in RULE_DOCS
            assert rule.name == RULE_DOCS[rule.code][0]
            assert rule.summary  # non-empty one-liner

    def test_sanctioned_pragmas_are_the_documented_two(self):
        # The shipped tree carries exactly two suppressions (labeling's
        # int64 sentinel headroom, PLL's sequential root loop).  A new
        # pragma is a reviewable event, not drive-by noise.
        run = run_lint(REPO_ROOT, paths=DEFAULT_PATHS)
        assert run.suppressed == 2


class TestCliLint:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        assert main(["lint", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "files clean" in out

    def test_findings_exit_nonzero_with_report(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import numpy as np\nRNG = np.random.default_rng(7)\n"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/bad.py:2: R001" in out
        assert out.rstrip().endswith("repro-lint: 1 finding")

    def test_list_rules_prints_every_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_DOCS:
            assert code in out

    def test_explicit_paths_narrow_the_run(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import numpy as np\nRNG = np.random.default_rng(7)\n"
        )
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_ok.py").write_text("x = 1\n")
        assert main(["lint", "--root", str(tmp_path), "tests"]) == 0
        assert (
            main(["lint", "--root", str(tmp_path), "src/repro/bad.py"]) == 1
        )
        capsys.readouterr()
