"""Shared fixture machinery for the repro-lint rule tests.

Every rule gates on repository-relative paths (``src/repro/...``,
``tests/...``), so fixtures are written into a throwaway tree under
``tmp_path`` that mimics the real layout, then linted with
:func:`repro.lint.run_lint` rooted at that tree.
"""

import textwrap

import pytest

from repro.lint import run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{rel_path: source}`` fixtures and lint the resulting tree."""

    def _lint(files, paths=None, rules=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return run_lint(tmp_path, paths=paths, rules=rules)

    return _lint


def codes(run):
    """The sorted rule codes present in a lint run's findings."""
    return sorted({d.code for d in run.diagnostics})
