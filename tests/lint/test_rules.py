"""Fixture tests: every rule fires on a positive, stays quiet on a
negative, and yields to a pragma.

Fixtures are throwaway trees mimicking the repository layout (the rules
gate on ``src/repro/...`` / ``tests/...`` relative paths).
"""

from .conftest import codes


def lines_with(run, code):
    return [d.line for d in run.diagnostics if d.code == code]


class TestParseFailureR000:
    def test_broken_file_reports_r000_only(self, lint_tree):
        run = lint_tree({"src/repro/broken.py": "def oops(:\n"})
        assert codes(run) == ["R000"]
        assert run.diagnostics[0].path == "src/repro/broken.py"

    def test_valid_file_is_silent(self, lint_tree):
        run = lint_tree({"src/repro/fine.py": "x = 1\n"})
        assert codes(run) == []


class TestRngDisciplineR001:
    def test_global_seed_call_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": """\
                import numpy as np

                def topology():
                    np.random.seed(0)
                    return np.random.rand(4)
                """
            }
        )
        assert codes(run) == ["R001"]
        assert lines_with(run, "R001") == [4, 5]

    def test_legacy_random_state_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": """\
                import numpy as np

                def topology(seed):
                    return np.random.RandomState(seed).rand(4)
                """
            }
        )
        assert codes(run) == ["R001"]

    def test_unseeded_default_rng_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": """\
                import numpy as np

                def topology():
                    rng = np.random.default_rng()
                    other = np.random.default_rng(None)
                    return rng, other
                """
            }
        )
        assert lines_with(run, "R001") == [4, 5]

    def test_module_level_generator_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": """\
                import numpy as np

                RNG = np.random.default_rng(7)
                """
            }
        )
        assert codes(run) == ["R001"]

    def test_seeded_local_generator_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": """\
                import numpy as np

                def topology(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random(4)
                """
            }
        )
        assert codes(run) == []

    def test_rule_does_not_apply_outside_src(self, lint_tree):
        run = lint_tree(
            {
                "benchmarks/bench_gen.py": """\
                import numpy as np

                RNG = np.random.default_rng(7)
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/gen.py": (
                    "import numpy as np\n"
                    "RNG = np.random.default_rng(7)"
                    "  # repro-lint: disable=R001\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestDistDtypeR002:
    def test_int64_distance_creation_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/x.py": """\
                import numpy as np

                def f(n):
                    hops = np.zeros(n, dtype=np.int64)
                    return hops
                """
            }
        )
        assert codes(run) == ["R002"]

    def test_astype_on_distance_expression_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/traffic/x.py": """\
                import numpy as np

                def f(oracle, pairs):
                    shortest = oracle.pair_distances(pairs).astype(np.int64)
                    return shortest
                """
            }
        )
        assert codes(run) == ["R002"]

    def test_astype_on_distance_receiver_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/x.py": """\
                import numpy as np

                def f(dists):
                    return dists.astype(np.uint16)
                """
            }
        )
        assert codes(run) == ["R002"]

    def test_int16_anywhere_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/maintenance/x.py": """\
                import numpy as np

                CEILING = np.int16
                """
            }
        )
        assert codes(run) == ["R002"]

    def test_index_arrays_stay_legal(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/x.py": """\
                import numpy as np

                def f(n):
                    order = np.zeros(n, dtype=np.int64)
                    indptr = np.arange(n + 1, dtype=np.int64)
                    return order, indptr
                """
            }
        )
        assert codes(run) == []

    def test_dist_dtype_and_floats_stay_legal(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/x.py": """\
                import numpy as np

                DIST_DTYPE = np.int32

                def f(n):
                    dist = np.zeros(n, dtype=DIST_DTYPE)
                    distances = np.zeros(n, dtype=np.float64)
                    return dist, distances
                """
            }
        )
        assert codes(run) == []

    def test_rule_scoped_to_dtype_prefixes(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/x.py": """\
                import numpy as np

                def f(n):
                    hops = np.zeros(n, dtype=np.int64)
                    return hops
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/x.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    hop_dist = np.full(n, 0, dtype=np.int64)"
                    "  # repro-lint: disable=R002\n"
                    "    return hop_dist\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestDenseAllocationR003:
    def test_square_allocation_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/x.py": """\
                import numpy as np

                def f(n):
                    return np.zeros((n, n))
                """
            }
        )
        assert codes(run) == ["R003"]

    def test_textual_square_shapes_fire(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/x.py": """\
                import numpy as np

                def f(idx):
                    return np.empty((idx.size, idx.size), dtype=np.float64)
                """
            }
        )
        assert codes(run) == ["R003"]

    def test_rectangular_and_constant_shapes_are_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/x.py": """\
                import numpy as np

                def f(n, m):
                    a = np.zeros((n, m))
                    b = np.zeros((0, 0))
                    return a, b
                """
            }
        )
        assert codes(run) == []

    def test_dense_backend_allowlist(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/oracle.py": """\
                import numpy as np

                def _dense_all_pairs(n):
                    return np.zeros((n, n))
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/x.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    return np.zeros((n, n))"
                    "  # repro-lint: disable=R003\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestHotPathLoopsR004:
    def test_per_node_range_loop_fires_in_hot_module(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/traffic/load.py": """\
                def account(n, walks):
                    total = 0
                    for i in range(n):
                        total += i
                    return total
                """
            }
        )
        assert codes(run) == ["R004"]

    def test_edges_iteration_fires_in_hot_module(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/clustering.py": """\
                def degree(graph):
                    count = 0
                    for u, v in graph.edges():
                        count += 1
                    return count
                """
            }
        )
        assert codes(run) == ["R004"]

    def test_same_loop_outside_hot_modules_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/core/validate.py": """\
                def check(n):
                    for i in range(n):
                        pass
                """
            }
        )
        assert codes(run) == []

    def test_comprehensions_and_bounded_loops_are_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/traffic/load.py": """\
                def account(n, walks):
                    sizes = [len(w) for w in walks]
                    for chunk in range(0, n, 64):
                        pass
                    return sizes
                """
            }
        )
        assert codes(run) == []

    def test_reference_engine_allowlist(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/labeling.py": """\
                def _build_pruned_labels_reference(n):
                    for v in range(n):
                        pass
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/oracle.py": (
                    "def sweep(n):\n"
                    "    for v in range(n):  # repro-lint: disable=R004\n"
                    "        pass\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestInheritanceCoverageR005:
    SRC = """\
    class RowCache:
        def inherit_from(self, parent, removed):
            return 0
    """

    def test_uncovered_certificate_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/cache.py": self.SRC,
                "tests/net/test_cache.py": """\
                def test_unrelated():
                    assert True
                """,
            }
        )
        assert codes(run) == ["R005"]
        assert "RowCache.inherit_from" in run.diagnostics[0].message

    def test_class_plus_call_in_one_test_module_covers(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/cache.py": self.SRC,
                "tests/net/test_cache.py": """\
                from repro.net.cache import RowCache

                def test_carryover():
                    child = RowCache()
                    assert child.inherit_from(RowCache(), 3) == 0
                """,
            }
        )
        assert codes(run) == []

    def test_call_without_class_mention_does_not_cover(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/cache.py": self.SRC,
                "tests/net/test_cache.py": """\
                def test_duck_typed(thing):
                    thing.inherit_from(None, 3)
                """,
            }
        )
        assert codes(run) == ["R005"]

    def test_with_delta_methods_are_in_scope(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/traffic/m.py": """\
                class LoadReport:
                    def with_edge_delta(self, delta):
                        return self
                """,
                "tests/test_m.py": "def test_x():\n    assert True\n",
            }
        )
        assert codes(run) == ["R005"]

    def test_pragma_on_def_line_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/net/cache.py": (
                    "class RowCache:\n"
                    "    def inherit_from(self, parent):"
                    "  # repro-lint: disable=R005\n"
                    "        return 0\n"
                ),
                "tests/test_x.py": "def test_x():\n    assert True\n",
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestAllConsistencyR006:
    def test_phantom_export_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/pkg.py": """\
                __all__ = ["exists", "phantom"]

                exists = 1
                """
            }
        )
        assert codes(run) == ["R006"]
        assert "phantom" in run.diagnostics[0].message

    def test_duplicate_export_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/pkg.py": """\
                __all__ = ["twice", "twice"]

                twice = 1
                """
            }
        )
        assert codes(run) == ["R006"]
        assert "duplicate" in run.diagnostics[0].message

    def test_conditional_and_try_bindings_count(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/pkg.py": """\
                __all__ = ["maybe", "fallback", "Cls", "func"]

                if True:
                    maybe = 1
                try:
                    import json as fallback
                except ImportError:
                    fallback = None

                class Cls:
                    pass

                def func():
                    pass
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/pkg.py": (
                    '__all__ = ["phantom"]  # repro-lint: disable=R006\n'
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestSeededTestsR007:
    def test_global_seed_in_tests_fires(self, lint_tree):
        run = lint_tree(
            {
                "tests/test_x.py": """\
                import numpy as np

                def test_x():
                    np.random.seed(0)
                """
            }
        )
        assert codes(run) == ["R007"]

    def test_stdlib_random_calls_fire(self, lint_tree):
        run = lint_tree(
            {
                "benchmarks/bench_x.py": """\
                import random

                def sample():
                    return random.randint(0, 10)
                """
            }
        )
        assert codes(run) == ["R007"]
        assert "random.randint" in run.diagnostics[0].message

    def test_module_level_seeded_generator_allowed_in_tests(self, lint_tree):
        # Unlike R001, tests may build seeded module-level generators
        # (fixture parametrization); only unseeded/global state is banned.
        run = lint_tree(
            {
                "tests/test_x.py": """\
                import numpy as np

                RNG = np.random.default_rng(1234)

                def test_x():
                    assert RNG.random() < 1.0
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "tests/test_x.py": (
                    "import numpy as np\n"
                    "def test_x():\n"
                    "    np.random.seed(0)  # repro-lint: disable=R007\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestLazyImportsR008:
    def test_top_level_scipy_import_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/analysis/x.py": """\
                import scipy.sparse
                """
            }
        )
        assert codes(run) == ["R008"]

    def test_top_level_from_import_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/figures/x.py": """\
                from matplotlib import pyplot as plt
                """
            }
        )
        assert codes(run) == ["R008"]

    def test_function_local_import_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/analysis/x.py": """\
                def spectrum(m):
                    from scipy.sparse.linalg import eigsh
                    return eigsh(m)
                """
            }
        )
        assert codes(run) == []

    def test_type_checking_guard_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/analysis/x.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    import scipy.sparse
                """
            }
        )
        assert codes(run) == []

    def test_rule_does_not_apply_to_tests(self, lint_tree):
        run = lint_tree({"tests/test_x.py": "import scipy\n"})
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/analysis/x.py": (
                    "import scipy  # repro-lint: disable=R008\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestDurableFormatsR011:
    def test_top_level_pickle_import_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/service/x.py": """\
                import pickle
                """
            }
        )
        assert codes(run) == ["R011"]

    def test_from_import_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/service/x.py": """\
                from shelve import open as dbopen
                """
            }
        )
        assert codes(run) == ["R011"]

    def test_function_local_import_also_fires(self, lint_tree):
        # Unlike R008 there is no lazy-import escape: a pickle written
        # from inside a function is just as opaque on disk.
        run = lint_tree(
            {
                "src/repro/service/x.py": """\
                def save(state, path):
                    import marshal
                    path.write_bytes(marshal.dumps(state))
                """
            }
        )
        assert codes(run) == ["R011"]

    def test_rule_does_not_apply_outside_src(self, lint_tree):
        run = lint_tree(
            {
                "tests/test_x.py": "import pickle\n",
                "benchmarks/test_bench_x.py": "import pickle\n",
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/service/x.py": (
                    "import pickle  # repro-lint: disable=R011\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestSilentExceptionR009:
    def test_bare_except_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def load(path):
                    try:
                        return open(path).read()
                    except:
                        return None
                """
            }
        )
        assert codes(run) == ["R009"]
        assert lines_with(run, "R009") == [4]

    def test_bare_except_fires_even_with_real_body(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def load(path):
                    try:
                        return open(path).read()
                    except:
                        raise ValueError(path)
                """
            }
        )
        assert codes(run) == ["R009"]

    def test_pass_only_broad_handler_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def maybe(fn):
                    try:
                        fn()
                    except Exception:
                        pass
                """
            }
        )
        assert codes(run) == ["R009"]

    def test_ellipsis_body_base_exception_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def maybe(fn):
                    try:
                        fn()
                    except BaseException:
                        ...
                """
            }
        )
        assert codes(run) == ["R009"]

    def test_broad_handler_that_acts_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def maybe(fn, log):
                    try:
                        fn()
                    except Exception as exc:
                        log.append(exc)
                        raise
                """
            }
        )
        assert codes(run) == []

    def test_typed_pass_handler_is_clean(self, lint_tree):
        # Narrow types may legitimately be ignored (e.g. a cache miss).
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def maybe(fn):
                    try:
                        fn()
                    except KeyError:
                        pass
                """
            }
        )
        assert codes(run) == []

    def test_rule_does_not_apply_to_tests(self, lint_tree):
        run = lint_tree(
            {
                "tests/test_x.py": """\
                def test_it(fn):
                    try:
                        fn()
                    except:
                        pass
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/x.py": """\
                def maybe(fn):
                    try:
                        fn()
                    except Exception:  # repro-lint: disable=R009
                        pass
                """
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1


class TestTimingDisciplineR010:
    def test_dotted_clock_call_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/engine.py": """\
                import time

                def build():
                    t0 = time.perf_counter()
                    return time.time() - t0
                """
            }
        )
        assert codes(run) == ["R010"]
        assert lines_with(run, "R010") == [4, 5]

    def test_aliased_module_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/engine.py": """\
                import time as clock

                def build():
                    return clock.monotonic()
                """
            }
        )
        assert codes(run) == ["R010"]

    def test_from_import_fires(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/engine.py": """\
                from time import perf_counter

                def build():
                    return perf_counter()
                """
            }
        )
        assert codes(run) == ["R010"]
        assert lines_with(run, "R010") == [1]

    def test_formatting_helpers_are_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/engine.py": """\
                import time

                def stamp():
                    return time.strftime("%Y", time.gmtime())
                """
            }
        )
        assert codes(run) == []

    def test_obs_layer_is_exempt(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/obs/trace.py": """\
                import time

                def now():
                    return time.perf_counter()
                """
            }
        )
        assert codes(run) == []

    def test_benchmarks_and_tests_are_out_of_scope(self, lint_tree):
        run = lint_tree(
            {
                "benchmarks/test_bench.py": """\
                import time

                def timer():
                    return time.process_time()
                """,
                "tests/test_x.py": """\
                import time

                def test_speed():
                    assert time.perf_counter() > 0
                """,
            }
        )
        assert codes(run) == []

    def test_allowlist_exempts_module(self, lint_tree, monkeypatch):
        from repro.lint import rules_timing

        monkeypatch.setattr(
            rules_timing,
            "TIMING_ALLOWLIST",
            ("src/repro/legacy.py",),
        )
        run = lint_tree(
            {
                "src/repro/legacy.py": """\
                import time

                def build():
                    return time.time()
                """
            }
        )
        assert codes(run) == []

    def test_pragma_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/engine.py": (
                    "import time\n"
                    "T0 = time.time()"
                    "  # repro-lint: disable=R010\n"
                )
            }
        )
        assert codes(run) == []
        assert run.suppressed == 1
