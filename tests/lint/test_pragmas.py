"""Unit tests for the pragma layer and the diagnostic types."""

from repro.errors import Diagnostic, LintError, ReproError
from repro.lint.pragmas import parse_pragmas


class TestParsePragmas:
    def test_line_disable_single_code(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: disable=R002\n")
        assert pragmas.suppressed(1, "R002")
        assert not pragmas.suppressed(1, "R004")
        assert not pragmas.suppressed(2, "R002")

    def test_line_disable_multiple_codes(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: disable=R002, R004\n")
        assert pragmas.suppressed(1, "R002")
        assert pragmas.suppressed(1, "R004")

    def test_disable_all(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: disable=all\n")
        assert pragmas.suppressed(1, "R001")
        assert pragmas.suppressed(1, "R008")

    def test_file_wide_disable(self):
        text = "# repro-lint: disable-file=R004\nx = 1\ny = 2\n"
        pragmas = parse_pragmas(text)
        assert pragmas.suppressed(3, "R004")
        assert not pragmas.suppressed(3, "R002")

    def test_pragma_inside_string_is_inert(self):
        text = 'msg = "# repro-lint: disable=R001"\n'
        pragmas = parse_pragmas(text)
        assert not pragmas.suppressed(1, "R001")

    def test_unparseable_text_yields_empty_set(self):
        pragmas = parse_pragmas("def broken(:\n")
        assert not pragmas.suppressed(1, "R001")
        assert not pragmas.file_wide


class TestDiagnosticTypes:
    def test_diagnostic_str_is_clickable(self):
        diag = Diagnostic("src/repro/x.py", 12, "R002", "bad dtype")
        assert str(diag) == "src/repro/x.py:12: R002 bad dtype"

    def test_diagnostics_sort_in_report_order(self):
        a = Diagnostic("a.py", 5, "R001", "m")
        b = Diagnostic("a.py", 2, "R004", "m")
        c = Diagnostic("b.py", 1, "R001", "m")
        assert sorted([c, a, b]) == [b, a, c]

    def test_lint_error_report_counts_findings(self):
        err = LintError(
            diagnostics=(
                Diagnostic("b.py", 2, "R002", "two"),
                Diagnostic("a.py", 1, "R001", "one"),
            )
        )
        report = err.report()
        assert report.splitlines()[0] == "a.py:1: R001 one"
        assert report.splitlines()[-1] == "repro-lint: 2 findings"
        assert isinstance(err, ReproError)

    def test_lint_error_singular_finding(self):
        err = LintError(diagnostics=(Diagnostic("a.py", 1, "R001", "m"),))
        assert err.report().endswith("repro-lint: 1 finding")
