"""Tests for shared type helpers and the public package surface."""

import pytest

import repro
from repro.types import normalize_edge, normalize_edges


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            normalize_edge(3, 3)

    def test_normalize_edges_dedupes(self):
        assert normalize_edges([(1, 2), (2, 1), (3, 1)]) == {(1, 2), (1, 3)}


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        topo = repro.random_topology(60, degree=6, seed=42)
        result = repro.run_pipeline(topo, k=2, algorithm="AC-LMST")
        assert result.cds_size == len(result.heads) + result.num_gateways
        repro.verify_backbone(result)

    def test_error_hierarchy(self):
        assert issubclass(repro.InvalidParameterError, repro.ReproError)
        assert issubclass(repro.DisconnectedGraphError, repro.ReproError)
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.ProtocolError, repro.ReproError)
        assert issubclass(repro.CalibrationError, repro.ReproError)
