"""Tests for the individual distributed protocols."""

import pytest

from repro.core.clustering import khop_cluster
from repro.core.neighbor import ancr_neighbors
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph, two_cliques_bridge
from repro.sim.protocols.adjacency import run_distributed_adjacency
from repro.sim.protocols.clustering import run_distributed_clustering
from repro.sim.protocols.discovery import run_discovery
from repro.sim.protocols.gateway import run_distributed_gateway


class TestDiscovery:
    def test_one_hop_view(self):
        g = path_graph(5)
        nodes, _ = run_discovery(g, 1)
        # h=1: each node knows its own record plus neighbors' existence
        assert nodes[2].neighbors == {1, 3}

    def test_full_view_at_large_h(self):
        g = grid_graph(3, 3)
        nodes, _ = run_discovery(g, 10)
        for node in nodes:
            assert node.local_subgraph_edges() == set(g.edges)

    def test_scoped_view(self):
        g = path_graph(9)
        nodes, _ = run_discovery(g, 2)
        # node 0 knows records of nodes within 2 hops only
        assert set(nodes[0].records) == {0, 1, 2}

    def test_local_view_contains_ball(self):
        g = grid_graph(4, 4)
        h = 3
        nodes, _ = run_discovery(g, h)
        for u in g.nodes():
            ball = set(g.closed_khop_neighbors(u, h))
            assert ball <= set(nodes[u].records)

    def test_invalid_h(self):
        with pytest.raises(InvalidParameterError):
            run_discovery(path_graph(3), 0)


class TestDistributedClustering:
    def test_path_k1_matches_reference(self):
        g = path_graph(6)
        nodes, _ = run_distributed_clustering(g, 1)
        heads = tuple(sorted(n.node_id for n in nodes if n.is_head))
        assert heads == (0, 2, 4)
        assert [n.head for n in nodes] == [0, 0, 2, 2, 4, 4]

    def test_join_notifications_reach_heads(self):
        g = path_graph(6)
        nodes, _ = run_distributed_clustering(g, 2)
        head0 = nodes[0]
        assert head0.is_head
        assert head0.joined_members == {1, 2}

    def test_size_based_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_distributed_clustering(path_graph(4), 1, membership="size-based")

    def test_custom_keys(self):
        g = path_graph(5)
        # give node 4 the best key: it must become a head
        keys = [(10 - u, u) for u in range(5)]
        nodes, _ = run_distributed_clustering(g, 2, keys=keys)
        assert nodes[4].is_head

    def test_wrong_key_count(self):
        with pytest.raises(InvalidParameterError):
            run_distributed_clustering(path_graph(3), 1, keys=[(0,)])

    def test_message_stats_populated(self):
        g = grid_graph(4, 4)
        _, stats = run_distributed_clustering(g, 2)
        assert stats.transmissions > 0
        assert stats.per_kind["Candidate"] > 0
        assert stats.per_kind["Declare"] > 0
        assert stats.per_kind["Join"] > 0


class TestDistributedAdjacency:
    def test_matches_centralized_ancr(self):
        g = two_cliques_bridge(5, 4)
        cl_nodes, _ = run_distributed_clustering(g, 1)
        adj_nodes, _ = run_distributed_adjacency(g, cl_nodes)
        got = {
            n.node_id: frozenset(n.adjacent_heads)
            for n in adj_nodes
            if n.is_head
        }
        ref = {
            h: frozenset(v)
            for h, v in ancr_neighbors(khop_cluster(g, 1)).items()
        }
        assert got == ref

    def test_single_cluster_no_reports(self):
        g = grid_graph(2, 2)
        cl_nodes, _ = run_distributed_clustering(g, 2)
        adj_nodes, stats = run_distributed_adjacency(g, cl_nodes)
        head = [n for n in adj_nodes if n.is_head]
        assert len(head) == 1 and head[0].adjacent_heads == set()
        assert stats.per_kind.get("BorderReport", 0) == 0


class TestDistributedGateway:
    def test_path_mesh_marks_interiors(self):
        g = path_graph(6)
        cl_nodes, _ = run_distributed_clustering(g, 1)
        head_of = tuple(n.head for n in cl_nodes)
        gw_nodes, _ = run_distributed_gateway(g, 1, head_of, gateway_alg="mesh")
        gateways = {n.node_id for n in gw_nodes if n.is_gateway}
        assert gateways == {1, 3}

    def test_invalid_alg(self):
        g = path_graph(4)
        with pytest.raises(InvalidParameterError):
            run_distributed_gateway(g, 1, (0, 0, 2, 2), gateway_alg="steiner")

    def test_single_head_quiet(self):
        g = grid_graph(2, 2)
        cl_nodes, _ = run_distributed_clustering(g, 2)
        head_of = tuple(n.head for n in cl_nodes)
        gw_nodes, stats = run_distributed_gateway(g, 2, head_of, gateway_alg="lmst")
        assert not any(n.is_gateway for n in gw_nodes)
        assert stats.per_kind.get("Mark", 0) == 0
