"""Tests for the synchronous round engine."""

import pytest

from repro.errors import ProtocolError
from repro.net.generators import path_graph, star_graph
from repro.sim.engine import Engine, MessageStats
from repro.sim.node import ProtocolNode


class PingNode(ProtocolNode):
    """Sends one 'ping' at start; counts receptions."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def start(self):
        self.send(("ping", self.node_id))

    def on_round(self, round_no, inbox):
        self.received.extend(inbox)


class RelayNode(ProtocolNode):
    """Node 0 emits a token; others forward it once (flood)."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = False

    def start(self):
        if self.node_id == 0:
            self.seen = True
            self.send("token")

    def on_round(self, round_no, inbox):
        for _sender, payload in inbox:
            if payload == "token" and not self.seen:
                self.seen = True
                self.send("token")


class ChattyNode(ProtocolNode):
    """Never stops talking (for the round-budget test)."""

    def start(self):
        self.send("x")

    def on_round(self, round_no, inbox):
        self.send("x")

    def idle(self):
        return False


class TestEngine:
    def test_ping_delivery_star(self):
        g = star_graph(3)
        nodes = [PingNode(u) for u in g.nodes()]
        stats = Engine(g, nodes).run()
        assert stats.transmissions == 4
        # hub hears 3 pings, each leaf hears 1
        assert len(nodes[0].received) == 3
        assert all(len(nodes[i].received) == 1 for i in (1, 2, 3))
        assert stats.receptions == 6

    def test_flood_reaches_everyone(self):
        g = path_graph(6)
        nodes = [RelayNode(u) for u in g.nodes()]
        stats = Engine(g, nodes).run()
        assert all(n.seen for n in nodes)
        assert stats.transmissions == 6  # each node forwards once
        assert stats.rounds >= 5  # token takes 5 hops

    def test_per_kind_accounting(self):
        g = star_graph(2)
        stats = Engine(g, [PingNode(u) for u in g.nodes()]).run()
        assert stats.per_kind["tuple"] == 3

    def test_round_budget_enforced(self):
        g = path_graph(3)
        with pytest.raises(ProtocolError):
            Engine(g, [ChattyNode(u) for u in g.nodes()]).run(max_rounds=10)

    def test_node_count_mismatch(self):
        g = path_graph(3)
        with pytest.raises(ProtocolError):
            Engine(g, [PingNode(0)])

    def test_node_id_mismatch(self):
        g = path_graph(2)
        with pytest.raises(ProtocolError):
            Engine(g, [PingNode(0), PingNode(0)])

    def test_dead_nodes_neither_send_nor_receive(self):
        g = path_graph(3)
        nodes = [PingNode(u) for u in g.nodes()]
        stats = Engine(g, nodes, alive={0, 1}).run()
        # node 2 dead: sends nothing, receives nothing
        assert len(nodes[2].received) == 0
        # node 1 hears only node 0 (not dead node 2)
        assert len(nodes[1].received) == 1
        assert stats.transmissions == 2

    def test_stats_merge(self):
        a = MessageStats(transmissions=2, receptions=3, rounds=4)
        a.per_kind["X"] = 2
        b = MessageStats(transmissions=1, receptions=1, rounds=2)
        b.per_kind["X"] = 1
        c = a.merge(b)
        assert c.transmissions == 3
        assert c.receptions == 4
        assert c.rounds == 6
        assert c.per_kind["X"] == 3

    def test_quiescence_with_no_initial_sends(self):
        g = path_graph(2)

        class SilentNode(ProtocolNode):
            pass

        stats = Engine(g, [SilentNode(0), SilentNode(1)]).run()
        assert stats.transmissions == 0
        assert stats.rounds == 0
