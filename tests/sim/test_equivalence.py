"""Distributed == centralized: the strongest localization claim of the paper.

For every algorithm and every k, the protocols running on the round engine
(with only scoped floods and parent-chain routing) must reproduce the
centralized reference *exactly*: heads, membership, adjacency, selected
links and gateway sets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ancr_neighbors, build_backbone, khop_cluster
from repro.net.paths import PathOracle
from repro.sim.runner import run_distributed_pipeline
from repro.errors import InvalidParameterError

from ..conftest import connected_graphs, ks

ALGS = ("NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST")


class TestEquivalence:
    @given(connected_graphs(max_n=14), st.integers(1, 3), st.sampled_from(ALGS))
    @settings(max_examples=40, deadline=None)
    def test_distributed_matches_centralized(self, g, k, alg):
        dres = run_distributed_pipeline(g, k, alg)
        cl = khop_cluster(g, k)
        cres = build_backbone(cl, alg, oracle=PathOracle(g))
        assert dres.heads == cl.heads
        assert dres.head_of == cl.head_of
        assert dres.selected_links == cres.selected_links
        assert dres.gateways == cres.gateways

    @given(connected_graphs(max_n=14), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_adjacency_sets_match(self, g, k):
        dres = run_distributed_pipeline(g, k, "AC-LMST")
        ref = {
            h: frozenset(v)
            for h, v in ancr_neighbors(khop_cluster(g, k)).items()
        }
        assert dres.adjacent_sets == ref

    @given(connected_graphs(max_n=12), st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_distance_based_membership_matches(self, g, k):
        dres = run_distributed_pipeline(g, k, "NC-Mesh", membership="distance-based")
        cl = khop_cluster(g, k, membership="distance-based")
        assert dres.head_of == cl.head_of

    def test_paper_scale_instance(self, topo60):
        g = topo60.graph
        for k in (1, 2, 3, 4):
            for alg in ALGS:
                dres = run_distributed_pipeline(g, k, alg)
                cres = build_backbone(khop_cluster(g, k), alg)
                assert dres.gateways == cres.gateways, (k, alg)

    def test_gmst_has_no_distributed_form(self, topo60):
        with pytest.raises(InvalidParameterError):
            run_distributed_pipeline(topo60.graph, 2, "G-MST")

    def test_stats_by_phase_present(self, topo60):
        dres = run_distributed_pipeline(topo60.graph, 2, "AC-LMST")
        assert set(dres.stats_by_phase) == {"clustering", "adjacency", "gateway"}
        assert dres.stats.transmissions == sum(
            s.transmissions for s in dres.stats_by_phase.values()
        )
        nc = run_distributed_pipeline(topo60.graph, 2, "NC-LMST")
        assert set(nc.stats_by_phase) == {"clustering", "gateway"}

    def test_overhead_grows_with_k(self, topo60):
        tx = [
            run_distributed_pipeline(topo60.graph, k, "AC-LMST").stats.transmissions
            for k in (1, 3)
        ]
        assert tx[1] > tx[0]
