"""Tests for the pluggable distance-oracle subsystem.

The load-bearing property: the lazy CSR backend and the dense all-pairs
backend are *observationally identical* — same distance rows, same balls,
same canonical paths, and same end-to-end backbones — so every consumer
can switch backends freely and only performance changes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.net.generators import grid_graph, path_graph, ring_of_cliques, toroidal_grid
from repro.net.graph import UNREACHABLE, Graph
from repro.net.oracle import (
    BATCH_BITS,
    DENSE_AUTO_MAX,
    DIST_DTYPE,
    MAX_ORACLE_NODES,
    ByteBudgetLRU,
    DenseDistanceOracle,
    LazyDistanceOracle,
    _check_size,
    build_distance_oracle,
    multi_source_bfs,
    resolve_backend,
)
from repro.net.paths import canonical_path
from repro.net.topology import random_topology

from ..conftest import connected_graphs, ks


def fresh_copy(g: Graph, backend: str) -> Graph:
    """Same structure, cold caches, pinned backend."""
    return Graph(g.n, g.edges).use_distance_backend(backend)


# --------------------------------------------------------------------- #
# backend equivalence (the tentpole property)
# --------------------------------------------------------------------- #


class TestBackendEquivalence:
    @given(connected_graphs())
    @settings(max_examples=60, deadline=None)
    def test_rows_identical(self, g):
        dense = build_distance_oracle(g, "dense")
        lazy = build_distance_oracle(g, "lazy")
        for u in range(g.n):
            assert np.array_equal(dense.row(u), lazy.row(u))
        # batched form: same values, same dtype, on both backends
        sources = list(range(0, g.n, 2))
        stacked_d = dense.rows(sources)
        stacked_l = lazy.rows(sources)
        assert np.array_equal(stacked_d, stacked_l)
        assert stacked_d.dtype == stacked_l.dtype == DIST_DTYPE
        assert dense.rows([]).shape == lazy.rows([]).shape == (0, g.n)
        # duplicate sources and unsorted order are preserved
        if g.n >= 2:
            dup = [1, 0, 1]
            assert np.array_equal(dense.rows(dup), lazy.rows(dup))

    @given(connected_graphs(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_balls_identical(self, g, radius):
        dense = build_distance_oracle(g, "dense")
        lazy = build_distance_oracle(g, "lazy")
        for u in range(g.n):
            dn, dd = dense.ball(u, radius)
            ln, ld = lazy.ball(u, radius)
            assert np.array_equal(dn, ln)
            assert np.array_equal(dd, ld)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_canonical_paths_identical(self, g):
        gd = fresh_copy(g, "dense")
        gl = fresh_copy(g, "lazy")
        for u in range(g.n):
            for v in range(u, min(g.n, u + 4)):
                assert canonical_path(gd, u, v) == canonical_path(gl, u, v)

    @given(connected_graphs(), ks)
    @settings(max_examples=30, deadline=None)
    def test_backbones_identical(self, g, k):
        results = {}
        for backend in ("dense", "lazy"):
            gb = fresh_copy(g, backend)
            cl = khop_cluster(gb, k)
            bb = build_backbone(cl, "AC-LMST")
            results[backend] = (
                cl.head_of,
                cl.heads,
                bb.selected_links,
                bb.gateways,
            )
        assert results["dense"] == results["lazy"]

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_disconnected_rows_identical(self, g):
        # Add isolated nodes so UNREACHABLE entries appear in both backends.
        g2 = Graph(g.n + 2, g.edges)
        dense = build_distance_oracle(g2, "dense")
        lazy = build_distance_oracle(g2, "lazy")
        for u in range(g2.n):
            assert np.array_equal(dense.row(u), lazy.row(u))
        assert dense.distance(0, g2.n - 1) == UNREACHABLE
        assert lazy.distance(0, g2.n - 1) == UNREACHABLE

    def test_huge_radius_ball_excludes_unreachable_on_both_backends(self):
        g = Graph(4, [(0, 1), (2, 3)])  # two components
        for backend in ("dense", "lazy"):
            oracle = build_distance_oracle(g, backend)
            nodes, dists = oracle.ball(0, UNREACHABLE)
            assert nodes.tolist() == [0, 1], backend
            assert dists.tolist() == [0, 1], backend
        assert g.khop_neighbors(0, UNREACHABLE) == (1,)

    def test_huge_radius_ball_after_row_is_cached(self):
        # The lazy backend's cached-row fast path must apply the same
        # sentinel guard as a cold ball query.
        g = Graph(4, [(0, 1), (2, 3)])
        oracle = build_distance_oracle(g, "lazy")
        oracle.row(0)  # warm the row cache
        nodes, dists = oracle.ball(0, UNREACHABLE)
        assert nodes.tolist() == [0, 1]
        assert dists.tolist() == [0, 1]


# --------------------------------------------------------------------- #
# structured scenarios (hand-checkable)
# --------------------------------------------------------------------- #


class TestLazyOracleStructured:
    def test_path_graph_rows(self):
        g = path_graph(6).use_distance_backend("lazy")
        assert g.bfs_distances(0).tolist() == [0, 1, 2, 3, 4, 5]
        assert g.hop_distance(1, 5) == 4

    def test_grid_ball(self):
        g = grid_graph(4, 4).use_distance_backend("lazy")
        nodes, dists = g.oracle.ball(0, 1)
        assert nodes.tolist() == [0, 1, 4]
        assert dists.tolist() == [0, 1, 1]

    def test_toroidal_grid_wraps(self):
        g = toroidal_grid(5, 5).use_distance_backend("lazy")
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert g.hop_distance(0, 4) == 1  # wraparound column
        assert g.hop_distance(0, 20) == 1  # wraparound row

    def test_ring_of_cliques_distances(self):
        g = ring_of_cliques(4, 5).use_distance_backend("lazy")
        assert g.n == 20 and g.is_connected()
        assert g.hop_distance(1, 2) == 1  # same clique
        assert g.hop_distance(0, 5) == 1  # bridge
        assert g.hop_distance(1, 6) == 3  # member - bridge - bridge - member


# --------------------------------------------------------------------- #
# cache policy and introspection
# --------------------------------------------------------------------- #


class TestLazyCachePolicy:
    def test_row_cache_hits(self):
        g = grid_graph(5, 5)
        oracle = LazyDistanceOracle(g)
        oracle.row(3)
        oracle.row(3)
        s = oracle.stats()
        assert s.rows_computed == 1 and s.row_hits >= 1

    def test_distance_reuses_either_endpoint_row(self):
        g = path_graph(8)
        oracle = LazyDistanceOracle(g)
        oracle.row(5)
        assert oracle.distance(2, 5) == 3  # answered from 5's cached row
        assert oracle.stats().rows_computed == 1

    def test_ball_answered_from_cached_row(self):
        g = grid_graph(5, 5)
        oracle = LazyDistanceOracle(g)
        oracle.row(12)
        nodes, dists = oracle.ball(12, 2)
        s = oracle.stats()
        assert s.balls_computed == 0 and s.ball_hits == 1
        assert dists.max() <= 2 and nodes[0] == 2  # (0-indexed sorted ball)

    def test_eviction_under_tiny_budget_stays_correct(self):
        g = grid_graph(6, 6)
        oracle = LazyDistanceOracle(g, row_cache_bytes=0, ball_cache_bytes=0)
        reference = LazyDistanceOracle(g)
        for u in range(g.n):
            assert np.array_equal(oracle.row(u), reference.row(u))
        # budget 0 keeps at most one entry resident
        assert oracle.stats().cached_bytes <= reference.row(0).nbytes

    def test_rows_are_read_only(self):
        g = path_graph(4).use_distance_backend("lazy")
        row = g.bfs_distances(0)
        with pytest.raises(ValueError):
            row[0] = 9

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            LazyDistanceOracle(path_graph(3), row_cache_bytes=-1)

    def test_negative_radius_rejected(self):
        for backend in ("dense", "lazy"):
            oracle = build_distance_oracle(path_graph(3), backend)
            with pytest.raises(InvalidParameterError):
                oracle.ball(0, -1)


# --------------------------------------------------------------------- #
# backend selection and the overflow guard
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_auto_policy(self):
        assert resolve_backend("auto", DENSE_AUTO_MAX) == "dense"
        assert resolve_backend(None, DENSE_AUTO_MAX + 1) == "lazy"
        assert resolve_backend("dense", 10_000) == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_distance_oracle(path_graph(3), "sparse-ish")
        with pytest.raises(InvalidParameterError):
            path_graph(3).use_distance_backend("nope")

    def test_dense_backend_rejects_lazy_options(self):
        with pytest.raises(InvalidParameterError):
            build_distance_oracle(path_graph(3), "dense", row_cache_bytes=1)

    def test_oracle_cached_per_backend(self):
        g = path_graph(5)
        assert g.distance_oracle("lazy") is g.distance_oracle("lazy")
        assert g.distance_oracle("dense") is not g.distance_oracle("lazy")

    def test_hop_distances_compat_always_dense(self):
        g = path_graph(5).use_distance_backend("lazy")
        assert not g.dense_materialized
        m = g.hop_distances
        assert m.shape == (5, 5) and g.dense_materialized
        assert g.distance_backend == "lazy"  # default backend unchanged

    def test_pinned_backend_restores_policy(self):
        g = grid_graph(3, 3)
        assert g.distance_backend == "dense"  # auto policy at this size
        with g.pinned_distance_backend("lazy"):
            assert g.distance_backend == "lazy"
        assert g.distance_backend == "dense"

    def test_run_pipeline_backend_is_per_call(self):
        from repro.core.pipeline import run_pipeline

        g = grid_graph(4, 4)
        run_pipeline(g, 1, distance_backend="lazy")
        assert g.distance_backend == "dense"  # auto policy restored

    def test_ball_map(self):
        for backend in ("dense", "lazy"):
            oracle = build_distance_oracle(path_graph(5), backend)
            assert oracle.ball_map(2, 1) == {1: 1, 2: 0, 3: 1}

    def test_without_nodes_inherits_backend(self):
        g = grid_graph(3, 3).use_distance_backend("lazy")
        assert g.without_nodes([4]).distance_backend == "lazy"
        assert g.with_edges([]).distance_backend == "lazy"

    def test_overflow_guard(self):
        # n beyond the int32 ceiling can't be instantiated as a Graph in
        # test memory; the guard predicate itself is the contract.
        with pytest.raises(InvalidParameterError, match="int32"):
            _check_size(MAX_ORACLE_NODES + 1)
        _check_size(MAX_ORACLE_NODES)  # boundary passes

    def test_beyond_old_int16_ceiling_now_supported(self):
        # The seed refused graphs above 32766 nodes (int16 sentinel
        # collision); int32 storage raises the ceiling behind the same
        # API.  40k isolated nodes + one edge keeps the check cheap.
        n = 40_000
        assert n > np.iinfo(np.int16).max
        g = Graph(n, [(0, 1)])
        oracle = g.distance_oracle("lazy")
        row = oracle.row(0)
        assert row.dtype == DIST_DTYPE
        assert int(row[1]) == 1 and int(row[n - 1]) == UNREACHABLE


# --------------------------------------------------------------------- #
# the bit-packed batched BFS kernel
# --------------------------------------------------------------------- #


class TestBatchedKernel:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_single_source_bfs(self, g):
        from repro.net.oracle import _csr_bfs

        indptr, indices = g.csr_adjacency
        batch = multi_source_bfs(indptr, indices, g.n, list(range(g.n)))
        assert batch.dtype == DIST_DTYPE
        for u in range(g.n):
            ref, _ = _csr_bfs(indptr, indices, g.n, u)
            assert np.array_equal(batch[u], ref)

    def test_multi_word_frontier(self):
        # 81 sources > 64 exercises the 2-word (W=2) bitset path.
        g = toroidal_grid(9, 9)
        indptr, indices = g.csr_adjacency
        batch = multi_source_bfs(indptr, indices, g.n, list(range(g.n)))
        lazy = build_distance_oracle(g, "lazy")
        for u in range(g.n):
            assert np.array_equal(batch[u], lazy.row(u))

    def test_duplicate_and_unsorted_sources(self):
        g = grid_graph(4, 5)
        indptr, indices = g.csr_adjacency
        srcs = [7, 3, 7, 0, 19, 3]
        batch = multi_source_bfs(indptr, indices, g.n, srcs)
        lazy = build_distance_oracle(g, "lazy")
        for i, s in enumerate(srcs):
            assert np.array_equal(batch[i], lazy.row(s))

    def test_isolated_and_disconnected_sources(self):
        g = Graph(70, [(0, 1), (2, 3)])  # mostly isolated nodes
        indptr, indices = g.csr_adjacency
        batch = multi_source_bfs(indptr, indices, g.n, list(range(g.n)))
        assert int(batch[0, 1]) == 1
        assert int(batch[0, 2]) == UNREACHABLE
        assert int(batch[69, 69]) == 0
        assert (batch[69, :69] == UNREACHABLE).all()

    def test_empty_inputs(self):
        g = path_graph(3)
        indptr, indices = g.csr_adjacency
        assert multi_source_bfs(indptr, indices, 3, []).shape == (0, 3)
        lonely = Graph(4)
        ip, ix = lonely.csr_adjacency
        batch = multi_source_bfs(ip, ix, 4, [2])
        assert int(batch[0, 2]) == 0 and int(batch[0, 0]) == UNREACHABLE

    def test_lazy_rows_use_batched_sweeps_and_cache(self):
        g = toroidal_grid(10, 10)
        oracle = LazyDistanceOracle(g)
        oracle.rows(range(g.n))
        s = oracle.stats()
        assert s.rows_computed == g.n
        assert s.batched_sweeps == (g.n + BATCH_BITS - 1) // BATCH_BITS
        oracle.rows([5, 6])
        assert oracle.stats().row_hits >= 2  # answered from cache


# --------------------------------------------------------------------- #
# the shared byte-budget LRU policy
# --------------------------------------------------------------------- #


class TestByteBudgetLRU:
    def test_evicts_least_recently_used_first(self):
        lru = ByteBudgetLRU(100)
        lru.put("a", 1, 40)
        lru.put("b", 2, 40)
        assert lru.get("a") == 1  # touch a; b becomes LRU
        lru.put("c", 3, 40)  # over budget: b evicted
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.nbytes == 80

    def test_always_keeps_one_entry(self):
        lru = ByteBudgetLRU(0)
        lru.put("big", object(), 10**9)
        assert "big" in lru and len(lru) == 1

    def test_replacement_updates_accounting(self):
        lru = ByteBudgetLRU(100)
        lru.put("a", 1, 60)
        lru.put("a", 2, 10)
        assert lru.nbytes == 10 and lru.get("a") == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            ByteBudgetLRU(-1)


# --------------------------------------------------------------------- #
# CSR adjacency
# --------------------------------------------------------------------- #


class TestCSR:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_csr_matches_adjacency(self, g):
        indptr, indices = g.csr_adjacency
        assert indptr[0] == 0 and indptr[-1] == 2 * g.m
        for u in range(g.n):
            assert indices[indptr[u] : indptr[u + 1]].tolist() == list(
                g.neighbors(u)
            )

    def test_csr_read_only(self):
        indptr, indices = path_graph(4).csr_adjacency
        with pytest.raises(ValueError):
            indptr[0] = 1


# --------------------------------------------------------------------- #
# depth-limited batched kernel + ball warm-up
# --------------------------------------------------------------------- #


class TestBatchedBalls:
    @given(connected_graphs(), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_max_depth_truncates_exactly(self, g, depth):
        """Depth-limited batched rows equal clipped full rows."""
        indptr, indices = g.csr_adjacency
        sources = list(range(g.n))
        full = multi_source_bfs(indptr, indices, g.n, sources)
        limited = multi_source_bfs(
            indptr, indices, g.n, sources, max_depth=depth
        )
        expect = np.where(full <= depth, full, UNREACHABLE)
        assert (limited == expect).all()

    @given(connected_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_prepare_balls_matches_per_source_balls(self, g, k):
        """Warmed balls are bit-identical to on-demand depth-limited BFS."""
        cold = LazyDistanceOracle(Graph(g.n, g.edges))
        warm = LazyDistanceOracle(Graph(g.n, g.edges))
        computed = warm.prepare_balls(range(g.n), k)
        assert computed == g.n
        for u in range(g.n):
            cn, cd = cold.ball(u, k)
            wn, wd = warm.ball(u, k)
            assert (cn == wn).all() and (cd == wd).all()
        # every post-warm-up query was a cache hit
        assert warm.stats().balls_computed == g.n
        assert warm.stats().ball_hits == g.n

    def test_prepare_balls_skips_cached_sources(self):
        g = grid_graph(6, 6)
        oracle = LazyDistanceOracle(g)
        oracle.ball(0, 2)
        assert oracle.prepare_balls(range(g.n), 2) == g.n - 1
        assert oracle.prepare_balls(range(g.n), 2) == 0

    def test_prepare_balls_counts_sweeps(self):
        g = toroidal_grid(12, 12)  # 144 nodes -> 3 sweeps of 64
        oracle = LazyDistanceOracle(g)
        oracle.prepare_balls(range(g.n), 2)
        assert oracle.stats().batched_sweeps == (g.n + BATCH_BITS - 1) // BATCH_BITS

    def test_dense_backend_ignores_the_hint(self):
        g = path_graph(8)
        oracle = DenseDistanceOracle(g)
        assert oracle.prepare_balls(range(g.n), 2) == 0
        nodes, dists = oracle.ball(3, 2)
        assert nodes.tolist() == [1, 2, 3, 4, 5]
        assert dists.tolist() == [2, 1, 0, 1, 2]

    def test_negative_radius_rejected(self):
        oracle = LazyDistanceOracle(path_graph(4))
        with pytest.raises(InvalidParameterError):
            oracle.prepare_balls([0], -1)


class TestPartialRowInheritance:
    """Invalidated rows keep their valid prefix and resume, not restart."""

    @staticmethod
    def warm(g: Graph, step: int = 5) -> Graph:
        g = g.use_distance_backend("lazy")
        for s in range(0, g.n, step):
            g.oracle.row(s)
        return g

    def test_partial_rows_recorded_and_exact(self):
        g = self.warm(random_topology(250, degree=8.0, seed=9).graph)
        removed = 17
        g2 = g.without_nodes([removed])
        oracle = g2.distance_oracle("lazy")
        stats = oracle.stats()
        # the removal is reachable from most warmed sources: their rows
        # must be salvaged partially rather than dropped
        assert stats.rows_partial_inherited > 0
        truth = LazyDistanceOracle(Graph(g.n, g2.edges))
        for s in range(0, g.n, 5):
            assert np.array_equal(oracle.row(s), truth.row(s)), s
        stats = oracle.stats()
        assert stats.rows_reexpanded == stats.rows_partial_inherited

    def test_prefix_entries_survive_unread(self):
        # entries at distance <= d(source, removed) are carried verbatim
        g = self.warm(toroidal_grid(10, 10))
        source = 0
        row_before = np.array(g.oracle.row(source))
        removed = int(np.flatnonzero(row_before == 3)[0])
        g2 = g.without_nodes([removed])
        oracle = g2.distance_oracle("lazy")
        after = oracle.row(source)
        near = row_before <= 3
        near[removed] = False
        assert np.array_equal(after[near], row_before[near])
        assert after[removed] == UNREACHABLE

    def test_chained_removals_shrink_radius_and_stay_exact(self):
        g = self.warm(random_topology(200, degree=8.0, seed=21).graph)
        current = g
        gone: list[int] = []
        rng = np.random.default_rng(4)
        for _ in range(3):
            x = int(rng.integers(0, g.n))
            while x in gone:
                x = int(rng.integers(0, g.n))
            gone.append(x)
            current = current.without_nodes([x])
        oracle = current.distance_oracle("lazy")
        truth = LazyDistanceOracle(Graph(g.n, current.edges))
        for s in range(0, g.n, 5):
            assert np.array_equal(oracle.row(s), truth.row(s)), s

    def test_rows_batch_recomputes_and_retires_partials(self):
        g = self.warm(random_topology(200, degree=8.0, seed=23).graph)
        g2 = g.without_nodes([11])
        oracle = g2.distance_oracle("lazy")
        pending = oracle.stats().rows_partial_inherited
        assert pending > 0
        sources = list(range(0, g.n, 5))
        block = oracle.rows(sources)
        truth = LazyDistanceOracle(Graph(g.n, g2.edges))
        for i, s in enumerate(sources):
            assert np.array_equal(block[i], truth.row(s)), s
        # the batch goes through the bit-packed kernel (per-source BFS
        # resumption cannot beat its amortization) and the fresh rows
        # retire the stale partials
        assert oracle.stats().rows_reexpanded == 0
        assert len(oracle._partial_rows) == 0

    def test_removed_source_row_recomputed_cold(self):
        g = self.warm(path_graph(12), step=1)
        g2 = g.without_nodes([4])
        oracle = g2.distance_oracle("lazy")
        row = oracle.row(4)  # the dead node itself: isolated
        assert row[4] == 0
        assert (np.delete(row, 4) == UNREACHABLE).all()

    def test_fresh_row_supersedes_partial(self):
        g = self.warm(toroidal_grid(8, 8), step=4)
        g2 = g.without_nodes([9])
        oracle = g2.distance_oracle("lazy")
        pending = oracle.stats().rows_partial_inherited
        assert pending > 0
        for s in range(0, g.n, 4):
            oracle.row(s)
        # a second removal must not resurrect pre-first-removal state
        g3 = g2.without_nodes([33])
        oracle3 = g3.distance_oracle("lazy")
        truth = LazyDistanceOracle(Graph(g.n, g3.edges))
        for s in range(0, g.n, 4):
            assert np.array_equal(oracle3.row(s), truth.row(s)), s

    def test_partial_rows_bounded_by_row_budget(self):
        g = random_topology(120, degree=8.0, seed=29).graph
        n = g.n
        row_bytes = n * 4
        oracle = LazyDistanceOracle(g, row_cache_bytes=3 * row_bytes)
        for s in range(0, n, 2):
            oracle.row(s)
        child = LazyDistanceOracle(
            g.without_nodes([1]), row_cache_bytes=3 * row_bytes
        )
        child.inherit_from(oracle, 1)
        # pending stale rows obey the same byte discipline as the cache
        assert len(child._partial_rows) <= 3


class TestLineageConservation:
    """``lineage_*`` stats conserve query totals across inherit chains.

    Per-oracle counters are snapshot-and-zeroed at every inheritance
    (no counter-reset drift), so ``lineage_rows_computed +
    lineage_row_hits`` must equal every ``row()`` call the chain ever
    answered — the :class:`~repro.net.oracle.OracleStats` contract.
    """

    @staticmethod
    def query_rows(g: Graph, step: int) -> int:
        """Issue one ``row()`` per sampled source; return the call count."""
        count = 0
        for s in range(0, g.n, step):
            g.oracle.row(s)
            count += 1
        return count

    def test_chained_removals_conserve_row_totals(self):
        g = random_topology(150, degree=8.0, seed=31).graph
        g = g.use_distance_backend("lazy")
        calls = self.query_rows(g, 5)
        calls += self.query_rows(g, 5)  # repeat pass: pure cache hits
        current = g
        for removed in (3, 40, 77):
            current = current.without_nodes([removed])
            calls += self.query_rows(current, 7)
        stats = current.oracle.stats()
        assert stats.lineage_inherits == 3
        assert stats.lineage_rows_computed + stats.lineage_row_hits == calls
        # the hit side is non-trivial in both directions
        assert stats.lineage_row_hits > 0
        assert stats.lineage_rows_computed > 0

    def test_per_oracle_counters_cover_post_inheritance_work_only(self):
        g = random_topology(120, degree=8.0, seed=33).graph
        g = g.use_distance_backend("lazy")
        self.query_rows(g, 4)
        parent_stats = g.oracle.stats()
        child = g.without_nodes([7])
        round_calls = self.query_rows(child, 6)
        stats = child.oracle.stats()
        assert stats.rows_computed + stats.row_hits == round_calls
        assert stats.lineage_inherits == 1
        assert (
            stats.lineage_rows_computed + stats.lineage_row_hits
            == parent_stats.rows_computed + parent_stats.row_hits + round_calls
        )

    def test_edge_delta_inheritance_conserves_row_totals(self):
        g = random_topology(120, degree=8.0, seed=35).graph
        g = g.use_distance_backend("lazy")
        calls = self.query_rows(g, 4)
        dropped = g.edges[0]
        derived = g.with_edge_delta(removed=[dropped])
        assert derived is not g  # the delta was effective
        calls += self.query_rows(derived, 4)
        stats = derived.oracle.stats()
        assert stats.lineage_inherits == 1
        assert stats.lineage_rows_computed + stats.lineage_row_hits == calls
