"""Tests for geometric primitives."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.geometry import (
    bounding_box,
    grid_positions,
    nearest_neighbor_distances,
    pairs_within,
    pairwise_distances,
    random_positions,
)


class TestRandomPositions:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        pos = random_positions(500, (100.0, 50.0), rng)
        assert pos.shape == (500, 2)
        assert (pos[:, 0] >= 0).all() and (pos[:, 0] <= 100).all()
        assert (pos[:, 1] >= 0).all() and (pos[:, 1] <= 50).all()

    def test_zero_nodes(self):
        rng = np.random.default_rng(0)
        assert random_positions(0, (10, 10), rng).shape == (0, 2)

    def test_negative_count_raises(self):
        with pytest.raises(InvalidParameterError):
            random_positions(-1, (10, 10), np.random.default_rng(0))

    def test_bad_area_raises(self):
        with pytest.raises(InvalidParameterError):
            random_positions(3, (0, 10), np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        a = random_positions(10, (100, 100), np.random.default_rng(5))
        b = random_positions(10, (100, 100), np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestGridPositions:
    def test_shape_and_spacing(self):
        pos = grid_positions(2, 3, spacing=2.0)
        assert pos.shape == (6, 2)
        assert pos[0].tolist() == [0.0, 0.0]
        assert pos[1].tolist() == [2.0, 0.0]
        assert pos[3].tolist() == [0.0, 2.0]

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            grid_positions(0, 3)
        with pytest.raises(InvalidParameterError):
            grid_positions(2, 2, spacing=0)


class TestPairwiseDistances:
    def test_known_values(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pos)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(5.0)
        assert d[0, 0] == 0.0

    def test_bad_shape(self):
        with pytest.raises(InvalidParameterError):
            pairwise_distances(np.zeros((3, 3)))

    def test_symmetry_random(self):
        rng = np.random.default_rng(1)
        pos = random_positions(40, (10, 10), rng)
        d = pairwise_distances(pos)
        assert np.allclose(d, d.T)
        assert (np.diag(d) == 0).all()


class TestPairsWithin:
    def test_unit_square(self):
        pos = np.array([[0, 0], [1, 0], [0, 1], [5, 5]], dtype=float)
        pairs = pairs_within(pos, 1.0)
        assert set(pairs) == {(0, 1), (0, 2)}

    def test_radius_zero(self):
        pos = np.array([[0, 0], [0, 0]], dtype=float)
        assert pairs_within(pos, 0.0) == [(0, 1)]

    def test_negative_radius(self):
        with pytest.raises(InvalidParameterError):
            pairs_within(np.zeros((2, 2)), -1.0)


class TestMisc:
    def test_nearest_neighbor_distances(self):
        pos = np.array([[0, 0], [1, 0], [10, 0]], dtype=float)
        nn = nearest_neighbor_distances(pos)
        assert nn.tolist() == [1.0, 1.0, 9.0]

    def test_nearest_neighbor_single(self):
        assert nearest_neighbor_distances(np.zeros((1, 2))).tolist() == [0.0]

    def test_bounding_box(self):
        assert bounding_box([[1, 2], [3, -1]]) == (1.0, -1.0, 3.0, 2.0)

    def test_bounding_box_empty(self):
        with pytest.raises(InvalidParameterError):
            bounding_box(np.zeros((0, 2)))
