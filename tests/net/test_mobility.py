"""Tests for mobility and churn processes.

Beyond the original smoke checks, the property classes pin down the
invariants the mobility-coupled traffic loop and the scenario regression
matrix rely on: positions never leave the area, every leg's speed
respects ``speed_range``, and identical seeds give identical trajectories
no matter how the steps are batched.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.graph import Graph
from repro.net.mobility import ChurnProcess, RandomWaypoint, snapshot_edge_delta


class TestRandomWaypoint:
    def _make(self, n=10, seed=0, speed=(1.0, 2.0)):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 2)) * 100
        return RandomWaypoint(pos, (100.0, 100.0), speed, np.random.default_rng(seed + 1))

    def test_positions_stay_in_area(self):
        rw = self._make()
        for _ in range(200):
            pos = rw.step()
            assert (pos >= 0).all()
            assert (pos <= 100).all()

    def test_step_moves_at_most_speed(self):
        rw = self._make(speed=(0.5, 1.5))
        before = rw.positions
        after = rw.step()
        moved = np.sqrt(((after - before) ** 2).sum(axis=1))
        assert (moved <= 1.5 + 1e-9).all()

    def test_zero_speed_stationary(self):
        rw = self._make(speed=(0.0, 0.0))
        before = rw.positions
        rw.step()
        assert np.allclose(rw.positions, before)

    def test_invalid_speed_range(self):
        with pytest.raises(InvalidParameterError):
            self._make(speed=(2.0, 1.0))

    def test_snapshot_graph(self):
        rw = self._make(n=20)
        g = rw.snapshot_graph(radius=150.0)
        assert g.m == 20 * 19 // 2  # everything in range

    def test_positions_returns_copy(self):
        rw = self._make()
        p = rw.positions
        p[:] = -1
        assert (rw.positions >= 0).all()


class TestChurnProcess:
    def test_all_alive_initially(self):
        c = ChurnProcess(5, 0.0, 0.0, np.random.default_rng(0))
        assert c.alive_nodes() == (0, 1, 2, 3, 4)
        assert c.dead_nodes() == ()

    def test_no_churn_no_events(self):
        c = ChurnProcess(5, 0.0, 0.0, np.random.default_rng(0))
        assert c.step() == []

    def test_certain_death(self):
        c = ChurnProcess(4, 1.0, 0.0, np.random.default_rng(0))
        events = c.step()
        assert len(events) == 4
        assert all(e.kind == "off" for e in events)
        assert c.alive_nodes() == ()

    def test_revival(self):
        c = ChurnProcess(3, 1.0, 1.0, np.random.default_rng(0))
        c.step()  # all die
        events = c.step()  # all revive
        assert all(e.kind == "on" for e in events)
        assert c.alive_nodes() == (0, 1, 2)

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            ChurnProcess(3, 1.5, 0.0, np.random.default_rng(0))

    def test_event_steps_increment(self):
        c = ChurnProcess(2, 1.0, 1.0, np.random.default_rng(0))
        e1 = c.step()
        e2 = c.step()
        assert all(e.step == 1 for e in e1)
        assert all(e.step == 2 for e in e2)


def _make_waypoint(n=25, seed=0, speed=(0.5, 2.0), area=(60.0, 40.0)):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 2)) * np.asarray(area)
    return RandomWaypoint(pos, area, speed, np.random.default_rng(seed + 1))


class TestRandomWaypointProperties:
    """The §3.3 mobility invariants the regression matrix relies on."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_positions_stay_inside_area_long_run(self, seed):
        area = (37.0, 91.0)
        rw = _make_waypoint(n=30, seed=seed, area=area, speed=(0.0, 5.0))
        for _ in range(300):
            pos = rw.step()
            assert (pos >= 0.0).all()
            assert (pos[:, 0] <= area[0]).all()
            assert (pos[:, 1] <= area[1]).all()
            # The internal waypoints themselves never leave the area.
            t = rw.leg_targets
            assert (t >= 0.0).all()
            assert (t[:, 0] <= area[0]).all()
            assert (t[:, 1] <= area[1]).all()

    @pytest.mark.parametrize("speed", [(0.0, 0.0), (0.25, 0.25), (0.5, 3.0)])
    def test_leg_speeds_respect_speed_range(self, speed):
        rw = _make_waypoint(seed=3, speed=speed)
        lo, hi = speed
        for _ in range(120):
            s = rw.leg_speeds
            assert (s >= lo - 1e-12).all()
            assert (s <= hi + 1e-12).all()
            before = rw.positions
            after = rw.step()
            moved = np.sqrt(((after - before) ** 2).sum(axis=1))
            # Per-step displacement is bounded by the fastest leg speed
            # (arriving nodes stop short of a full step).
            assert (moved <= hi + 1e-9).all()

    @pytest.mark.parametrize("batching", [[200], [1] * 200, [7, 50, 143], [100, 100]])
    def test_identical_seeds_identical_trajectories_any_batching(self, batching):
        assert sum(batching) == 200
        reference = _make_waypoint(seed=11)
        for _ in range(200):
            reference.step()
        other = _make_waypoint(seed=11)
        for chunk in batching:
            other.advance(chunk)
        assert np.array_equal(reference.positions, other.positions)
        assert np.array_equal(reference.leg_targets, other.leg_targets)
        assert np.array_equal(reference.leg_speeds, other.leg_speeds)

    def test_different_seeds_diverge(self):
        a = _make_waypoint(seed=1)
        b = _make_waypoint(seed=2)
        a.advance(10)
        b.advance(10)
        assert not np.array_equal(a.positions, b.positions)

    def test_advance_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            _make_waypoint().advance(-1)

    def test_advance_zero_is_noop(self):
        rw = _make_waypoint(seed=5)
        before = rw.positions
        assert np.array_equal(rw.advance(0), before)

    def test_snapshot_edges_match_snapshot_graph(self):
        rw = _make_waypoint(n=40, seed=9)
        rw.advance(5)
        g = rw.snapshot_graph(radius=12.0)
        assert rw.snapshot_edges(radius=12.0) == set(g.edges)

    def test_snapshot_edge_delta_roundtrip(self):
        rw = _make_waypoint(n=40, seed=13, speed=(0.5, 1.5))
        g = rw.snapshot_graph(radius=12.0)
        rw.advance(3)
        new_edges = rw.snapshot_edges(radius=12.0)
        added, removed = snapshot_edge_delta(g, new_edges)
        assert set(added).isdisjoint(removed)
        assert set(added).isdisjoint(g.edges)
        assert set(removed) <= set(g.edges)
        g2 = g.with_edge_delta(added, removed)
        assert set(g2.edges) == new_edges
        assert g2 == Graph(g.n, new_edges)


class TestChurnProcessProperties:
    def test_alive_dead_partition_invariant(self):
        c = ChurnProcess(40, 0.15, 0.1, np.random.default_rng(4))
        for _ in range(100):
            c.step()
            alive = set(c.alive_nodes())
            dead = set(c.dead_nodes())
            assert alive.isdisjoint(dead)
            assert alive | dead == set(range(40))
            assert c.alive_mask.sum() == len(alive)

    def test_events_match_state_flips(self):
        c = ChurnProcess(30, 0.3, 0.2, np.random.default_rng(8))
        prev = c.alive_mask
        for step in range(1, 60):
            events = c.step()
            cur = c.alive_mask
            flipped = {int(u) for u in np.flatnonzero(prev != cur)}
            assert {e.node for e in events} == flipped
            for e in events:
                assert e.step == step
                assert e.kind == ("off" if prev[e.node] else "on")
            prev = cur

    def test_identical_seeds_identical_event_streams(self):
        a = ChurnProcess(25, 0.2, 0.15, np.random.default_rng(17))
        b = ChurnProcess(25, 0.2, 0.15, np.random.default_rng(17))
        for _ in range(50):
            ea = [(e.step, e.node, e.kind) for e in a.step()]
            eb = [(e.step, e.node, e.kind) for e in b.step()]
            assert ea == eb
