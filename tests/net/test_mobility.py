"""Tests for mobility and churn processes."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.mobility import ChurnProcess, RandomWaypoint


class TestRandomWaypoint:
    def _make(self, n=10, seed=0, speed=(1.0, 2.0)):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 2)) * 100
        return RandomWaypoint(pos, (100.0, 100.0), speed, np.random.default_rng(seed + 1))

    def test_positions_stay_in_area(self):
        rw = self._make()
        for _ in range(200):
            pos = rw.step()
            assert (pos >= 0).all()
            assert (pos <= 100).all()

    def test_step_moves_at_most_speed(self):
        rw = self._make(speed=(0.5, 1.5))
        before = rw.positions
        after = rw.step()
        moved = np.sqrt(((after - before) ** 2).sum(axis=1))
        assert (moved <= 1.5 + 1e-9).all()

    def test_zero_speed_stationary(self):
        rw = self._make(speed=(0.0, 0.0))
        before = rw.positions
        rw.step()
        assert np.allclose(rw.positions, before)

    def test_invalid_speed_range(self):
        with pytest.raises(InvalidParameterError):
            self._make(speed=(2.0, 1.0))

    def test_snapshot_graph(self):
        rw = self._make(n=20)
        g = rw.snapshot_graph(radius=150.0)
        assert g.m == 20 * 19 // 2  # everything in range

    def test_positions_returns_copy(self):
        rw = self._make()
        p = rw.positions
        p[:] = -1
        assert (rw.positions >= 0).all()


class TestChurnProcess:
    def test_all_alive_initially(self):
        c = ChurnProcess(5, 0.0, 0.0, np.random.default_rng(0))
        assert c.alive_nodes() == (0, 1, 2, 3, 4)
        assert c.dead_nodes() == ()

    def test_no_churn_no_events(self):
        c = ChurnProcess(5, 0.0, 0.0, np.random.default_rng(0))
        assert c.step() == []

    def test_certain_death(self):
        c = ChurnProcess(4, 1.0, 0.0, np.random.default_rng(0))
        events = c.step()
        assert len(events) == 4
        assert all(e.kind == "off" for e in events)
        assert c.alive_nodes() == ()

    def test_revival(self):
        c = ChurnProcess(3, 1.0, 1.0, np.random.default_rng(0))
        c.step()  # all die
        events = c.step()  # all revive
        assert all(e.kind == "on" for e in events)
        assert c.alive_nodes() == (0, 1, 2)

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            ChurnProcess(3, 1.5, 0.0, np.random.default_rng(0))

    def test_event_steps_increment(self):
        c = ChurnProcess(2, 1.0, 1.0, np.random.default_rng(0))
        e1 = c.step()
        e2 = c.step()
        assert all(e.step == 1 for e in e1)
        assert all(e.step == 2 for e in e2)
