"""Edge-delta maintenance: ``Graph.with_edge_delta`` and cache inheritance.

The mobility tentpole's contract is exactness: a delta-derived graph and
its inherited caches must be *observationally identical* to a from-scratch
rebuild — rows, balls, canonical paths and certified sources alike.  The
randomized equivalence classes here drive arbitrary add/remove deltas
(including chains, and chains mixed with node removals) against fresh
rebuilds; the edge-case classes pin the ``inherit_from`` family's corner
behaviors the ISSUE calls out.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.graph import Graph
from repro.net.oracle import UNREACHABLE, LazyDistanceOracle
from repro.net.paths import PathOracle, canonical_path
from repro.net.topology import random_topology


def _random_graph(rng, n):
    edges = set()
    for _ in range(n * 2):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    g = Graph(n, edges)
    g.use_distance_backend("lazy")
    return g


def _random_delta(rng, g, max_each=5):
    cur = set(g.edges)
    non = [
        (u, v)
        for u in range(g.n)
        for v in range(u + 1, g.n)
        if (u, v) not in cur
    ]
    rng.shuffle(non)
    lst = sorted(cur)
    rng.shuffle(lst)
    added = non[: int(rng.integers(0, max_each + 1))]
    removed = lst[: int(rng.integers(0, max_each + 1))]
    return added, removed


class TestWithEdgeDelta:
    def test_graph_equals_fresh_rebuild(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(6, 30))
            g = _random_graph(rng, n)
            added, removed = _random_delta(rng, g)
            g2 = g.with_edge_delta(added, removed)
            fresh = Graph(n, (set(g.edges) - set(removed)) | set(added))
            assert g2 == fresh
            assert g2._adj == fresh._adj

    def test_csr_patched_matches_fresh(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(6, 30))
            g = _random_graph(rng, n)
            g.csr_adjacency  # materialize so the patch path runs
            added, removed = _random_delta(rng, g)
            g2 = g.with_edge_delta(added, removed)
            fresh = Graph(n, (set(g.edges) - set(removed)) | set(added))
            pi, ix = g2.csr_adjacency
            fi, fx = fresh.csr_adjacency
            assert np.array_equal(pi, fi)
            assert np.array_equal(ix, fx)
            assert not pi.flags.writeable and not ix.flags.writeable

    def test_empty_effective_delta_returns_self(self):
        g = _random_graph(np.random.default_rng(2), 12)
        assert g.with_edge_delta([], []) is g
        # Already-present additions and absent removals are ignored.
        e = g.edges[0]
        absent = next(
            (u, v)
            for u in range(g.n)
            for v in range(u + 1, g.n)
            if not g.has_edge(u, v)
        )
        assert g.with_edge_delta([e], [absent]) is g

    def test_overlapping_add_and_remove_rejected(self):
        g = _random_graph(np.random.default_rng(3), 10)
        e = g.edges[0]
        with pytest.raises(InvalidParameterError):
            g.with_edge_delta([e], [e])

    def test_out_of_range_edges_rejected(self):
        g = _random_graph(np.random.default_rng(4), 8)
        with pytest.raises(InvalidParameterError):
            g.with_edge_delta([(0, 99)], [])
        with pytest.raises(InvalidParameterError):
            g.with_edge_delta([], [(0, 99)])

    def test_backend_pin_carries_over(self):
        g = _random_graph(np.random.default_rng(5), 10)
        g2 = g.with_edge_delta([], [g.edges[0]])
        assert g2.distance_backend == "lazy"


class TestOracleDeltaInheritance:
    def test_rows_and_balls_exact_vs_fresh(self):
        rng = np.random.default_rng(10)
        for _ in range(25):
            n = int(rng.integers(8, 32))
            g = _random_graph(rng, n)
            o = g.oracle
            for s in range(n):
                o.row(s)
            for s in range(0, n, 3):
                o.ball(s, int(rng.integers(0, 4)))
            added, removed = _random_delta(rng, g)
            g2 = g.with_edge_delta(added, removed)
            fresh = Graph(n, set(g2.edges)).use_distance_backend("lazy")
            for s in range(n):
                assert np.array_equal(g2.oracle.row(s), fresh.oracle.row(s))
            for s in range(0, n, 3):
                for rad in range(0, 4):
                    na, da = g2.oracle.ball(s, rad)
                    nb, db = fresh.oracle.ball(s, rad)
                    assert np.array_equal(na, nb)
                    assert np.array_equal(da, db)

    def test_certified_sources_provably_unchanged(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(8, 32))
            g = _random_graph(rng, n)
            for s in range(n):
                g.oracle.row(s)
            added, removed = _random_delta(rng, g)
            g2 = g.with_edge_delta(added, removed)
            fresh = Graph(n, set(g2.edges)).use_distance_backend("lazy")
            for s in g2.oracle.delta_certified_sources:
                assert np.array_equal(g.oracle.row(s), fresh.oracle.row(s))

    def test_chained_deltas_stay_exact(self):
        rng = np.random.default_rng(12)
        n = 24
        g = _random_graph(rng, n)
        for s in range(n):
            g.oracle.row(s)
        edges = set(g.edges)
        for _ in range(8):
            added, removed = _random_delta(rng, g, max_each=3)
            g = g.with_edge_delta(added, removed)
            edges = (edges - set(removed)) | set(added)
            fresh = Graph(n, edges).use_distance_backend("lazy")
            for s in range(n):
                assert np.array_equal(g.oracle.row(s), fresh.oracle.row(s))

    def test_mixed_node_removals_and_deltas(self):
        rng = np.random.default_rng(13)
        n = 20
        g = _random_graph(rng, n)
        for s in range(n):
            g.oracle.row(s)
        edges = set(g.edges)
        gone: set[int] = set()
        for step in range(6):
            if step % 2 == 0 and n - len(gone) > 3:
                alive = [u for u in range(n) if u not in gone]
                x = int(rng.choice(alive))
                gone.add(x)
                g = g.without_nodes([x])
                edges = {e for e in edges if x not in e}
            else:
                added, removed = _random_delta(rng, g, max_each=3)
                added = [e for e in added if not gone.intersection(e)]
                g = g.with_edge_delta(added, removed)
                edges = (edges - set(removed)) | set(added)
            fresh = Graph(n, edges).use_distance_backend("lazy")
            for s in range(n):
                assert np.array_equal(g.oracle.row(s), fresh.oracle.row(s))

    def test_new_reachability_propagates(self):
        # Two components joined by an added edge: inherited rows must
        # discover the other side exactly.
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        g.use_distance_backend("lazy")
        for s in range(6):
            g.oracle.row(s)
        g2 = g.with_edge_delta([(2, 3)], [])
        assert g2.oracle.distance(0, 5) == 5
        # ... and a removal can re-disconnect it.
        g3 = g2.with_edge_delta([], [(2, 3)])
        assert g3.oracle.distance(0, 5) == UNREACHABLE

    def test_landmark_oracle_inherits_rows_and_drops_labels(self):
        topo = random_topology(80, degree=6.0, seed=9)
        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("landmark")
        o = g.distance_oracle("landmark")
        assert o.distance(0, 40) >= 1  # builds labels
        assert o.labels_built
        for s in range(0, 80, 5):
            o.row(s)
        g2 = g.with_edge_delta([], [g.edges[0]])
        o2 = g2.distance_oracle("landmark")
        assert type(o2) is type(o)
        assert not o2.labels_built  # labels never survive a delta
        assert o2.stats().rows_inherited > 0
        fresh = Graph(g.n, g2.edges).use_distance_backend("landmark")
        for s in range(0, 80, 5):
            assert np.array_equal(o2.row(s), fresh.oracle.row(s))
        # Pair queries (label joins after lazy rebuild) stay exact too.
        assert o2.distance(3, 77) == fresh.oracle.distance(3, 77)


class TestInheritFromEdgeCases:
    """The ``inherit_from`` family's corners the ISSUE calls out."""

    def test_without_nodes_empty_removal_set(self):
        g = _random_graph(np.random.default_rng(20), 12)
        g2 = g.without_nodes([])
        assert g2 == g
        assert g2 is not g  # generic path: a rebuilt, equal graph

    def test_path_oracle_inherit_with_untouched_paths(self):
        topo = random_topology(60, degree=6.0, seed=2)
        g = topo.graph
        oracle = PathOracle(g)
        for t in range(1, 12):
            oracle.path(0, t)
        # Remove a node on none of the cached paths: everything carries.
        on_paths = {u for t in range(1, 12) for u in oracle.path(0, t)}
        spare = next(u for u in g.nodes() if u not in on_paths)
        g2 = g.without_nodes([spare])
        child = PathOracle(g2)
        carried = child.inherit_from(oracle, spare)
        assert carried == len(oracle)
        for t in range(1, 12):
            assert child.path(0, t) == canonical_path(g2, 0, t)

    def test_removal_of_partially_inherited_rows_source(self):
        # A source whose row is pending as a *partial* dies next: the
        # chained inheritance must drop that source (its row can never
        # be re-expanded) without touching other partials.
        topo = random_topology(120, degree=6.0, seed=4)
        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("lazy")
        src = 0
        row = g.oracle.row(src)
        victim = int(np.flatnonzero(row == 2)[0])  # invalidates src's row
        g2 = g.without_nodes([victim])
        assert src in g2.oracle._partial_rows
        assert g2.oracle.stats().rows_partial_inherited >= 1
        g3 = g2.without_nodes([src])
        assert src not in g3.oracle._partial_rows
        fresh = Graph(g.n, g3.edges).use_distance_backend("lazy")
        for probe in (src, victim, 5):
            assert np.array_equal(g3.oracle.row(probe), fresh.oracle.row(probe))

    def test_partial_row_then_edge_delta_shrinks_radius_exactly(self):
        # rows_partial_inherited path crossed with a subsequent delta:
        # the partial's radius shrinks to the nearest touched node inside
        # its prefix and re-expansion stays exact.
        topo = random_topology(120, degree=6.0, seed=6)
        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("lazy")
        src = 0
        row = g.oracle.row(src)
        victim = int(np.flatnonzero(row == 3)[0])
        g2 = g.without_nodes([victim])
        assert src in g2.oracle._partial_rows
        removed = [g2.edges[len(g2.edges) // 2]]
        g3 = g2.with_edge_delta([], removed)
        fresh = Graph(g.n, g3.edges).use_distance_backend("lazy")
        assert np.array_equal(g3.oracle.row(src), fresh.oracle.row(src))

    def test_reexpansion_counts_surface_in_stats(self):
        topo = random_topology(150, degree=6.0, seed=8)
        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("lazy")
        for s in range(10):
            g.oracle.row(s)
        row = g.oracle.row(0)
        victim = int(np.flatnonzero(row == 2)[0])
        g2 = g.without_nodes([victim])
        before = g2.oracle.stats()
        assert before.rows_partial_inherited > 0
        g2.oracle.row(0)  # forces a re-expansion
        assert g2.oracle.stats().rows_reexpanded == 1


class TestPathOracleEdgeDelta:
    def _routed_oracle(self, seed=3, n=90):
        topo = random_topology(n, degree=7.0, seed=seed)
        g = Graph(topo.graph.n, topo.graph.edges)
        g.use_distance_backend("lazy")
        oracle = PathOracle(g)
        rng = np.random.default_rng(seed)
        for _ in range(60):
            u, v = rng.choice(n, size=2, replace=False)
            oracle.path(int(u), int(v))
        return g, oracle

    def test_inherited_paths_are_canonical_on_child(self):
        rng = np.random.default_rng(30)
        for trial in range(10):
            g, oracle = self._routed_oracle(seed=trial)
            added, removed = _random_delta(rng, g, max_each=4)
            g2 = g.with_edge_delta(added, removed)
            touched = {x for e in added for x in e} | {
                x for e in removed for x in e
            }
            child = PathOracle(g2)
            carried = child.inherit_edge_delta(oracle, touched)
            for key, path in list(child._cache.items()):
                assert path == canonical_path(g2, key[0], key[1])
            assert carried == len(child)

    def test_empty_delta_carries_everything(self):
        g, oracle = self._routed_oracle(seed=5)
        child = PathOracle(g)
        assert child.inherit_edge_delta(oracle, set()) == len(oracle)

    def test_composed_deltas_stay_canonical(self):
        # The disconnected-gap scenario: the parent PathOracle's graph is
        # TWO deltas behind, and ``touched`` is the union.  The carried
        # paths must be canonical on the final graph even though the
        # child oracle's per-delta certificates only speak about the
        # last step.
        rng = np.random.default_rng(40)
        for trial in range(8):
            g0, oracle = self._routed_oracle(seed=trial + 50)
            a1, r1 = _random_delta(rng, g0, max_each=4)
            g1 = g0.with_edge_delta(a1, r1)
            # Touch g1's oracle so the second delta inherits (and
            # certifies) relative to g1, like the mobility loop does.
            for s in range(0, g1.n, 7):
                g1.oracle.row(s)
            a2, r2 = _random_delta(rng, g1, max_each=4)
            g2 = g1.with_edge_delta(a2, r2)
            touched = {
                x for e in [*a1, *r1, *a2, *r2] for x in e
            }
            child = PathOracle(g2)
            child.inherit_edge_delta(oracle, touched)
            for key, path in list(child._cache.items()):
                assert path == canonical_path(g2, key[0], key[1]), (
                    trial,
                    key,
                )


class TestOracleEmptyDelta:
    def test_direct_empty_delta_inherit_carries_everything(self):
        # Graph.with_edge_delta short-circuits empty deltas, so drive the
        # oracle API directly: everything must carry verbatim through the
        # general path.
        g = _random_graph(np.random.default_rng(60), 20)
        o = g.oracle
        for s in range(20):
            o.row(s)
        o.ball(0, 2)
        child = LazyDistanceOracle(g)
        child.inherit_edge_delta(o, [], [])
        st = child.stats()
        assert st.rows_inherited == 20
        assert st.balls_inherited == 1
        assert child.delta_certified_sources == frozenset(range(20))
        for s in range(20):
            assert np.array_equal(child.row(s), o.row(s))
