"""Tests for the structured topology generators."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.net.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    topology_from_graph,
    two_cliques_bridge,
)


class TestBasicShapes:
    def test_path(self):
        g = path_graph(4)
        assert g.n == 4 and g.m == 3
        assert g.diameter() == 3

    def test_path_single(self):
        assert path_graph(1).m == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.n == 5 and g.m == 5
        assert all(g.degree(u) == 2 for u in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(InvalidParameterError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.diameter() == 2

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10
        assert g.diameter() == 1

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.diameter() == 2 + 3


class TestCompositeShapes:
    def test_two_cliques_bridge_structure(self):
        g = two_cliques_bridge(4, 3)
        assert g.n == 11
        assert g.is_connected()
        # clique A complete
        for i in range(4):
            for j in range(i + 1, 4):
                assert g.has_edge(i, j)
        # bridge is a path 0 - 4 - 5 - 6 - 7
        assert g.has_edge(0, 4) and g.has_edge(4, 5) and g.has_edge(6, 7)

    def test_two_cliques_zero_bridge(self):
        g = two_cliques_bridge(3, 0)
        assert g.n == 6
        assert g.has_edge(0, 3)

    def test_caterpillar(self):
        g = caterpillar(3, 2)
        assert g.n == 3 + 6
        assert g.degree(0) == 1 + 2  # spine end + legs
        assert g.degree(1) == 2 + 2
        # leaves have degree 1
        assert all(g.degree(u) == 1 for u in range(3, 9))

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            two_cliques_bridge(0, 2)
        with pytest.raises(InvalidParameterError):
            caterpillar(0, 1)


class TestTopologyFromGraph:
    def test_wraps_with_positions(self):
        g = cycle_graph(8)
        topo = topology_from_graph(g)
        assert topo.graph is g
        assert topo.positions.shape == (8, 2)
        assert math.isnan(topo.radius)
