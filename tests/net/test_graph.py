"""Unit and property tests for repro.net.graph.Graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.net.graph import UNREACHABLE, Graph
from repro.net.generators import cycle_graph, grid_graph, path_graph, star_graph

from ..conftest import connected_graphs


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert g.is_connected()

    def test_single_node(self):
        g = Graph(1)
        assert g.n == 1 and g.m == 0
        assert g.neighbors(0) == ()

    def test_duplicate_and_reversed_edges_normalize(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1), (2, 1)])
        assert g.m == 2
        assert g.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph(2, [(0, 2)])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph(-1)

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (0, 3), (1, 0)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_from_edge_list_infers_n(self):
        g = Graph.from_edge_list([(0, 4), (2, 1)])
        assert g.n == 5 and g.m == 2


class TestAccessors:
    def test_degree_and_average(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.degree(1) == 1
        assert g.average_degree() == pytest.approx(2 * 4 / 5)

    def test_has_edge(self):
        g = path_graph(3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_len_and_iter(self):
        g = path_graph(4)
        assert len(g) == 4
        assert list(g) == [0, 1, 2, 3]


class TestDistances:
    def test_path_graph_distances(self):
        g = path_graph(5)
        assert g.hop_distance(0, 4) == 4
        assert g.hop_distance(2, 2) == 0
        assert g.bfs_distances(0).tolist() == [0, 1, 2, 3, 4]

    def test_cycle_distances(self):
        g = cycle_graph(6)
        assert g.hop_distance(0, 3) == 3
        assert g.hop_distance(0, 5) == 1

    def test_grid_distances_manhattan(self):
        g = grid_graph(3, 4)  # node r*4+c
        assert g.hop_distance(0, 11) == 2 + 3

    def test_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert g.hop_distance(0, 2) == UNREACHABLE

    def test_diameter_path(self):
        assert path_graph(7).diameter() == 6

    def test_diameter_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            Graph(2).diameter()

    def test_eccentricity(self):
        g = path_graph(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2

    @given(connected_graphs())
    @settings(max_examples=40)
    def test_distance_matrix_symmetric_and_triangle(self, g):
        d = g.hop_distances
        assert (d == d.T).all()
        assert (np.diag(d) == 0).all()
        # triangle inequality on a sample of triples
        n = g.n
        for u in range(min(n, 5)):
            for v in range(min(n, 5)):
                for w in range(min(n, 5)):
                    assert d[u, w] <= d[u, v] + d[v, w]

    @given(connected_graphs())
    @settings(max_examples=30)
    def test_adjacent_iff_distance_one(self, g):
        d = g.hop_distances
        for u, v in g.edges:
            assert d[u, v] == 1
        for u in range(g.n):
            for v in g.neighbors(u):
                assert d[u, v] == 1


class TestNeighborhoods:
    def test_khop_path(self):
        g = path_graph(7)
        assert g.khop_neighbors(3, 2) == (1, 2, 4, 5)
        assert g.closed_khop_neighbors(3, 1) == (2, 3, 4)

    def test_khop_zero(self):
        g = path_graph(3)
        assert g.khop_neighbors(1, 0) == ()
        assert g.closed_khop_neighbors(1, 0) == (1,)

    def test_khop_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            path_graph(3).khop_neighbors(0, -1)

    def test_nodes_within_multi_source(self):
        g = path_graph(10)
        assert g.nodes_within([0, 9], 1) == (0, 1, 8, 9)
        assert g.nodes_within([], 2) == ()

    @given(connected_graphs(), st.integers(1, 4))
    @settings(max_examples=30)
    def test_khop_symmetry(self, g, k):
        for u in range(g.n):
            for v in g.khop_neighbors(u, k):
                assert u in g.khop_neighbors(v, k)


class TestConnectivity:
    def test_connected_examples(self):
        assert path_graph(5).is_connected()
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [(0, 1), (2, 3), (4,)]

    def test_connected_subset(self):
        g = path_graph(5)
        assert g.is_connected_subset([1, 2, 3])
        assert not g.is_connected_subset([0, 2])
        assert g.is_connected_subset([])
        assert g.is_connected_subset([3])

    @given(connected_graphs())
    @settings(max_examples=30)
    def test_generated_graphs_connected(self, g):
        assert g.is_connected()
        assert len(g.connected_components()) == 1


class TestDerivedGraphs:
    def test_without_nodes_preserves_numbering(self):
        g = path_graph(5)
        g2 = g.without_nodes([2])
        assert g2.n == 5
        assert g2.degree(2) == 0
        assert not g2.is_connected()

    def test_without_nodes_bad_node(self):
        with pytest.raises(InvalidParameterError):
            path_graph(3).without_nodes([7])

    def test_with_edges(self):
        g = path_graph(3).with_edges([(0, 2)])
        assert g.has_edge(0, 2)

    @given(connected_graphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_node_fast_path_matches_generic(self, g, data):
        # The incremental single-node route must be indistinguishable from
        # a from-scratch rebuild: same edges, adjacency, and CSR arrays.
        x = data.draw(st.integers(0, g.n - 1))
        g.oracle.row(0)  # force CSR + caches so the patch path runs
        fast = g.without_nodes([x])
        generic = Graph(g.n, [e for e in g.edges if x not in e])
        assert fast == generic
        for u in range(g.n):
            assert fast.neighbors(u) == generic.neighbors(u)
        fi, fx = fast.csr_adjacency
        gi, gx = generic.csr_adjacency
        assert np.array_equal(fi, gi) and np.array_equal(fx, gx)
        # distance answers agree with a cold oracle on the rebuilt graph
        for u in range(g.n):
            assert np.array_equal(fast.bfs_distances(u), generic.bfs_distances(u))

    def test_multi_node_removal_unchanged(self):
        g = cycle_graph(6)
        g2 = g.without_nodes([0, 3])
        assert g2.degree(0) == 0 and g2.degree(3) == 0
        assert g2.has_edge(1, 2) and g2.has_edge(4, 5)

    def test_fast_path_inherits_oracle_caches(self):
        g = grid_graph(6, 6).use_distance_backend("lazy")
        corner, far = 0, 35
        g.oracle.ball(corner, 1)  # far from the removal: survives
        g.oracle.ball(far, 1)
        g2 = g.without_nodes([14])
        stats = g2.oracle.stats()
        assert stats.balls_inherited == 2
        assert stats.balls_computed == 0
        nodes, _ = g2.oracle.ball(corner, 1)
        assert nodes.tolist() == [0, 1, 6]

    def test_fast_path_drops_invalidated_balls(self):
        g = path_graph(6).use_distance_backend("lazy")
        g.oracle.ball(2, 2)  # contains node 3 at distance 1 -> must drop
        g.oracle.ball(5, 1)  # contains only {4, 5} -> survives
        g2 = g.without_nodes([3])
        stats = g2.oracle.stats()
        assert stats.balls_inherited == 1
        nodes, dists = g2.oracle.ball(2, 2)  # recomputed on the new graph
        assert nodes.tolist() == [0, 1, 2]
        assert dists.tolist() == [2, 1, 0]

    def test_fast_path_patches_boundary_balls(self):
        g = path_graph(5).use_distance_backend("lazy")
        g.oracle.ball(0, 2)  # {0,1,2}; node 2 sits exactly on the boundary
        g2 = g.without_nodes([2])
        stats = g2.oracle.stats()
        assert stats.balls_inherited == 1
        nodes, dists = g2.oracle.ball(0, 2)
        assert nodes.tolist() == [0, 1]
        assert dists.tolist() == [0, 1]
        assert g2.oracle.stats().balls_computed == 0  # patched, not re-run

    def test_fast_path_inherits_rows_of_other_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).use_distance_backend(
            "lazy"
        )
        g.oracle.row(0)  # cannot reach 4: survives its removal
        g.oracle.row(3)  # can reach 4: must be dropped
        g2 = g.without_nodes([4])
        stats = g2.oracle.stats()
        assert stats.rows_inherited == 1
        assert g2.oracle.distance(3, 5) == UNREACHABLE
        assert g2.oracle.distance(0, 2) == 2

    def test_induced_subgraph_edges(self):
        g = cycle_graph(5)
        assert g.induced_subgraph_edges([0, 1, 2]) == [(0, 1), (1, 2)]


class TestConversions:
    def test_networkx_roundtrip(self):
        g = grid_graph(3, 3)
        nx_g = g.to_networkx()
        back = Graph.from_networkx(nx_g)
        assert back == g

    def test_from_networkx_bad_labels(self):
        import networkx as nx

        h = nx.Graph()
        h.add_edge("a", "b")
        with pytest.raises(InvalidParameterError):
            Graph.from_networkx(h)

    @given(connected_graphs())
    @settings(max_examples=20)
    def test_distances_match_networkx(self, g):
        import networkx as nx

        nxg = g.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for u in range(g.n):
            for v in range(g.n):
                assert g.hop_distance(u, v) == lengths[u][v]
