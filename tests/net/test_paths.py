"""Tests for canonical shortest paths and the PathOracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedGraphError
from repro.net.generators import cycle_graph, grid_graph, path_graph
from repro.net.graph import Graph
from repro.net.paths import PathOracle, canonical_path, path_interior

from ..conftest import connected_graphs


class TestCanonicalPath:
    def test_trivial(self):
        g = path_graph(3)
        assert canonical_path(g, 1, 1) == (1,)

    def test_path_graph(self):
        g = path_graph(5)
        assert canonical_path(g, 0, 4) == (0, 1, 2, 3, 4)
        assert canonical_path(g, 4, 0) == (4, 3, 2, 1, 0)

    def test_tie_break_prefers_lower_ids(self):
        # two parallel 2-hop routes 0-1-3 and 0-2-3: must take node 1
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert canonical_path(g, 0, 3) == (0, 1, 3)

    def test_orientation_symmetry(self):
        g = cycle_graph(8)
        p = canonical_path(g, 1, 5)
        q = canonical_path(g, 5, 1)
        assert p == tuple(reversed(q))

    def test_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            canonical_path(g, 0, 2)

    def test_interior(self):
        assert path_interior((1, 2, 3, 4)) == (2, 3)
        assert path_interior((1, 2)) == ()

    @given(connected_graphs(), st.data())
    @settings(max_examples=50)
    def test_path_is_shortest_and_valid(self, g, data):
        u = data.draw(st.integers(0, g.n - 1))
        v = data.draw(st.integers(0, g.n - 1))
        p = canonical_path(g, u, v)
        assert p[0] == u and p[-1] == v
        assert len(p) == g.hop_distance(u, v) + 1
        for a, b in zip(p, p[1:]):
            assert g.has_edge(a, b)
        assert len(set(p)) == len(p)  # simple path

    @given(connected_graphs(), st.data())
    @settings(max_examples=50)
    def test_reversal_symmetry_property(self, g, data):
        u = data.draw(st.integers(0, g.n - 1))
        v = data.draw(st.integers(0, g.n - 1))
        assert canonical_path(g, u, v) == tuple(
            reversed(canonical_path(g, v, u))
        )


class TestPathOracle:
    def test_caches_per_unordered_pair(self):
        g = grid_graph(3, 3)
        oracle = PathOracle(g)
        p1 = oracle.path(0, 8)
        p2 = oracle.path(8, 0)
        assert p1 == tuple(reversed(p2))
        assert len(oracle) == 1

    def test_distance_matches_graph(self):
        g = grid_graph(2, 5)
        oracle = PathOracle(g)
        assert oracle.distance(0, 9) == g.hop_distance(0, 9)

    def test_interior_shortcut(self):
        g = path_graph(4)
        oracle = PathOracle(g)
        assert oracle.interior(0, 3) == (1, 2)

    def test_same_node(self):
        oracle = PathOracle(path_graph(2))
        assert oracle.path(1, 1) == (1,)
        assert len(oracle) == 0

    def test_matches_canonical(self):
        g = grid_graph(4, 4)
        oracle = PathOracle(g)
        for u, v in [(0, 15), (3, 12), (5, 10)]:
            assert oracle.path(u, v) == canonical_path(g, u, v)

    def test_cache_is_byte_bounded(self):
        # A tiny budget keeps at most one resident path; answers stay
        # correct because evicted paths are simply recomputed.
        g = grid_graph(5, 5)
        bounded = PathOracle(g, cache_bytes=1)
        reference = PathOracle(g)
        pairs = [(0, 24), (4, 20), (2, 22), (0, 24)]
        for u, v in pairs:
            assert bounded.path(u, v) == reference.path(u, v)
        assert len(bounded) == 1
        stats = bounded.stats()
        assert stats.backend == "path-cache"
        # (0, 24) was evicted by later pairs, so its repeat recomputed
        assert stats.paths_computed == 4 and stats.path_hits == 0

    def test_stats_report_hits_and_bytes(self):
        g = grid_graph(4, 4)
        oracle = PathOracle(g)
        oracle.path(0, 15)
        oracle.path(15, 0)  # same unordered pair: a hit
        stats = oracle.stats()
        assert stats.paths_computed == 1
        assert stats.path_hits == 1
        assert 0 < stats.cached_bytes <= stats.peak_cached_bytes
