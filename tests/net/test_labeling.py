"""Equivalence tests for the landmark backend, batched rows, and
incremental (post-removal) oracle states.

The load-bearing property of the whole acceleration layer: the
``landmark`` backend's label joins and the lazy backend's bit-packed
batched rows are *observationally identical* to plain per-source BFS —
on the paper's unit-disk instances, on structured large-diameter
scenarios (toroidal grid, ring of cliques), and on the incrementally
derived graphs churn produces via single-node removals.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.generators import ring_of_cliques, toroidal_grid
from repro.net.graph import UNREACHABLE, Graph
from repro.net.labeling import (
    LandmarkDistanceOracle,
    _build_pruned_labels_reference,
    build_pruned_labels,
)
from repro.net.oracle import (
    DIST_DTYPE,
    LazyDistanceOracle,
    build_distance_oracle,
    resolve_backend,
)
from repro.net.topology import random_topology

from ..conftest import connected_graphs


def unit_disk(n: int, seed: int) -> Graph:
    """A connected unit-disk instance in the paper's regime."""
    return random_topology(n, degree=8.0, seed=seed).graph


#: The three scenario families the satellite task names.
SCENARIOS = [
    pytest.param(lambda: unit_disk(60, 11), id="unit-disk-60"),
    pytest.param(lambda: unit_disk(150, 13), id="unit-disk-150"),
    pytest.param(lambda: toroidal_grid(8, 9), id="toroidal-8x9"),
    pytest.param(lambda: toroidal_grid(12, 12), id="toroidal-12x12"),
    pytest.param(lambda: ring_of_cliques(6, 7), id="ring-of-cliques-6x7"),
    pytest.param(lambda: ring_of_cliques(12, 4), id="ring-of-cliques-12x4"),
]


def reference_rows(g: Graph) -> np.ndarray:
    """Ground truth: plain per-source CSR BFS rows."""
    ref = LazyDistanceOracle(g)
    return np.stack([ref.row(u) for u in range(g.n)])


@pytest.mark.parametrize("make", SCENARIOS)
def test_landmark_and_batched_agree_on_scenarios(make):
    g = make()
    truth = reference_rows(Graph(g.n, g.edges))
    lazy = build_distance_oracle(g, "lazy")
    landmark = build_distance_oracle(g, "landmark")
    assert isinstance(landmark, LandmarkDistanceOracle)
    # batched rows (all sources at once -> multiple bit-packed sweeps)
    assert np.array_equal(lazy.rows(range(g.n)), truth)
    # landmark pair queries against every truth entry
    rng = np.random.default_rng(7)
    us = rng.integers(0, g.n, 250)
    vs = rng.integers(0, g.n, 250)
    for u, v in zip(us.tolist(), vs.tolist()):
        assert landmark.distance(u, v) == int(truth[u, v])
    # bulk pair APIs
    pairs = list(zip(us.tolist(), vs.tolist()))
    assert np.array_equal(
        landmark.pair_distances(pairs), truth[us, vs].astype(DIST_DTYPE)
    )
    nodes = sorted({int(x) for x in rng.integers(0, g.n, 12)})
    assert np.array_equal(
        landmark.pairwise_distances(nodes),
        truth[np.ix_(nodes, nodes)],
    )


@pytest.mark.parametrize("make", SCENARIOS)
def test_backends_agree_after_incremental_removals(make):
    """Post-removal states: fast-path graphs + inherited caches stay exact."""
    g = make().use_distance_backend("lazy")
    rng = np.random.default_rng(3)
    # Warm caches so inheritance actually has something to carry over.
    for s in range(0, g.n, 7):
        g.oracle.ball(s, 2)
    for s in range(0, g.n, 17):
        g.oracle.row(s)
    removed: list[int] = []
    current = g
    for _ in range(4):
        x = int(rng.integers(0, g.n))
        while x in removed:
            x = int(rng.integers(0, g.n))
        removed.append(x)
        current = current.without_nodes([x])  # single-node fast path
        # reference: rebuilt cold from the surviving edge list
        ref = Graph(g.n, [e for e in g.edges if not set(e) & set(removed)])
        truth = reference_rows(ref)
        assert current.edges == ref.edges
        lazy_rows = current.oracle.rows(range(g.n))
        assert np.array_equal(lazy_rows, truth)
        # balls from the (possibly inherited) cache
        for s in range(0, g.n, 7):
            nodes, dists = current.oracle.ball(s, 2)
            ref_nodes = np.flatnonzero(
                (truth[s] <= 2) & (truth[s] < UNREACHABLE)
            )
            assert np.array_equal(nodes, ref_nodes)
            assert np.array_equal(dists, truth[s][ref_nodes])
        # landmark backend rebuilt on the derived graph stays exact
        landmark = build_distance_oracle(current, "landmark")
        qs = rng.integers(0, g.n, 60).reshape(-1, 2)
        for u, v in qs.tolist():
            assert landmark.distance(u, v) == int(truth[u, v])


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_landmark_rows_and_balls_match_lazy(g):
    # row/ball machinery is inherited from the lazy backend; pair queries
    # come from labels — all three must agree on arbitrary graphs.
    lazy = build_distance_oracle(g, "lazy")
    landmark = build_distance_oracle(g, "landmark")
    for u in range(g.n):
        assert np.array_equal(landmark.row(u), lazy.row(u))
        for v in range(g.n):
            assert landmark.distance(u, v) == int(lazy.row(u)[v])


@given(connected_graphs(max_n=12), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_labels_exact_after_chained_removals(g, removals):
    current = g.use_distance_backend("landmark")
    alive = list(range(g.n))
    for _ in range(min(removals, g.n - 1)):
        x = alive.pop(len(alive) // 2)
        current = current.without_nodes([x])
    oracle = current.distance_oracle("landmark")
    reference = LazyDistanceOracle(Graph(current.n, current.edges))
    for u in range(current.n):
        ref_row = reference.row(u)
        for v in range(current.n):
            assert oracle.distance(u, v) == int(ref_row[v])


class TestVectorizedConstruction:
    """The CSR level-synchronous builder vs the per-node reference."""

    @pytest.mark.parametrize("make", SCENARIOS)
    def test_labels_identical_to_reference(self, make):
        g = make()
        indptr, indices = g.csr_adjacency
        v_ranks, v_dists, v_order = build_pruned_labels(indptr, indices, g.n)
        r_ranks, r_dists, r_order = _build_pruned_labels_reference(
            indptr, indices, g.n
        )
        assert np.array_equal(v_order, r_order)
        for u in range(g.n):
            assert np.array_equal(v_ranks[u], r_ranks[u]), u
            assert np.array_equal(v_dists[u], r_dists[u]), u
            assert v_dists[u].dtype == r_dists[u].dtype

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_labels_identical_on_random_graphs(self, g):
        indptr, indices = g.csr_adjacency
        v = build_pruned_labels(indptr, indices, g.n)
        r = _build_pruned_labels_reference(indptr, indices, g.n)
        for u in range(g.n):
            assert np.array_equal(v[0][u], r[0][u])
            assert np.array_equal(v[1][u], r[1][u])

    def test_disconnected_and_isolated_nodes(self):
        g = Graph(6, [(0, 1), (1, 2), (4, 5)])  # node 3 isolated
        indptr, indices = g.csr_adjacency
        v = build_pruned_labels(indptr, indices, g.n)
        r = _build_pruned_labels_reference(indptr, indices, g.n)
        for u in range(g.n):
            assert np.array_equal(v[0][u], r[0][u])
            assert np.array_equal(v[1][u], r[1][u])
        # the isolated node still labels itself (exact self-distance 0)
        oracle = LandmarkDistanceOracle(g)
        assert oracle.distance(3, 3) == 0
        assert oracle.distance(3, 0) == UNREACHABLE

    def test_empty_graph(self):
        g = Graph(0)
        indptr, indices = g.csr_adjacency
        ranks, dists, order = build_pruned_labels(indptr, indices, 0)
        assert ranks == [] and dists == [] and order.size == 0


class TestDistDtypeContract:
    """PR 6 regression: the repro-lint R002 findings, frozen as behavior.

    ``build_pruned_labels`` used to keep the persistent label-distance
    arrays in int64; they are DIST_DTYPE now.  The narrowing is only
    sound because the prune check's sentinel arithmetic
    (``UNREACHABLE + d``) runs in the int64 ``hub_dist`` scratch array —
    in int32 it would wrap negative and defeat the pruning comparison.
    A disconnected graph keeps the sentinel resident in that scratch for
    every cross-component candidate, so it is exactly the family where a
    careless narrowing would produce silently wrong labels.
    """

    def test_label_distances_are_dist_dtype(self):
        g = toroidal_grid(6, 6)
        indptr, indices = g.csr_adjacency
        _, dists, _ = build_pruned_labels(indptr, indices, g.n)
        assert dists and all(d.dtype == DIST_DTYPE for d in dists)

    def test_sentinel_arithmetic_survives_disconnection(self):
        # Three components of very different shapes: a long path, a
        # clique, and a single edge.  Every prune check rooted in one
        # component sees the sentinel for hubs of the others.
        edges = [(i, i + 1) for i in range(9)]
        edges += [
            (10 + a, 10 + b) for a in range(5) for b in range(a + 1, 5)
        ]
        edges += [(15, 16)]
        g = Graph(17, edges)
        indptr, indices = g.csr_adjacency
        v_ranks, v_dists, v_order = build_pruned_labels(indptr, indices, g.n)
        r_ranks, r_dists, r_order = _build_pruned_labels_reference(
            indptr, indices, g.n
        )
        assert np.array_equal(v_order, r_order)
        for u in range(g.n):
            assert np.array_equal(v_ranks[u], r_ranks[u]), u
            assert np.array_equal(v_dists[u], r_dists[u]), u
            # the sentinel itself never leaks into a stored label
            assert (v_dists[u] < UNREACHABLE).all()
            assert (v_dists[u] >= 0).all()
        oracle = LandmarkDistanceOracle(g)
        assert oracle.distance(0, 12) == UNREACHABLE
        assert oracle.distance(16, 3) == UNREACHABLE
        assert oracle.distance(0, 9) == 9


class TestPrunedLabels:
    def test_labels_cover_all_pairs_exactly(self):
        g = ring_of_cliques(5, 4)
        indptr, indices = g.csr_adjacency
        ranks, dists, order = build_pruned_labels(indptr, indices, g.n)
        assert order.size == g.n
        # every node labels itself through some hub at distance 0
        for u in range(g.n):
            assert (dists[u] == 0).sum() == 1
            assert ranks[u].size >= 1
            # ranks are strictly increasing (sorted joins rely on this)
            assert (np.diff(ranks[u]) > 0).all()

    def test_degree_ranked_landmark_order(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
        oracle = LandmarkDistanceOracle(g)
        oracle.distance(3, 4)  # trigger lazy label construction
        # hub 0 has degree 4: rank 0, and a small landmark set suffices
        assert oracle.landmarks(1) == (0,)
        stats = oracle.stats()
        assert stats.backend == "landmark"
        assert stats.label_entries > 0
        assert stats.pair_queries >= 1

    def test_labels_built_lazily(self):
        g = toroidal_grid(4, 4)
        oracle = LandmarkDistanceOracle(g)
        oracle.ball(0, 2)
        oracle.row(3)
        assert not oracle.labels_built  # ball/row queries never need labels
        assert oracle.distance(0, 5) >= 1
        assert oracle.labels_built

    def test_landmark_backend_resolution(self):
        assert resolve_backend("landmark", 10) == "landmark"
        g = Graph(3, [(0, 1)])
        assert g.use_distance_backend("landmark").oracle.backend == "landmark"

    def test_label_sizes_stay_small_on_unit_disk(self):
        # The √n-landmark claim, operationally: average label size on a
        # unit-disk instance stays a small multiple of √n.
        g = unit_disk(150, 17)
        oracle = LandmarkDistanceOracle(g)
        oracle.distance(0, g.n - 1)
        avg = oracle.stats().label_entries / g.n
        assert avg <= 4.0 * np.sqrt(g.n)
