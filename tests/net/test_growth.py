"""Node-arrival growth: ``Graph.with_nodes`` and the inherit_node_add ladder.

The service tentpole's contract mirrors the edge-delta one — exactness: a
grown graph and its inherited caches must be *observationally identical*
to a from-scratch rebuild.  Node addition is the pure *decrease* half of
the delta machinery (new nodes only create paths, never destroy them), so
the randomized classes here drive arbitrary arrivals — pendant, multi-edge,
multi-node batches with new-new edges, isolated nodes — against fresh
rebuilds for rows, balls, canonical paths, and landmark labels alike.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.net.graph import Graph
from repro.net.labeling import LandmarkDistanceOracle
from repro.net.oracle import UNREACHABLE, LazyDistanceOracle
from repro.net.paths import PathOracle
from repro.net.topology import random_topology


def _random_graph(rng, n):
    edges = set()
    for _ in range(n * 2):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    g = Graph(n, edges)
    g.use_distance_backend("lazy")
    return g


def _random_arrival(rng, g, max_new=3, max_deg=4):
    """A random with_nodes delta: 1..max_new nodes, each wired to a few
    earlier nodes (old or new-in-batch; possibly none — isolated)."""
    count = int(rng.integers(1, max_new + 1))
    edges = []
    for i in range(count):
        x = g.n + i
        deg = int(rng.integers(0, max_deg + 1))
        if deg:
            targets = rng.choice(x, size=min(deg, x), replace=False)
            edges.extend((int(t), x) for t in targets)
    return count, edges


class TestWithNodes:
    def test_graph_equals_fresh_rebuild(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(6, 30))
            g = _random_graph(rng, n)
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            fresh = Graph(n + count, set(g.edges) | {tuple(sorted(e)) for e in edges})
            assert g2 == fresh
            assert g2._adj == fresh._adj

    def test_csr_patch_equals_fresh_rebuild(self):
        rng = np.random.default_rng(1)
        for _ in range(25):
            n = int(rng.integers(6, 30))
            g = _random_graph(rng, n)
            g.csr_adjacency  # force the cache so growth takes the patch path
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            fresh = Graph(g2.n, g2.edges)
            pi, px = g2.csr_adjacency
            fi, fx = fresh.csr_adjacency
            assert np.array_equal(pi, fi)
            assert np.array_equal(px, fx)
            assert not pi.flags.writeable and not px.flags.writeable

    def test_zero_count_returns_self(self):
        g = _random_graph(np.random.default_rng(2), 10)
        assert g.with_nodes(0) is g

    def test_rejects_negative_count(self):
        g = _random_graph(np.random.default_rng(2), 10)
        with pytest.raises(InvalidParameterError):
            g.with_nodes(-1)

    def test_rejects_edge_between_old_nodes(self):
        g = _random_graph(np.random.default_rng(2), 10)
        with pytest.raises(InvalidParameterError, match="with_edge_delta"):
            g.with_nodes(1, [(0, 1)])

    def test_rejects_out_of_range_endpoint(self):
        g = _random_graph(np.random.default_rng(2), 10)
        with pytest.raises(InvalidParameterError):
            g.with_nodes(1, [(3, 11)])
        with pytest.raises(ValueError):
            g.with_nodes(1, [(10, 10)])  # self-loop on the new node

    def test_chained_growth(self):
        rng = np.random.default_rng(3)
        g = _random_graph(rng, 12)
        for _ in range(10):
            count, edges = _random_arrival(rng, g)
            g = g.with_nodes(count, edges)
        fresh = Graph(g.n, g.edges)
        assert g == fresh
        assert g._adj == fresh._adj

    def test_inherit_oracles_false_drops_caches_not_answers(self):
        # The service growth loop's opt-out: empty caches, same distances.
        rng = np.random.default_rng(4)
        g = _random_graph(rng, 20)
        warm = g.oracle.rows(range(6))
        count, edges = _random_arrival(rng, g)
        g2 = g.with_nodes(count, edges, inherit_oracles=False)
        assert g2._oracles == {}
        carried = g.with_nodes(count, edges)
        for u in range(6):
            assert np.array_equal(
                g2.oracle.rows([u])[0], carried.oracle.rows([u])[0]
            )
        del warm


class TestLazyOracleNodeAdd:
    """``LazyDistanceOracle.inherit_node_add`` — rows, balls, certificates."""

    def _warm(self, g, rng, rows=8, balls=6, radius=2):
        o = g.oracle
        assert isinstance(o, LazyDistanceOracle)
        for s in rng.choice(g.n, size=min(rows, g.n), replace=False):
            o.row(int(s))
        for s in rng.choice(g.n, size=min(balls, g.n), replace=False):
            o.ball(int(s), radius)
        return o

    def test_rows_and_balls_equal_fresh_rebuild(self):
        rng = np.random.default_rng(10)
        for _ in range(25):
            n = int(rng.integers(8, 30))
            g = _random_graph(rng, n)
            self._warm(g, rng)
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            fresh = Graph(g2.n, g2.edges)
            fresh.use_distance_backend("lazy")
            for s in range(g2.n):
                assert np.array_equal(
                    g2.oracle.row(s), fresh.oracle.row(s)
                ), s
            for s in range(g2.n):
                bn, bd = g2.oracle.ball(s, 2)
                rn, rd = fresh.oracle.ball(s, 2)
                assert np.array_equal(bn, rn) and np.array_equal(bd, rd), s

    def test_shortcut_arrival_patches_rows(self):
        # Attach the new node to a graph-diameter pair: every cached row
        # that could route through the shortcut must be Dial-patched, and
        # the result must still match a fresh rebuild.
        topo = random_topology(60, 6, seed=5)
        g = topo.graph.use_distance_backend("lazy")
        rows = g.oracle.rows(range(g.n))
        u, v = np.unravel_index(
            np.argmax(np.where(rows < UNREACHABLE, rows, -1)), rows.shape
        )
        assert rows[u, v] >= 3  # the arrival below is a genuine shortcut
        g2 = g.with_nodes(1, [(int(u), g.n), (int(v), g.n)])
        fresh = Graph(g2.n, g2.edges).use_distance_backend("lazy")
        for s in range(g.n):
            assert np.array_equal(g2.oracle.row(s), fresh.oracle.row(s)), s
        st = g2.oracle.stats()
        assert st.rows_patched > 0
        assert st.rows_inherited == g.n

    def test_certified_sources_are_exactly_unchanged_rows(self):
        rng = np.random.default_rng(11)
        for _ in range(15):
            n = int(rng.integers(8, 25))
            g = _random_graph(rng, n)
            o = self._warm(g, rng, rows=n, balls=0)
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            fresh = Graph(g2.n, g2.edges)
            fresh.use_distance_backend("lazy")
            certified = g2.oracle.delta_certified_sources
            for s in range(n):
                old = np.asarray(o.row(s))
                new = np.asarray(fresh.oracle.row(s))
                unchanged = bool((new[:n] == old).all())
                assert (s in certified) == unchanged, s

    def test_isolated_arrival_certifies_everything(self):
        rng = np.random.default_rng(12)
        g = _random_graph(rng, 15)
        self._warm(g, rng, rows=15, balls=5)
        g2 = g.with_nodes(2)  # no edges at all
        st = g2.oracle.stats()
        assert st.rows_inherited == 15
        assert st.rows_patched == 0
        assert len(g2.oracle.delta_certified_sources) == 15
        assert st.balls_inherited == 5
        row = g2.oracle.row(0)
        assert row[15] == UNREACHABLE and row[16] == UNREACHABLE

    def test_partial_rows_carry_with_shrunken_radius(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            n = int(rng.integers(10, 25))
            g = _random_graph(rng, n)
            o = g.oracle
            for s in range(0, n, 2):
                o.ball(s, 2)  # balls record partial rows at radius 2
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            fresh = Graph(g2.n, g2.edges)
            fresh.use_distance_backend("lazy")
            # Surviving partials must still answer in-radius queries right.
            for s in range(0, n, 2):
                bn, bd = g2.oracle.ball(s, 1)
                rn, rd = fresh.oracle.ball(s, 1)
                assert np.array_equal(bn, rn) and np.array_equal(bd, rd), s


class TestPathOracleNodeAdd:
    """``PathOracle.inherit_node_add`` — min-ID canonical walk survival."""

    def test_inherited_paths_equal_fresh_rebuild(self):
        rng = np.random.default_rng(20)
        for _ in range(20):
            n = int(rng.integers(8, 28))
            g = _random_graph(rng, n)
            po = PathOracle(g)
            pairs = [
                (int(a), int(b))
                for a, b in rng.integers(0, n, (12, 2))
                if a != b and g.oracle.distance(int(a), int(b)) != UNREACHABLE
            ]
            for a, b in pairs:
                po.path(a, b)
            count, edges = _random_arrival(rng, g)
            g2 = g.with_nodes(count, edges)
            po2 = PathOracle(g2)
            po2.inherit_node_add(po)
            fresh = PathOracle(Graph(g2.n, g2.edges))
            for a, b in pairs:
                assert po2.path(a, b) == fresh.path(a, b), (a, b)

    def test_inherits_count_and_reports(self):
        g = _random_graph(np.random.default_rng(21), 20)
        po = PathOracle(g)
        for a in range(0, 20, 4):
            for b in range(1, 20, 5):
                if a != b:
                    po.path(a, b)
        g2 = g.with_nodes(1, [(0, 20)])
        po2 = PathOracle(g2)
        carried = po2.inherit_node_add(po)
        assert carried >= 0
        assert po2.paths_inherited == carried


class TestLandmarkNodeAdd:
    """``LandmarkDistanceOracle.inherit_node_add`` — pendant augmentation."""

    def test_pendant_arrival_extends_labels(self):
        topo = random_topology(50, 6, seed=7)
        g = topo.graph.use_distance_backend("landmark")
        o = g.oracle
        assert isinstance(o, LandmarkDistanceOracle)
        o.distance(3, 40)  # force label construction
        assert o.labels_built
        g2 = g.with_nodes(1, [(10, g.n)])
        o2 = g2.oracle
        assert isinstance(o2, LandmarkDistanceOracle)
        assert o2.labels_built  # augmented, not dropped
        fresh = Graph(g2.n, g2.edges).use_distance_backend("landmark")
        for t in range(g2.n):
            assert o2.distance(g.n, t) == fresh.oracle.distance(g.n, t), t
            assert o2.distance(7, t) == fresh.oracle.distance(7, t), t

    def test_non_pendant_arrival_drops_labels(self):
        topo = random_topology(50, 6, seed=7)
        g = topo.graph.use_distance_backend("landmark")
        g.oracle.distance(3, 40)
        # two attachment edges can shorten old pairs: label-cold
        g2 = g.with_nodes(1, [(10, g.n), (30, g.n)])
        assert not g2.oracle.labels_built
        # a two-node batch is label-cold even when each node is pendant
        g3 = g.with_nodes(2, [(10, g.n), (11, g.n + 1)])
        assert not g3.oracle.labels_built

    def test_cold_parent_stays_cold(self):
        topo = random_topology(50, 6, seed=7)
        g = topo.graph.use_distance_backend("landmark")
        assert not g.oracle.labels_built
        g2 = g.with_nodes(1, [(10, g.n)])
        assert not g2.oracle.labels_built


class TestTopologyWithNode:
    def test_unit_disk_edges_match_regeneration(self):
        topo = random_topology(40, 6, seed=9)
        pos = topo.positions[12] + np.asarray([0.01, -0.01])
        t2 = topo.with_node(pos)
        assert t2.n == topo.n + 1
        # edges of the new node are exactly the in-radius old nodes
        diff = topo.positions - pos
        within = np.flatnonzero(
            np.sqrt(np.einsum("ij,ij->i", diff, diff)) <= topo.radius
        )
        assert t2.graph.neighbors(topo.n) == tuple(int(u) for u in within)
        # old structure untouched
        assert t2.graph.edges[: len(topo.graph.edges)] != ()
        assert set(topo.graph.edges) <= set(t2.graph.edges)

    def test_isolated_position_allowed(self):
        topo = random_topology(40, 6, seed=9)
        far = np.asarray([1e6, 1e6])
        t2 = topo.with_node(far)
        assert t2.graph.neighbors(topo.n) == ()
