"""Tests for the energy model."""

import pytest

from repro.errors import InvalidParameterError
from repro.net.energy import EnergyModel, EnergyParams


class TestEnergyParams:
    def test_defaults_valid(self):
        p = EnergyParams()
        assert p.initial > p.death_threshold

    def test_invalid_initial(self):
        with pytest.raises(InvalidParameterError):
            EnergyParams(initial=0.0, death_threshold=0.0)

    def test_negative_cost(self):
        with pytest.raises(InvalidParameterError):
            EnergyParams(tx_cost=-1.0)


class TestEnergyModel:
    def test_initial_state(self):
        m = EnergyModel(4)
        assert m.n == 4
        assert all(m.is_alive(u) for u in range(4))
        assert m.alive_nodes() == (0, 1, 2, 3)

    def test_tx_rx_charging(self):
        m = EnergyModel(2, EnergyParams(initial=10.0, tx_cost=2.0, rx_cost=1.0))
        m.charge_tx(0, 3)
        m.charge_rx(1, 4)
        assert m.residual(0) == pytest.approx(4.0)
        assert m.residual(1) == pytest.approx(6.0)

    def test_death(self):
        m = EnergyModel(1, EnergyParams(initial=3.0, tx_cost=2.0))
        m.charge_tx(0, 2)
        assert not m.is_alive(0)
        assert m.alive_nodes() == ()

    def test_idle_round_backbone_drains_more(self):
        m = EnergyModel(3, EnergyParams(initial=10.0, idle_member=0.1, idle_backbone=0.5))
        m.charge_idle_round({1})
        assert m.residual(0) == pytest.approx(9.9)
        assert m.residual(1) == pytest.approx(9.5)
        assert m.residual(2) == pytest.approx(9.9)

    def test_idle_round_empty_backbone(self):
        m = EnergyModel(2)
        before = m.residuals()
        m.charge_idle_round(set())
        after = m.residuals()
        assert (before - after > 0).all()

    def test_priority_keys_prefer_energy(self):
        m = EnergyModel(3, EnergyParams(initial=10.0, tx_cost=1.0))
        m.charge_tx(0, 5)
        keys = m.priority_keys()
        # node 0 drained: worst key; nodes 1, 2 tie on energy -> id order
        assert min(keys) == keys[1]
        assert max(keys) == keys[0]

    def test_negative_messages_rejected(self):
        m = EnergyModel(1)
        with pytest.raises(InvalidParameterError):
            m.charge_tx(0, -1)
        with pytest.raises(InvalidParameterError):
            m.charge_rx(0, -1)

    def test_residuals_is_copy(self):
        m = EnergyModel(2)
        r = m.residuals()
        r[0] = -100
        assert m.is_alive(0)
