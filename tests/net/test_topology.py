"""Tests for unit-disk topology generation and calibration."""

import math

import numpy as np
import pytest

from repro.errors import CalibrationError, InvalidParameterError
from repro.net.topology import (
    _cell_binned_disk_edges,
    calibrate_radius,
    radius_for_degree,
    random_topology,
    unit_disk_graph,
)


class TestRadiusForDegree:
    def test_analytic_formula(self):
        r = radius_for_degree(101, 6.0, (100.0, 100.0))
        assert r == pytest.approx(math.sqrt(6 * 10000 / (math.pi * 100)))

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            radius_for_degree(1, 6.0)
        with pytest.raises(InvalidParameterError):
            radius_for_degree(10, 0.0)


class TestUnitDiskGraph:
    def test_edges_exactly_within_radius(self):
        pos = np.array([[0, 0], [1, 0], [2.5, 0]], dtype=float)
        g = unit_disk_graph(pos, 1.5)
        assert set(g.edges) == {(0, 1), (1, 2)}

    def test_radius_zero_no_edges(self):
        pos = np.array([[0, 0], [1, 0]], dtype=float)
        assert unit_disk_graph(pos, 0.5).m == 0

    def test_negative_radius(self):
        with pytest.raises(InvalidParameterError):
            unit_disk_graph(np.zeros((2, 2)), -1)


class TestRandomTopology:
    def test_basic_properties(self):
        topo = random_topology(60, 6.0, seed=1)
        assert topo.n == 60
        assert topo.graph.is_connected()
        assert topo.positions.shape == (60, 2)
        assert topo.attempts >= 1

    def test_reproducible(self):
        a = random_topology(50, 6.0, seed=99)
        b = random_topology(50, 6.0, seed=99)
        assert a.graph == b.graph
        assert np.array_equal(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = random_topology(50, 6.0, seed=1)
        b = random_topology(50, 6.0, seed=2)
        assert a.graph != b.graph

    def test_degree_in_ballpark(self):
        degs = [random_topology(100, 6.0, seed=s).realized_degree() for s in range(5)]
        mean = sum(degs) / len(degs)
        assert 4.0 <= mean <= 8.0  # analytic calibration, border effects allowed

    def test_dense_target(self):
        topo = random_topology(100, 10.0, seed=3)
        assert 7.0 <= topo.realized_degree() <= 13.0

    def test_explicit_radius_override(self):
        topo = random_topology(30, 6.0, seed=5, radius=200.0)
        # radius covers the whole area: complete graph
        assert topo.graph.m == 30 * 29 // 2
        assert topo.radius == 200.0

    def test_single_node(self):
        topo = random_topology(1, 6.0, seed=0)
        assert topo.n == 1 and topo.graph.m == 0

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            random_topology(0, 6.0, seed=0)

    def test_unknown_calibration(self):
        with pytest.raises(InvalidParameterError):
            random_topology(10, 6.0, seed=0, calibration="magic")

    def test_impossible_connectivity_raises(self):
        with pytest.raises(CalibrationError):
            random_topology(80, 0.3, seed=0, max_attempts=3)

    def test_not_requiring_connected(self):
        topo = random_topology(
            80, 0.5, seed=0, require_connected=False, max_attempts=1
        )
        assert topo.n == 80  # accepted on first draw

    def test_empirical_calibration_close(self):
        topo = random_topology(80, 6.0, seed=11, calibration="empirical")
        assert 4.5 <= topo.realized_degree() <= 7.5


class TestCalibrateRadius:
    def test_hits_target(self):
        rng = np.random.default_rng(0)
        r = calibrate_radius(80, 6.0, rng=rng, samples=4, tol=0.05)
        # verify on fresh samples
        degs = []
        for s in range(4):
            topo = random_topology(
                80, 6.0, seed=s, radius=r, require_connected=False, max_attempts=1
            )
            degs.append(topo.realized_degree())
        assert abs(sum(degs) / len(degs) - 6.0) < 1.2

    def test_unreachable_degree(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidParameterError):
            calibrate_radius(10, 20.0, rng=rng)


class TestCellBinnedEdges:
    """The spatial-hash edge builder must agree exactly with the dense path."""

    def test_matches_dense_unit_disk(self):
        from repro.net.geometry import random_positions
        from repro.net.graph import Graph

        rng = np.random.default_rng(5)
        for n, degree in ((2, 1.0), (50, 6.0), (400, 10.0)):
            pos = random_positions(n, (100.0, 100.0), rng)
            r = radius_for_degree(max(n, 2), degree)
            dense = unit_disk_graph(pos, r)  # n <= 1024: dense path
            cell = Graph(n, _cell_binned_disk_edges(pos, r))
            assert dense.edges == cell.edges

    def test_large_n_uses_lazy_backend_by_default(self):
        topo = random_topology(1500, degree=12.0, seed=3)
        assert topo.graph.distance_backend == "lazy"
        assert not topo.graph.dense_materialized

    def test_zero_radius_matches_dense_path(self):
        # Coincident points are within range 0 of each other on both paths.
        pos = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        dense = unit_disk_graph(pos, 0.0)
        assert set(_cell_binned_disk_edges(pos, 0.0)) == set(dense.edges) == {(0, 1)}

    def test_negative_radius_no_edges(self):
        assert _cell_binned_disk_edges(np.zeros((3, 2)), -1.0) == []
