"""Tests for the cumulative churn simulation."""

import pytest

from repro.errors import InvalidParameterError
from repro.maintenance.churn import simulate_churn, simulate_churn_rebuild
from repro.net.generators import grid_graph
from repro.net.topology import random_topology


class TestSimulateChurn:
    def test_absorbs_failures_on_dense_graph(self):
        g = grid_graph(7, 7)
        report = simulate_churn(g, 2, failures=6, seed=1)
        assert len(report.outcomes) <= 6
        if report.stopped_at is None:
            assert report.survivors_backbone is not None
            assert sum(report.actions.values()) == 6

    def test_roles_and_actions_tally(self):
        topo = random_topology(80, 10.0, seed=2)
        report = simulate_churn(topo.graph, 2, failures=8, seed=3)
        assert sum(report.roles.values()) == len(report.outcomes)
        assert sum(report.actions.values()) == len(report.outcomes)

    def test_mean_locality_mostly_high(self):
        topo = random_topology(80, 10.0, seed=5)
        report = simulate_churn(topo.graph, 2, failures=10, seed=7)
        if report.outcomes and report.stopped_at is None:
            assert report.mean_locality > 0.3

    def test_recluster_rate_bounded(self):
        topo = random_topology(100, 10.0, seed=11)
        report = simulate_churn(topo.graph, 2, failures=10, seed=13)
        assert 0.0 <= report.recluster_rate <= 1.0

    def test_stops_on_partition(self):
        from repro.net.generators import two_cliques_bridge

        g = two_cliques_bridge(5, 1)  # node 5 cuts the graph
        report = simulate_churn(g, 1, failures=g.n - 1, seed=0)
        if report.stopped_at is not None:
            assert report.outcomes[-1].partitioned
            assert report.survivors_backbone is None

    def test_invalid_failure_count(self):
        g = grid_graph(3, 3)
        with pytest.raises(InvalidParameterError):
            simulate_churn(g, 1, failures=0, seed=0)
        with pytest.raises(InvalidParameterError):
            simulate_churn(g, 1, failures=9, seed=0)

    def test_deterministic(self):
        g = grid_graph(6, 6)
        a = simulate_churn(g, 1, failures=5, seed=9)
        b = simulate_churn(g, 1, failures=5, seed=9)
        assert [o.failed_node for o in a.outcomes] == [
            o.failed_node for o in b.outcomes
        ]


class TestRebuildBaseline:
    def test_same_failure_order_and_partition_point(self):
        topo = random_topology(80, 10.0, seed=2)
        inc = simulate_churn(topo.graph, 2, failures=8, seed=3)
        reb = simulate_churn_rebuild(topo.graph, 2, failures=8, seed=3)
        assert [o.failed_node for o in inc.outcomes] == [
            o.failed_node for o in reb.outcomes
        ]
        assert inc.stopped_at == reb.stopped_at
        assert all(
            o.action in ("recluster", "partition") for o in reb.outcomes
        )

    def test_final_backbone_dominates_survivors(self):
        topo = random_topology(70, 10.0, seed=8)
        reb = simulate_churn_rebuild(topo.graph, 2, failures=6, seed=4)
        if reb.survivors_backbone is None:
            return  # partitioned: nothing to dominate
        bb = reb.survivors_backbone
        g2 = bb.clustering.graph
        dead = {o.failed_node for o in reb.outcomes}
        assert g2.is_connected_subset(bb.cds)
        for u in g2.nodes():
            if u in dead:
                continue
            assert any(g2.hop_distance(u, h) <= 2 for h in bb.heads)

    def test_invalid_failure_count(self):
        with pytest.raises(InvalidParameterError):
            simulate_churn_rebuild(grid_graph(3, 3), 1, failures=0, seed=0)
