"""Tests for energy-based clusterhead rotation."""

import pytest

from repro.errors import InvalidParameterError
from repro.maintenance.rotation import simulate_rotation
from repro.net.energy import EnergyParams
from repro.net.generators import grid_graph


class TestRotation:
    def test_static_scheme_keeps_same_heads(self):
        g = grid_graph(5, 5)
        report = simulate_rotation(g, 2, epochs=5, scheme="static")
        head_sets = {e.heads for e in report.epochs}
        assert len(head_sets) == 1  # lowest-ID on a static graph never moves

    def test_energy_scheme_rotates(self):
        g = grid_graph(5, 5)
        static = simulate_rotation(g, 2, epochs=8, scheme="static")
        energy = simulate_rotation(g, 2, epochs=8, scheme="energy")
        assert energy.distinct_heads > static.distinct_heads

    def test_energy_scheme_balances_min_residual(self):
        g = grid_graph(5, 5)
        params = EnergyParams(initial=100.0, idle_member=0.01, idle_backbone=0.5)
        static = simulate_rotation(
            g, 2, epochs=10, scheme="static", params=params
        )
        energy = simulate_rotation(
            g, 2, epochs=10, scheme="energy", params=params
        )
        assert energy.final_min_residual > static.final_min_residual

    def test_epoch_records(self):
        g = grid_graph(4, 4)
        report = simulate_rotation(g, 1, epochs=3)
        assert len(report.epochs) == 3
        assert report.epochs[0].min_residual >= report.epochs[-1].min_residual
        assert all(e.cds_size >= len(e.heads) for e in report.epochs)

    def test_invalid_params(self):
        g = grid_graph(3, 3)
        with pytest.raises(InvalidParameterError):
            simulate_rotation(g, 1, epochs=0)
        with pytest.raises(InvalidParameterError):
            simulate_rotation(g, 1, epochs=1, scheme="psychic")

    def test_head_service_counter(self):
        g = grid_graph(4, 4)
        report = simulate_rotation(g, 2, epochs=4, scheme="static")
        assert sum(report.head_service.values()) == sum(
            len(e.heads) for e in report.epochs
        )
