"""Tests for the mobility-stability experiment."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.maintenance.stability import simulate_stability
from repro.net.topology import random_topology


class TestSimulateStability:
    def test_zero_speed_zero_churn(self):
        topo = random_topology(60, 8.0, seed=1)
        report = simulate_stability(topo, 2, steps=3, speed=(0.0, 0.0), seed=0)
        assert len(report.steps) == 3
        for s in report.steps:
            assert s.head_churn == 0.0
            assert s.membership_churn == 0.0
            assert s.backbone_jaccard_distance == 0.0
            assert s.edges_changed == 0

    def test_movement_produces_churn(self):
        topo = random_topology(60, 10.0, seed=2)
        report = simulate_stability(topo, 2, steps=10, speed=(2.0, 4.0), seed=3)
        # at these speeds some snapshots must change
        assert report.skipped_disconnected + len(report.steps) == 10
        if report.steps:
            assert any(s.edges_changed > 0 for s in report.steps)

    def test_metrics_bounded(self):
        topo = random_topology(50, 10.0, seed=5)
        report = simulate_stability(topo, 1, steps=8, speed=(1.0, 2.0), seed=7)
        for s in report.steps:
            assert 0.0 <= s.head_churn <= 1.0
            assert 0.0 <= s.membership_churn <= 1.0
            assert 0.0 <= s.backbone_jaccard_distance <= 1.0
            assert 0.0 <= s.affected_nodes <= 1.0

    def test_mean_helper(self):
        topo = random_topology(50, 10.0, seed=5)
        report = simulate_stability(topo, 1, steps=5, speed=(1.0, 2.0), seed=7)
        if report.steps:
            m = report.mean("membership_churn")
            assert 0.0 <= m <= 1.0

    def test_invalid_steps(self):
        topo = random_topology(30, 8.0, seed=0)
        with pytest.raises(InvalidParameterError):
            simulate_stability(topo, 1, steps=0)

    def test_affected_nodes_grow_with_k(self):
        """§1's argument: larger k means topology changes touch more nodes."""
        topo = random_topology(80, 10.0, seed=11)
        small = simulate_stability(topo, 1, steps=12, speed=(1.0, 2.0), seed=13)
        large = simulate_stability(topo, 3, steps=12, speed=(1.0, 2.0), seed=13)
        if small.steps and large.steps:
            assert large.mean("affected_nodes") >= small.mean("affected_nodes")


class TestAssignmentSurvival:
    def test_assignment_survived_reported_per_step(self, topo100):
        from repro.maintenance.stability import simulate_stability

        report = simulate_stability(topo100, 2, steps=6, seed=3)
        assert report.steps  # at least one connected transition
        for s in report.steps:
            assert isinstance(s.assignment_survived, (bool, np.bool_))
        # The mean is a survival *rate* in [0, 1].
        rate = report.mean("assignment_survived")
        assert 0.0 <= rate <= 1.0

    def test_still_valid_on_unchanged_graph(self, topo100):
        from repro.core.clustering import khop_cluster
        from repro.maintenance.repair import clustering_still_valid

        cl = khop_cluster(topo100.graph, 2)
        assert clustering_still_valid(cl, topo100.graph)
