"""Tests for §3.3 failure repair."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.errors import InvalidParameterError
from repro.maintenance.repair import failure_role, repair
from repro.net.generators import grid_graph, path_graph, two_cliques_bridge
from repro.net.graph import Graph

from ..conftest import connected_graphs


def backbone_for(g, k=1, alg="AC-LMST"):
    return build_backbone(khop_cluster(g, k), alg)


class TestFailureRole:
    def test_roles_partition_nodes(self):
        res = backbone_for(grid_graph(5, 5), k=1)
        roles = {failure_role(res, u) for u in res.clustering.graph.nodes()}
        assert roles <= {"head", "gateway", "member"}
        assert failure_role(res, res.heads[0]) == "head"


class TestRepairLadder:
    def test_member_failure_no_action(self):
        g = grid_graph(5, 5)
        res = backbone_for(g, k=1)
        member = next(
            u
            for u in g.nodes()
            if failure_role(res, u) == "member" and g.without_nodes([u]).is_connected_subset(
                [v for v in g.nodes() if v != u]
            )
        )
        out = repair(res, member)
        if not out.partitioned and not out.escalated:
            assert out.role == "member"
            assert out.action == "none"
            assert out.scope_heads == frozenset()
            assert out.locality == 1.0

    def test_gateway_failure_local_fix(self):
        g = grid_graph(6, 6)
        res = backbone_for(g, k=2)
        gateways = sorted(res.gateways)
        assert gateways
        out = repair(res, gateways[0])
        assert out.role == "gateway"
        if not out.partitioned and out.action == "gateway-reselect":
            assert out.scope_heads  # some heads re-ran selection
            assert out.backbone is not None

    def test_head_failure_reclusters(self):
        g = grid_graph(6, 6)
        res = backbone_for(g, k=2)
        head = res.heads[-1]
        out = repair(res, head)
        assert out.role == "head"
        if not out.partitioned:
            assert out.action == "recluster"
            assert not out.escalated
            assert out.backbone is not None
            assert head not in out.backbone.heads

    def test_partition_detected(self):
        # the middle bridge node disconnects the two cliques
        g = two_cliques_bridge(4, 1)  # bridge node 4 is a cut vertex
        res = backbone_for(g, k=1)
        out = repair(res, 4)
        assert out.partitioned
        assert out.backbone is None
        assert out.locality == 0.0

    def test_bad_node_rejected(self):
        res = backbone_for(path_graph(6))
        with pytest.raises(InvalidParameterError):
            repair(res, 17)

    def test_member_failure_splices_existing_backbone(self):
        # §3.3: a member failure leaves the CDS untouched — the repaired
        # backbone must carry the *same* links and gateways, not a rebuild.
        g = grid_graph(5, 5)
        res = backbone_for(g, k=1)
        for u in g.nodes():
            if failure_role(res, u) != "member":
                continue
            out = repair(res, u)
            if out.action == "none":
                assert out.backbone.selected_links == res.selected_links
                assert out.backbone.gateways == res.gateways
                assert out.backbone.cds == res.cds
                break
        else:  # pragma: no cover - grid always has an absorbable member
            pytest.fail("no member failure with action 'none' found")

    def test_partition_outcome_skips_reduced_graph(self, monkeypatch):
        # Satellite: the reduced graph is built lazily — a failure that
        # partitions the network must return before constructing it.
        g = two_cliques_bridge(4, 1)
        res = backbone_for(g, k=1)

        def boom(self, removed):
            raise AssertionError("reduced graph built for a partition outcome")

        monkeypatch.setattr(Graph, "without_nodes", boom)
        out = repair(res, 4)
        assert out.partitioned and out.backbone is None

    def test_cut_member_escalates_or_partitions(self):
        # path: every interior node is a cut vertex
        g = path_graph(9)
        res = backbone_for(g, k=2)
        for u in range(1, 8):
            out = repair(res, u)
            assert out.partitioned  # removing interior path node splits G

    @given(connected_graphs(min_n=4, max_n=14), st.integers(1, 2), st.data())
    @settings(max_examples=40, deadline=None)
    def test_repair_always_yields_valid_backbone_or_partition(self, g, k, data):
        res = backbone_for(g, k=k)
        node = data.draw(st.integers(0, g.n - 1))
        out = repair(res, node)
        if out.partitioned:
            assert out.backbone is None
        else:
            bb = out.backbone
            assert bb is not None
            # survivors are k-hop dominated and the CDS is connected
            g2 = bb.clustering.graph
            assert g2.is_connected_subset(bb.cds)
            for u in g2.nodes():
                if u == node:
                    continue
                assert any(
                    g2.hop_distance(u, h) <= k for h in bb.heads
                )
            assert node not in bb.cds


class TestSurvivorsConnected:
    """The vectorized CSR reachability pass vs a reference Python sweep."""

    @staticmethod
    def _reference(graph, gone):
        survivors = [u for u in graph.nodes() if u not in gone]
        if len(survivors) <= 1:
            return True
        root = survivors[0]
        seen = {root}
        stack = [root]
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                if y not in gone and y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == len(survivors)

    @given(connected_graphs(min_n=2), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_sweep(self, g, data):
        from repro.maintenance.repair import _survivors_connected

        gone = set(
            data.draw(
                st.lists(
                    st.integers(0, g.n - 1), max_size=g.n - 1, unique=True
                )
            )
        )
        assert _survivors_connected(g, gone) == self._reference(g, gone)

    def test_bridge_removal_partitions(self):
        from repro.maintenance.repair import _survivors_connected

        g = two_cliques_bridge(4, 2)  # cliques joined by the path 0-4-5-6
        assert _survivors_connected(g, set()) is True
        assert _survivors_connected(g, {4}) is False
        assert _survivors_connected(g, {5}) is False

    def test_all_but_one_gone(self):
        from repro.maintenance.repair import _survivors_connected

        g = path_graph(5)
        assert _survivors_connected(g, {0, 1, 2, 3}) is True
        assert _survivors_connected(g, set(range(5))) is True


class TestGatewaySplice:
    """The gateway splice must be routing-indistinguishable from a rebuild."""

    def test_spliced_walks_match_rebuild(self):
        import numpy as np

        from repro.maintenance.repair import (
            _seeded_path_oracle,
            _strip_nodes,
        )
        from repro.net.topology import random_topology
        from repro.traffic.router import BatchRouter
        from repro.traffic.workloads import uniform_pairs

        topo = random_topology(100, degree=7.0, seed=3)
        g = topo.graph
        res = backbone_for(g, k=2)
        node = next(
            gw
            for gw in sorted(res.gateways)
            if repair(res, gw).spliced
        )
        out = repair(res, node)
        assert out.spliced and out.action == "gateway-reselect"
        assert out.backbone is not None

        # The comparator is the ladder's own fallback: a full pipeline
        # rebuild on the stripped clustering with the seeded oracle.
        gone = {node}
        graph2 = g.without_nodes([node])
        surviving = _strip_nodes(res.clustering, graph2, gone)
        rebuilt = build_backbone(
            surviving,
            res.algorithm,
            oracle=_seeded_path_oracle(graph2, res, gone),
        )

        alive = np.ones(g.n, dtype=bool)
        alive[node] = False
        wl = uniform_pairs(g.n, 300, seed=17).restrict(alive)
        assert wl.sources.size > 0
        spliced_walks = BatchRouter(out.backbone).route_flows(wl).walks
        rebuilt_walks = BatchRouter(rebuilt).route_flows(wl).walks
        assert spliced_walks == rebuilt_walks

    def test_inherited_router_walks_match_rebuild(self):
        # The lifetime loop's gateway rung: after a spliced repair the
        # new router inherits with an *empty* changed-heads mask (the
        # splice certifies link set + weights unchanged), must actually
        # carry head-graph state across, and still route identically to
        # a from-scratch router on a full pipeline rebuild.
        import numpy as np

        from repro.maintenance.repair import (
            _seeded_path_oracle,
            _strip_nodes,
        )
        from repro.net.topology import random_topology
        from repro.traffic.router import BatchRouter
        from repro.traffic.workloads import uniform_pairs

        topo = random_topology(100, degree=7.0, seed=3)
        g = topo.graph
        res = backbone_for(g, k=2)
        node = next(
            gw for gw in sorted(res.gateways) if repair(res, gw).spliced
        )
        alive = np.ones(g.n, dtype=bool)
        alive[node] = False
        wl = uniform_pairs(g.n, 300, seed=19).restrict(alive)

        old_router = BatchRouter(res)
        old_router.route_flows(wl)  # warm the caches worth inheriting
        out = repair(res, node)
        assert out.spliced

        router = BatchRouter(out.backbone)
        stats = router.inherit_from(old_router, node, frozenset())
        assert stats["trees"] > 0  # the mask no longer discards them

        gone = {node}
        graph2 = g.without_nodes([node])
        rebuilt = build_backbone(
            _strip_nodes(res.clustering, graph2, gone),
            res.algorithm,
            oracle=_seeded_path_oracle(graph2, res, gone),
        )
        assert router.route_flows(wl).walks == (
            BatchRouter(rebuilt).route_flows(wl).walks
        )

    def test_splice_preserves_link_weights(self):
        from repro.net.topology import random_topology

        topo = random_topology(100, degree=7.0, seed=5)
        res = backbone_for(topo.graph, k=2)
        node = next(
            gw
            for gw in sorted(res.gateways)
            if repair(res, gw).spliced
        )
        out = repair(res, node)
        old = {
            (link.u, link.v): link.weight
            for link in res.virtual_graph.links()
        }
        for link in out.backbone.virtual_graph.links():
            assert old[(link.u, link.v)] == link.weight


class TestPartitionBoundary:
    def test_ensure_survivors_connected_passes_when_whole(self):
        from repro.maintenance.repair import ensure_survivors_connected

        ensure_survivors_connected(two_cliques_bridge(4, 2), set())

    def test_partition_error_carries_components(self):
        from repro.errors import PartitionError
        from repro.maintenance.repair import ensure_survivors_connected

        g = path_graph(5)
        with pytest.raises(PartitionError) as exc:
            ensure_survivors_connected(g, {2})
        comps = exc.value.components
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}),
            frozenset({3, 4}),
        }
        # Largest first is part of the contract.
        assert all(
            len(comps[i]) >= len(comps[i + 1])
            for i in range(len(comps) - 1)
        )


class TestDegradedRepair:
    def bridge_backbone(self, alg="AC-LMST"):
        return backbone_for(two_cliques_bridge(6, 3), k=1, alg=alg)

    def test_partition_falls_back_to_component_local(self):
        from repro.maintenance.repair import degraded_repair

        res = self.bridge_backbone()
        out = degraded_repair(res, 7)  # middle bridge node
        assert out.partitioned and out.degraded
        assert out.action == "degraded"
        assert out.backbone is not None
        assert {frozenset(c) for c in out.components} == {
            frozenset(range(0, 7)),
            frozenset(range(8, 15)),
        }

    def test_degraded_backbone_routes_within_components(self):
        import numpy as np

        from repro.maintenance.repair import degraded_repair
        from repro.traffic.router import BatchRouter
        from repro.traffic.workloads import Workload

        res = self.bridge_backbone()
        out = degraded_repair(res, 7)
        # One flow inside each surviving clique routes fine.
        wl = Workload(
            name="manual",
            n=15,
            sources=np.asarray([1, 9]),
            targets=np.asarray([5, 14]),
            demands=np.asarray([1, 1]),
        )
        routed = BatchRouter(out.backbone).route_flows(wl)
        assert routed.num_flows == 2
        assert all(len(w) >= 2 for w in routed.walks)

    def test_gmst_rejected(self):
        from repro.maintenance.repair import degraded_repair

        res = self.bridge_backbone(alg="G-MST")
        with pytest.raises(InvalidParameterError):
            degraded_repair(res, 7)

    def test_connected_failure_passes_through(self):
        from repro.maintenance.repair import degraded_repair

        res = self.bridge_backbone()
        out = degraded_repair(res, 3)  # clique member, no partition
        assert not out.partitioned and not out.degraded
        assert out.action != "degraded"
