"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at the
boundary of their application code.

This module also hosts :class:`Diagnostic` and :class:`LintError`, the
shared currency of the :mod:`repro.lint` static-analysis suite: the CLI
(``repro-khop lint``), the pytest self-check and any editor integration
all format findings through the same ``file:line: CODE message`` scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DisconnectedGraphError",
    "PartitionError",
    "CalibrationError",
    "ValidationError",
    "RepairError",
    "ProtocolError",
    "Diagnostic",
    "LintError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its documented domain.

    Examples: a negative node count, ``k < 1`` for k-hop clustering, or an
    unknown algorithm name passed to the pipeline registry.
    """


class DisconnectedGraphError(ReproError):
    """An operation that requires a connected graph received a disconnected one.

    The paper's algorithms (Theorem 1 and 2) assume the underlying ad hoc
    network ``G`` is connected; clustering a disconnected graph would produce
    a backbone that cannot be connected by any gateway selection.
    """


class PartitionError(DisconnectedGraphError):
    """A structural change split the surviving network into components.

    The fault-tolerant loops (churn, lifetime, chaos) raise or catch this
    to distinguish an *expected environmental condition* — no single
    backbone can span a partitioned network — from an actual defect in
    the repair machinery (:class:`RepairError`).  Callers that can keep
    going should catch it and fall back to component-local (degraded)
    routing; callers that cannot should let it propagate.

    Attributes:
        components: the surviving connected components (node tuples),
            when the raiser knows them; empty tuple otherwise.
    """

    def __init__(
        self,
        message: str,
        components: tuple[tuple[int, ...], ...] = (),
    ) -> None:
        super().__init__(message)
        self.components = components


class CalibrationError(ReproError):
    """Topology generation failed to hit the requested target.

    Raised when the random-topology generator exhausts its retry budget
    without producing a connected unit-disk graph, or when empirical radius
    calibration cannot bracket the requested average degree.
    """


class ValidationError(ReproError):
    """A structural invariant documented by the paper does not hold.

    Raised by :mod:`repro.core.validate` and :mod:`repro.cds.verify` when a
    produced clustering or backbone violates the k-hop dominating-set,
    independent-set, or connectivity properties.
    """


class RepairError(ValidationError):
    """The §3.3 repair ladder failed on a *connected* survivor graph.

    Unlike :class:`PartitionError` (an expected consequence of the fault
    environment) this always indicates a bug: the final re-clustering
    rung is supposed to absorb any failure that leaves the survivors
    connected, so a verification failure there means the repair machinery
    itself produced an invalid backbone.  Subclasses
    :class:`ValidationError` so existing catch-all maintenance callers
    keep working while new callers can tell the two conditions apart.
    """


class ProtocolError(ReproError):
    """A distributed protocol on the round simulator reached a bad state.

    Examples: a message delivered to a dead node, a protocol that failed to
    converge within its round budget, or inconsistent local views.
    """


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding, sortable into report order.

    The field order (path, line, code) *is* the sort order, so a list of
    diagnostics sorts into the conventional compiler-output layout.

    Attributes:
        path: file path, relative to the linted tree's root.
        line: 1-based line number of the offending construct.
        code: stable rule code (``R001`` .. ``R008``).
        message: human-readable description of the violation.
    """

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class LintError(ReproError):
    """Raised at an API boundary when a lint run produced findings.

    ``repro-khop lint`` and the pytest self-check both render the carried
    diagnostics through :meth:`report`, so the terminal and the test
    failure show byte-identical output.
    """

    diagnostics: tuple[Diagnostic, ...] = field(default=())

    def report(self) -> str:
        lines = [str(d) for d in sorted(self.diagnostics)]
        lines.append(
            f"repro-lint: {len(self.diagnostics)} finding"
            f"{'s' if len(self.diagnostics) != 1 else ''}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.report()
