"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at the
boundary of their application code.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DisconnectedGraphError",
    "CalibrationError",
    "ValidationError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its documented domain.

    Examples: a negative node count, ``k < 1`` for k-hop clustering, or an
    unknown algorithm name passed to the pipeline registry.
    """


class DisconnectedGraphError(ReproError):
    """An operation that requires a connected graph received a disconnected one.

    The paper's algorithms (Theorem 1 and 2) assume the underlying ad hoc
    network ``G`` is connected; clustering a disconnected graph would produce
    a backbone that cannot be connected by any gateway selection.
    """


class CalibrationError(ReproError):
    """Topology generation failed to hit the requested target.

    Raised when the random-topology generator exhausts its retry budget
    without producing a connected unit-disk graph, or when empirical radius
    calibration cannot bracket the requested average degree.
    """


class ValidationError(ReproError):
    """A structural invariant documented by the paper does not hold.

    Raised by :mod:`repro.core.validate` and :mod:`repro.cds.verify` when a
    produced clustering or backbone violates the k-hop dominating-set,
    independent-set, or connectivity properties.
    """


class ProtocolError(ReproError):
    """A distributed protocol on the round simulator reached a bad state.

    Examples: a message delivered to a dead node, a protocol that failed to
    converge within its round budget, or inconsistent local views.
    """
