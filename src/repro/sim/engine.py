"""Synchronous round-based message-passing engine (ideal MAC).

The paper's simulation assumes "an ideal MAC layer protocol" — no
collisions, no losses.  The engine realizes that model:

* time advances in rounds;
* during a round every node may queue payloads; each queued payload is one
  radio *transmission* (a local broadcast);
* at the start of the next round every alive neighbor of the sender
  receives the payload (one *reception* per neighbor);
* nodes process their whole inbox at once (synchronous BFS semantics: all
  shortest-path copies of a flood arrive in the same round, which is what
  makes min-ID predecessor selection deterministic).

The engine stops at *quiescence*: a round in which no node transmitted and
every node reports ``idle()``.  A ``max_rounds`` budget guards against
non-terminating protocols (:class:`~repro.errors.ProtocolError`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ProtocolError
from ..net.graph import Graph
from ..types import NodeId
from .node import ProtocolNode

__all__ = ["MessageStats", "Engine"]


@dataclass
class MessageStats:
    """Transmission/reception accounting for one protocol execution.

    Attributes:
        transmissions: number of radio broadcasts performed.
        receptions: number of (node, payload) deliveries.
        per_kind: transmissions by payload class name — the breakdown used
            by the communication-overhead benchmark (paper §5 future work).
        rounds: rounds executed until quiescence.
    """

    transmissions: int = 0
    receptions: int = 0
    per_kind: Counter = field(default_factory=Counter)
    rounds: int = 0

    def merge(self, other: "MessageStats") -> "MessageStats":
        """Combine stats from sequentially executed protocols."""
        out = MessageStats(
            transmissions=self.transmissions + other.transmissions,
            receptions=self.receptions + other.receptions,
            per_kind=self.per_kind + other.per_kind,
            rounds=self.rounds + other.rounds,
        )
        return out


class Engine:
    """Drives a set of :class:`ProtocolNode` instances over a graph.

    Args:
        graph: the radio connectivity graph.
        nodes: one protocol node per graph node, indexed by ID.
        alive: optional subset of node IDs that participate (dead nodes
            neither send nor receive); defaults to all.
    """

    def __init__(
        self,
        graph: Graph,
        nodes: Sequence[ProtocolNode],
        *,
        alive: Iterable[NodeId] | None = None,
    ) -> None:
        if len(nodes) != graph.n:
            raise ProtocolError(
                f"need one protocol node per graph node: {len(nodes)} != {graph.n}"
            )
        for u, node in enumerate(nodes):
            if node.node_id != u:
                raise ProtocolError(f"node at index {u} has id {node.node_id}")
        self.graph = graph
        self.nodes: List[ProtocolNode] = list(nodes)
        self.alive = set(graph.nodes()) if alive is None else set(alive)
        self.stats = MessageStats()
        self._round = 0

    @property
    def round(self) -> int:
        """Rounds executed so far."""
        return self._round

    def run(self, max_rounds: int = 10_000) -> MessageStats:
        """Execute until quiescence; returns the accumulated stats.

        Raises:
            ProtocolError: if the protocol does not quiesce in
                ``max_rounds`` rounds.
        """
        for node in self.nodes:
            if node.node_id in self.alive:
                node.start()
        inflight: Dict[NodeId, List[Tuple[NodeId, object]]] = {}
        while True:
            if self._round >= max_rounds:
                raise ProtocolError(
                    f"protocol did not quiesce within {max_rounds} rounds"
                )
            # --- collect this round's transmissions -----------------------
            sent_any = False
            next_inflight: Dict[NodeId, List[Tuple[NodeId, object]]] = {}
            for node in self.nodes:
                u = node.node_id
                if u not in self.alive:
                    node.outbox.clear()
                    continue
                for payload in node.outbox:
                    sent_any = True
                    self.stats.transmissions += 1
                    self.stats.per_kind[type(payload).__name__] += 1
                    for v in self.graph.neighbors(u):
                        if v in self.alive:
                            next_inflight.setdefault(v, []).append((u, payload))
                            self.stats.receptions += 1
                node.outbox.clear()
            inflight = next_inflight

            # --- quiescence check -----------------------------------------
            if not sent_any and not inflight:
                if all(
                    self.nodes[u].idle() for u in self.alive
                ):
                    break

            # --- deliver and step -----------------------------------------
            self._round += 1
            self.stats.rounds = self._round
            for node in self.nodes:
                u = node.node_id
                if u not in self.alive:
                    continue
                node.on_round(self._round, inflight.get(u, ()))
        return self.stats
