"""One-call distributed execution of the paper's full localized pipeline.

:func:`run_distributed_pipeline` chains the three protocols —
clustering -> (adjacency detection, AC variants only) -> gateway selection —
on the synchronous round engine and returns a
:class:`DistributedRunResult` with the elected heads, member assignment,
gateway set, selected virtual links and the merged message statistics.

The integration tests assert that these distributed results are *identical*
to the centralized reference pipelines (same heads, members, neighbor sets,
links and gateways), which is the strongest form of the paper's claim that
the algorithms are localized: every decision really is computable from
(2k+1)-hop information plus scoped message exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.priorities import PriorityScheme, resolve_priority
from ..errors import InvalidParameterError
from ..net.graph import Graph
from ..types import Edge, NodeId
from .engine import MessageStats
from .protocols.adjacency import run_distributed_adjacency
from .protocols.clustering import run_distributed_clustering
from .protocols.gateway import run_distributed_gateway

__all__ = ["DistributedRunResult", "run_distributed_pipeline"]

#: algorithm name -> (uses A-NCR adjacency?, gateway engine)
_ALGS = {
    "NC-Mesh": (False, "mesh"),
    "AC-Mesh": (True, "mesh"),
    "NC-LMST": (False, "lmst"),
    "AC-LMST": (True, "lmst"),
}


@dataclass(frozen=True)
class DistributedRunResult:
    """Everything a distributed pipeline execution produced.

    Attributes:
        algorithm: which of the four localized algorithms ran.
        k: cluster radius.
        head_of: per-node head assignment from the clustering protocol.
        heads: sorted clusterhead IDs.
        adjacent_sets: per-head A-NCR sets (None for NC variants).
        selected_links: virtual links realized by gateway marking.
        gateways: nodes that marked themselves gateway.
        stats: merged message statistics across all protocol phases.
        stats_by_phase: per-phase statistics (clustering / adjacency /
            gateway), for the communication-overhead experiments.
    """

    algorithm: str
    k: int
    head_of: tuple[NodeId, ...]
    heads: tuple[NodeId, ...]
    adjacent_sets: "dict[NodeId, frozenset[NodeId]] | None"
    selected_links: frozenset[Edge]
    gateways: frozenset[NodeId]
    stats: MessageStats
    stats_by_phase: dict

    @property
    def cds(self) -> frozenset[NodeId]:
        """Heads plus gateways."""
        return frozenset(self.heads) | self.gateways


def run_distributed_pipeline(
    graph: Graph,
    k: int,
    algorithm: str = "AC-LMST",
    *,
    priority: "PriorityScheme | str | None" = None,
    membership: str = "id-based",
    max_rounds: int = 100_000,
) -> DistributedRunResult:
    """Run clustering + neighbor selection + gateway marking, distributed.

    Args:
        graph: connected network graph.
        k: cluster radius (>= 1).
        algorithm: one of NC-Mesh, AC-Mesh, NC-LMST, AC-LMST (G-MST is
            centralized by definition and has no distributed form).
        priority: clusterhead priority scheme (default lowest-ID).
        membership: ``"id-based"`` or ``"distance-based"``.
        max_rounds: per-protocol round budget.
    """
    try:
        use_adjacency, gateway_alg = _ALGS[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown distributed algorithm {algorithm!r}; known: {sorted(_ALGS)}"
        ) from None
    keys = resolve_priority(priority).keys(graph)

    cl_nodes, cl_stats = run_distributed_clustering(
        graph, k, keys=keys, membership=membership, max_rounds=max_rounds
    )
    head_of = tuple(
        n.head if n.head is not None else n.node_id for n in cl_nodes
    )
    heads = tuple(sorted(u for u in graph.nodes() if head_of[u] == u))
    phases = {"clustering": cl_stats}

    adjacent_sets = None
    if use_adjacency:
        adj_nodes, adj_stats = run_distributed_adjacency(
            graph, cl_nodes, max_rounds=max_rounds
        )
        adjacent_sets = {
            n.node_id: frozenset(n.adjacent_heads)
            for n in adj_nodes
            if n.is_head
        }
        phases["adjacency"] = adj_stats

    gw_nodes, gw_stats = run_distributed_gateway(
        graph,
        k,
        head_of,
        gateway_alg=gateway_alg,
        adjacent_sets=adjacent_sets,
        max_rounds=max_rounds,
    )
    phases["gateway"] = gw_stats

    gateways = frozenset(n.node_id for n in gw_nodes if n.is_gateway)
    links: set[Edge] = set()
    for n in gw_nodes:
        links.update(n.selected_links)

    total = MessageStats()
    for s in phases.values():
        total = total.merge(s)
    return DistributedRunResult(
        algorithm=algorithm,
        k=k,
        head_of=head_of,
        heads=heads,
        adjacent_sets=adjacent_sets,
        selected_links=frozenset(links),
        gateways=gateways,
        stats=total,
        stats_by_phase=phases,
    )
