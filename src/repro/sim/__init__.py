"""Round-based distributed simulator and the paper's localized protocols.

The engine models the paper's "ideal MAC layer" assumption: synchronous
rounds, loss-free local broadcast, per-message transmission/reception
accounting.  The protocols in :mod:`repro.sim.protocols` realize k-hop
clustering, A-NCR adjacency detection and NC/AC x Mesh/LMST gateway
selection with scoped floods only — and are tested to produce *identical*
results to the centralized reference implementations in :mod:`repro.core`.
"""

from .engine import Engine, MessageStats
from .node import ProtocolNode
from .runner import DistributedRunResult, run_distributed_pipeline

__all__ = [
    "Engine",
    "MessageStats",
    "ProtocolNode",
    "DistributedRunResult",
    "run_distributed_pipeline",
]
