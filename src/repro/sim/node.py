"""Base class for protocol nodes running on the round engine.

A protocol node sees only what a real host would: its own ID, whatever
messages arrive from 1-hop neighbors, and the round counter.  It has no
access to the global graph — the distributed/centralized equivalence tests
rely on that boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..types import NodeId

__all__ = ["ProtocolNode"]


class ProtocolNode:
    """One host's protocol state machine.

    Subclasses override :meth:`start` (initial transmissions),
    :meth:`on_round` (per-round processing of the inbox) and :meth:`idle`
    (termination vote).  Transmissions are queued by :meth:`send`, one radio
    broadcast per call.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        #: payloads queued for local broadcast at the end of this round.
        self.outbox: List[object] = []

    # -- protocol surface ------------------------------------------------ #

    def start(self) -> None:
        """Called once before round 1; queue initial transmissions here."""

    def on_round(
        self, round_no: int, inbox: Iterable[Tuple[NodeId, object]]
    ) -> None:
        """Process the messages delivered this round (may queue sends)."""

    def idle(self) -> bool:
        """Whether this node is content for the protocol to terminate."""
        return True

    # -- helpers ----------------------------------------------------------#

    def send(self, payload: object) -> None:
        """Queue one local broadcast of ``payload``."""
        self.outbox.append(payload)
