"""Message types exchanged by the distributed protocols.

All payloads are small frozen dataclasses.  A radio transmission is a
*local broadcast*: every 1-hop neighbor of the sender receives the payload
in the next round.  Scoped floods carry a ``ttl`` that is decremented on
each re-broadcast, so a message born with ``ttl = h - 1`` reaches exactly
the ``h``-hop neighborhood of its origin, and a ``hops`` counter that tells
each receiver its distance from the origin (synchronous rounds deliver the
first copy along shortest paths).

Unicast-style messages (:class:`Mark`, :class:`Notify`, :class:`Join`,
:class:`BorderReport`) are physically broadcast too — neighbors overhear
them — but carry a ``target`` field; only the target acts on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..types import NodeId

__all__ = [
    "Hello",
    "NeighborRecord",
    "Candidate",
    "Declare",
    "Join",
    "ClusterHello",
    "BorderReport",
    "HeadAnnounce",
    "HeadInfo",
    "Mark",
    "Notify",
]


@dataclass(frozen=True)
class Hello:
    """1-hop beacon announcing existence (neighborhood discovery)."""

    origin: NodeId


@dataclass(frozen=True)
class NeighborRecord:
    """Neighborhood discovery: a node floods its adjacency list ``h`` hops.

    Collecting these records gives every node the subgraph induced by its
    h-hop ball — the "(2k+1)-hop local information" the paper's localized
    algorithms are allowed to use.
    """

    origin: NodeId
    neighbors: Tuple[NodeId, ...]
    ttl: int


@dataclass(frozen=True)
class Candidate:
    """Clustering phase A: an undecided node floods its priority key k hops."""

    origin: NodeId
    key: tuple
    ttl: int


@dataclass(frozen=True)
class Declare:
    """Clustering phase B: a new clusterhead announces itself k hops."""

    head: NodeId
    ttl: int
    hops: int


@dataclass(frozen=True)
class Join:
    """A member registers with its head, routed up the parent chain."""

    member: NodeId
    head: NodeId
    target: NodeId


@dataclass(frozen=True)
class ClusterHello:
    """Post-clustering beacon carrying the sender's cluster (adjacency scan)."""

    origin: NodeId
    head: NodeId


@dataclass(frozen=True)
class BorderReport:
    """A border node tells its head about an adjacent cluster."""

    reporter: NodeId
    own_head: NodeId
    other_head: NodeId
    target: NodeId


@dataclass(frozen=True)
class HeadAnnounce:
    """Gateway wave 1: heads flood their existence 2k+1 hops.

    Every forwarder remembers its min-ID predecessor, building the
    BFS-parent chains that later realize canonical virtual links.
    """

    origin: NodeId
    ttl: int
    hops: int


@dataclass(frozen=True)
class HeadInfo:
    """Gateway wave 2: heads flood their neighbor set and virtual distances.

    ``neighbors`` maps each neighbor head of ``origin`` to the hop distance
    of the corresponding virtual link (algorithm AC-LMST, line 7).
    """

    origin: NodeId
    neighbors: Tuple[Tuple[NodeId, int], ...]
    ttl: int

    def neighbor_map(self) -> Mapping[NodeId, int]:
        """The neighbor set as a dict (payloads stay hashable)."""
        return dict(self.neighbors)


@dataclass(frozen=True)
class Mark:
    """Gateway wave 3: gateway marking hop, routed toward ``link``'s smaller head.

    Travels the BFS-parent chain toward ``toward`` (= min endpoint); each
    non-head node that forwards it marks itself as a gateway.
    """

    link: Tuple[NodeId, NodeId]
    toward: NodeId
    target: NodeId


@dataclass(frozen=True)
class Notify:
    """Gateway wave 3: the smaller endpoint asks the larger to start marking.

    Needed when only the smaller endpoint of a virtual link selected it in
    its local MST: marking must still run from the larger endpoint so the
    marked path equals the canonical one (oriented from the min-ID head).
    """

    link: Tuple[NodeId, NodeId]
    target: NodeId
