"""Distributed A-NCR: adjacency detection via border reports.

After clustering, adjacency of clusters (Definition 2) is detected exactly
where it is visible — at border nodes:

* round 1 — every node broadcasts :class:`~repro.sim.messages.ClusterHello`
  carrying its cluster membership;
* round 2 — a node that hears a neighbor from another cluster is a *border
  node*; it reports each foreign cluster to its own head with a
  :class:`~repro.sim.messages.BorderReport` routed up the declare-parent
  chain recorded during clustering (at most k hops);
* heads accumulate the reports; the result per head is precisely the
  A-NCR neighbor set (its adjacent clusterheads).

Heads that are themselves border nodes record the adjacency directly.
Intermediate nodes deduplicate (own_head, other_head) pairs so each chain
carries each adjacency at most once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ...errors import ProtocolError
from ...net.graph import Graph
from ...types import NodeId
from ..engine import Engine, MessageStats
from ..messages import BorderReport, ClusterHello
from ..node import ProtocolNode
from .clustering import DistributedClusteringNode

__all__ = ["AdjacencyNode", "run_distributed_adjacency"]


class AdjacencyNode(ProtocolNode):
    """Per-host state machine for adjacency detection."""

    def __init__(
        self,
        node_id: NodeId,
        head: NodeId,
        declare_parent: Dict[NodeId, NodeId],
    ) -> None:
        super().__init__(node_id)
        self.head = head
        self.declare_parent = dict(declare_parent)
        #: adjacent heads discovered (meaningful on heads).
        self.adjacent_heads: set[NodeId] = set()
        #: (own_head, other_head) pairs already forwarded (dedupe).
        self._forwarded: set[tuple[NodeId, NodeId]] = set()
        self._reported: set[NodeId] = set()

    @property
    def is_head(self) -> bool:
        """Whether this node leads its cluster."""
        return self.head == self.node_id

    def start(self) -> None:
        self.send(ClusterHello(origin=self.node_id, head=self.head))

    def on_round(
        self, round_no: int, inbox: Iterable[Tuple[NodeId, object]]
    ) -> None:
        for sender, payload in inbox:
            if isinstance(payload, ClusterHello):
                if payload.head != self.head:
                    self._on_border_detected(payload.head)
            elif isinstance(payload, BorderReport):
                self._on_report(payload)

    def _on_border_detected(self, other_head: NodeId) -> None:
        if other_head in self._reported:
            return
        self._reported.add(other_head)
        if self.is_head:
            self.adjacent_heads.add(other_head)
            return
        parent = self.declare_parent.get(self.head)
        if parent is None:
            raise ProtocolError(
                f"border node {self.node_id} has no parent toward head {self.head}"
            )
        self.send(
            BorderReport(
                reporter=self.node_id,
                own_head=self.head,
                other_head=other_head,
                target=parent,
            )
        )

    def _on_report(self, msg: BorderReport) -> None:
        if msg.target != self.node_id:
            return  # overheard
        if msg.own_head == self.node_id:
            self.adjacent_heads.add(msg.other_head)
            return
        pair = (msg.own_head, msg.other_head)
        if pair in self._forwarded:
            return
        self._forwarded.add(pair)
        parent = self.declare_parent.get(msg.own_head)
        if parent is None:
            raise ProtocolError(
                f"node {self.node_id} cannot route BorderReport toward "
                f"head {msg.own_head}"
            )
        self.send(
            BorderReport(
                reporter=msg.reporter,
                own_head=msg.own_head,
                other_head=msg.other_head,
                target=parent,
            )
        )


def run_distributed_adjacency(
    graph: Graph,
    clustering_nodes: list[DistributedClusteringNode],
    *,
    max_rounds: int = 10_000,
) -> tuple[list[AdjacencyNode], MessageStats]:
    """Run adjacency detection on top of a finished clustering protocol."""
    nodes = [
        AdjacencyNode(
            c.node_id,
            head=c.head if c.head is not None else c.node_id,
            declare_parent=c.declare_parent,
        )
        for c in clustering_nodes
    ]
    engine = Engine(graph, nodes)
    stats = engine.run(max_rounds=max_rounds)
    return nodes, stats
