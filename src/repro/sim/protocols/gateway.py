"""Distributed gateway selection: NC/AC x Mesh/LMST on the round engine.

Three waves, all scoped to 2k+1 hops (the paper's locality bound):

1. **HeadAnnounce** — every clusterhead floods its existence with hop
   counting.  Every node records, per announced head, its min-ID
   predecessor; those BFS-parent chains *are* the canonical virtual links
   (oriented from the smaller head, matching
   :func:`repro.net.paths.canonical_path`).  Heads thereby learn their NC
   neighbor set (all heads within 2k+1 hops) with virtual distances.
2. **HeadInfo** (LMST only) — each head floods its neighbor set ``S`` and
   distances (algorithm AC-LMST line 7); heads then build their local view
   and compute the local MST with the ``(hops, min_id, max_id)`` order.
3. **Mark / Notify** — for each selected virtual link ``(u, v)`` with
   ``u < v``, the *larger* endpoint ``v`` initiates a Mark that walks the
   parent chain toward ``u``; every non-head node on the chain marks itself
   gateway and forwards.  If only ``u`` selected the link (LMST selections
   are asymmetric), ``u`` first routes a Notify to ``v`` along the chain
   toward ``v``, and ``v`` starts the Mark — so the marked nodes are always
   the canonical interior, identical to the centralized pipelines.

The mesh variant skips wave 2: the neighbor relation is symmetric, so both
endpoints already know every link and ``v`` marks immediately.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ...errors import InvalidParameterError, ProtocolError
from ...net.graph import Graph
from ...types import Edge, NodeId, normalize_edge
from ..engine import Engine, MessageStats
from ..messages import HeadAnnounce, HeadInfo, Mark, Notify
from ..node import ProtocolNode

__all__ = ["GatewayNode", "run_distributed_gateway"]


def _kruskal_local(
    nodes: set[NodeId], edges: dict[Edge, int]
) -> set[Edge]:
    """Kruskal over ``(weight, u, v)``-ordered virtual links (local view)."""
    parent = {v: v for v in nodes}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: set[Edge] = set()
    for (a, b), _w in sorted(edges.items(), key=lambda kv: (kv[1], kv[0])):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            chosen.add((a, b))
    return chosen


class GatewayNode(ProtocolNode):
    """Per-host state machine of the distributed gateway protocol."""

    def __init__(
        self,
        node_id: NodeId,
        k: int,
        is_head: bool,
        gateway_alg: str,
        adjacent_set: Optional[frozenset[NodeId]] = None,
    ) -> None:
        super().__init__(node_id)
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if gateway_alg not in ("mesh", "lmst"):
            raise InvalidParameterError(
                f"gateway_alg must be 'mesh' or 'lmst', got {gateway_alg!r}"
            )
        self.k = k
        self.is_head = is_head
        self.gateway_alg = gateway_alg
        #: A-NCR neighbor set (None => NC rule: use announced heads).
        self.adjacent_set = adjacent_set

        #: head -> min-ID predecessor of its announce flood.
        self.announce_parent: Dict[NodeId, NodeId] = {}
        #: head -> hop distance (from announce hop counters).
        self.announce_dist: Dict[NodeId, int] = {}
        #: head -> that head's (neighbor, distance) map (wave 2, heads only).
        self.head_infos: Dict[NodeId, Mapping[NodeId, int]] = {}
        #: True once this (non-head) node marked itself gateway.
        self.is_gateway = False
        #: links this head selected in its local MST / mesh.
        self.selected_links: set[Edge] = set()
        #: links whose Mark this head has already initiated (dedupe).
        self._initiated: set[Edge] = set()
        self._announce_forwarded: set[NodeId] = set()
        self._info_forwarded: set[NodeId] = set()
        self._done_selection = False

        # schedule (see module docstring); wave boundaries in rounds.
        self._t_info = 2 * k + 2
        self._t_select = (2 * k + 2) if gateway_alg == "mesh" else (4 * k + 4)

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self.is_head:
            self.announce_dist[self.node_id] = 0
            self.send(HeadAnnounce(origin=self.node_id, ttl=2 * self.k, hops=1))

    def on_round(
        self, round_no: int, inbox: Iterable[Tuple[NodeId, object]]
    ) -> None:
        # group announces per origin so min-ID parent choice is deterministic
        ann_seen: dict[NodeId, tuple[HeadAnnounce, list[NodeId]]] = {}
        for sender, payload in inbox:
            if isinstance(payload, HeadAnnounce):
                entry = ann_seen.get(payload.origin)
                if entry is None or payload.hops < entry[0].hops:
                    ann_seen[payload.origin] = (payload, [sender])
                elif payload.hops == entry[0].hops:
                    entry[1].append(sender)
            elif isinstance(payload, HeadInfo):
                self._on_head_info(payload)
            elif isinstance(payload, Mark):
                self._on_mark(payload)
            elif isinstance(payload, Notify):
                self._on_notify(payload)

        for origin, (ann, senders) in ann_seen.items():
            if origin in self.announce_parent or origin == self.node_id:
                continue
            self.announce_parent[origin] = min(senders)
            self.announce_dist[origin] = ann.hops
            if ann.ttl > 0 and origin not in self._announce_forwarded:
                self._announce_forwarded.add(origin)
                self.send(
                    HeadAnnounce(origin=origin, ttl=ann.ttl - 1, hops=ann.hops + 1)
                )

        if self.is_head:
            if self.gateway_alg == "lmst" and round_no == self._t_info:
                self._broadcast_info()
            if round_no == self._t_select and not self._done_selection:
                self._select_and_initiate()

    # ------------------------------------------------------------------ #
    # wave 2
    # ------------------------------------------------------------------ #

    def _neighbor_set(self) -> dict[NodeId, int]:
        """My neighbor heads with virtual distances (NC or AC rule)."""
        if self.adjacent_set is None:
            return {
                h: d for h, d in self.announce_dist.items() if h != self.node_id
            }
        out = {}
        for h in self.adjacent_set:
            d = self.announce_dist.get(h)
            if d is None:
                raise ProtocolError(
                    f"head {self.node_id}: adjacent head {h} was never "
                    "announced within 2k+1 hops"
                )
            out[h] = d
        return out

    def _broadcast_info(self) -> None:
        nbrs = self._neighbor_set()
        info = HeadInfo(
            origin=self.node_id,
            neighbors=tuple(sorted(nbrs.items())),
            ttl=2 * self.k,
        )
        self.head_infos[self.node_id] = nbrs
        self.send(info)

    def _on_head_info(self, msg: HeadInfo) -> None:
        if msg.origin == self.node_id or msg.origin in self.head_infos:
            return
        self.head_infos[msg.origin] = msg.neighbor_map()
        if msg.ttl > 0 and msg.origin not in self._info_forwarded:
            self._info_forwarded.add(msg.origin)
            self.send(
                HeadInfo(origin=msg.origin, neighbors=msg.neighbors, ttl=msg.ttl - 1)
            )

    # ------------------------------------------------------------------ #
    # wave 3
    # ------------------------------------------------------------------ #

    def _select_and_initiate(self) -> None:
        self._done_selection = True
        nbrs = self._neighbor_set()
        if not nbrs:
            return
        if self.gateway_alg == "mesh":
            links = {normalize_edge(self.node_id, v) for v in nbrs}
        else:
            links = self._local_mst_links(nbrs)
        self.selected_links = links
        for a, b in sorted(links):
            if self.node_id == b:
                self._initiate_mark((a, b))
            elif self.node_id == a:
                if self.gateway_alg == "mesh":
                    continue  # symmetric knowledge: b marks on its own
                self._route_notify((a, b))

    def _local_mst_links(self, nbrs: dict[NodeId, int]) -> set[Edge]:
        view = {self.node_id, *nbrs}
        edges: dict[Edge, int] = {}
        for v, d in nbrs.items():
            edges[normalize_edge(self.node_id, v)] = d
        for v in list(nbrs):
            info = self.head_infos.get(v)
            if info is None:
                raise ProtocolError(
                    f"head {self.node_id} missing HeadInfo of neighbor {v}"
                )
            for w, d in info.items():
                if w in view and w != v:
                    edges[normalize_edge(v, w)] = d
        mst = _kruskal_local(view, edges)
        return {e for e in mst if self.node_id in e}

    def _initiate_mark(self, link: Edge) -> None:
        if link in self._initiated:
            return
        self._initiated.add(link)
        u = link[0]  # marking always walks toward the smaller endpoint
        parent = self.announce_parent.get(u)
        if parent is None:
            raise ProtocolError(
                f"head {self.node_id} has no parent toward head {u}"
            )
        self.send(Mark(link=link, toward=u, target=parent))

    def _route_notify(self, link: Edge) -> None:
        v = link[1]
        parent = self.announce_parent.get(v)
        if parent is None:
            raise ProtocolError(
                f"head {self.node_id} has no parent toward head {v}"
            )
        self.send(Notify(link=link, target=parent))

    def _on_mark(self, msg: Mark) -> None:
        if msg.target != self.node_id:
            return
        if self.node_id == msg.toward:
            return  # reached the smaller endpoint; path fully marked
        if self.is_head:
            raise ProtocolError(
                f"head {self.node_id} lies on the interior of virtual link "
                f"{msg.link} — shortest paths between heads must not cross heads"
            )
        self.is_gateway = True
        parent = self.announce_parent.get(msg.toward)
        if parent is None:
            raise ProtocolError(
                f"gateway {self.node_id} cannot continue Mark toward {msg.toward}"
            )
        self.send(Mark(link=msg.link, toward=msg.toward, target=parent))

    def _on_notify(self, msg: Notify) -> None:
        if msg.target != self.node_id:
            return
        v = msg.link[1]
        if self.node_id == v:
            if not self.is_head:
                raise ProtocolError(
                    f"Notify for link {msg.link} reached non-head {self.node_id}"
                )
            self._initiate_mark(msg.link)
            return
        parent = self.announce_parent.get(v)
        if parent is None:
            raise ProtocolError(
                f"node {self.node_id} cannot route Notify toward head {v}"
            )
        self.send(Notify(link=msg.link, target=parent))

    def idle(self) -> bool:
        return self._done_selection or not self.is_head


def run_distributed_gateway(
    graph: Graph,
    k: int,
    head_of: Tuple[NodeId, ...],
    *,
    gateway_alg: str = "lmst",
    adjacent_sets: Optional[Mapping[NodeId, frozenset[NodeId]]] = None,
    max_rounds: int = 100_000,
) -> tuple[list[GatewayNode], MessageStats]:
    """Run the gateway protocol over a finished clustering.

    Args:
        graph: connectivity graph.
        k: cluster radius the clustering used.
        head_of: per-node head assignment.
        gateway_alg: ``"mesh"`` or ``"lmst"``.
        adjacent_sets: per-head A-NCR sets (from the adjacency protocol)
            for the AC variants; None selects the NC rule.

    Returns:
        The protocol nodes (gateway flags, selected links) and stats.
    """
    nodes = []
    for u in graph.nodes():
        is_head = head_of[u] == u
        adj = None
        if adjacent_sets is not None and is_head:
            adj = frozenset(adjacent_sets[u])
        nodes.append(GatewayNode(u, k, is_head, gateway_alg, adj))
    engine = Engine(graph, nodes)
    stats = engine.run(max_rounds=max_rounds)
    return nodes, stats
