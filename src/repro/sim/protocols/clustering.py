"""Distributed k-hop clustering protocol (the localized form of §3).

Realizes the paper's iterative clustering with scoped floods on the round
engine.  Time is divided into fixed-length *phases* of ``L = 3k + 2``
rounds; every phase mirrors one round of the centralized algorithm:

====================  ====================================================
phase round (t)       action
====================  ====================================================
t = 1                 undecided nodes flood ``Candidate(key)`` with
                      ``ttl = k - 1`` (reaches the k-hop ball)
t = 2 .. k+1          candidate propagation / collection
t = k+1 (end)         a node holding the minimum key among the candidates
                      it heard (including itself) declares clusterhead and
                      floods ``Declare`` with hop counting
t = k+2 .. 2k+1       declare propagation; every receiver remembers its
                      min-ID *declare parent* per head (the BFS chain used
                      later for Join routing and border reports)
t = 2k+1 (end)        undecided nodes that heard >= 1 declare join a head
                      (ID- or distance-based policy) and send ``Join`` up
                      the declare-parent chain
t = 2k+2 .. 3k+2      join routing toward the heads
====================  ====================================================

Phases repeat until every node is decided; the engine then quiesces.
Equivalence with the centralized :func:`repro.core.clustering.khop_cluster`
(same heads, same membership) is asserted by the integration tests for the
ID-based and distance-based policies.  The size-based policy requires
global size knowledge and is deliberately not offered here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ...errors import InvalidParameterError, ProtocolError
from ...net.graph import Graph
from ...types import NodeId
from ..engine import Engine, MessageStats
from ..messages import Candidate, Declare, Join
from ..node import ProtocolNode

__all__ = ["DistributedClusteringNode", "run_distributed_clustering"]

#: Membership policies implementable from scoped-flood information alone.
_LOCAL_POLICIES = ("id-based", "distance-based")


class DistributedClusteringNode(ProtocolNode):
    """Per-host state machine of the distributed clustering protocol."""

    def __init__(
        self,
        node_id: NodeId,
        k: int,
        key: tuple,
        membership: str = "id-based",
    ) -> None:
        super().__init__(node_id)
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if membership not in _LOCAL_POLICIES:
            raise InvalidParameterError(
                f"distributed clustering supports {_LOCAL_POLICIES}, "
                f"got {membership!r} (size-based needs global size state)"
            )
        self.k = k
        self.key = key
        self.membership = membership
        self.phase_len = 3 * k + 2

        #: my clusterhead once decided (self if I am a head).
        self.head: Optional[NodeId] = None
        #: True once I have declared myself clusterhead.
        self.is_head = False
        #: head -> min-ID neighbor that first relayed that head's Declare.
        self.declare_parent: Dict[NodeId, NodeId] = {}
        #: head -> my hop distance to it (from Declare hop counters).
        self.declare_dist: Dict[NodeId, int] = {}
        #: members that joined me (heads only; from Join routing).
        self.joined_members: set[NodeId] = set()

        # per-phase scratch state
        self._cand_keys: dict[NodeId, tuple] = {}
        self._cand_forwarded: set[NodeId] = set()
        self._declares_this_phase: set[NodeId] = set()
        self._decl_forwarded: set[NodeId] = set()

    # ------------------------------------------------------------------ #

    def _phase_t(self, round_no: int) -> int:
        """Round index within the current phase, 1-based."""
        return ((round_no - 1) % self.phase_len) + 1

    def start(self) -> None:
        # Phase 1 candidate broadcast happens in round 1 (see on_round); we
        # queue it in start() so it is delivered *in* round 1... the engine
        # delivers start() sends at round 1, so instead candidates are sent
        # during round 1 processing and arrive from round 2 on.  Nothing to
        # do here.
        pass

    def on_round(
        self, round_no: int, inbox: Iterable[Tuple[NodeId, object]]
    ) -> None:
        t = self._phase_t(round_no)
        if t == 1:
            self._begin_phase()

        # --- inbox processing (grouped per origin for deterministic BFS) --
        cand_seen: dict[NodeId, Candidate] = {}
        decl_seen: dict[NodeId, tuple[Declare, list[NodeId]]] = {}
        for sender, payload in inbox:
            if isinstance(payload, Candidate):
                prev = cand_seen.get(payload.origin)
                if prev is None or payload.ttl > prev.ttl:
                    cand_seen[payload.origin] = payload
            elif isinstance(payload, Declare):
                entry = decl_seen.get(payload.head)
                if entry is None or payload.hops < entry[0].hops:
                    decl_seen[payload.head] = (payload, [sender])
                elif payload.hops == entry[0].hops:
                    entry[1].append(sender)
            elif isinstance(payload, Join):
                self._handle_join(payload)

        for origin, cand in cand_seen.items():
            if origin not in self._cand_keys:
                self._cand_keys[origin] = cand.key
                if cand.ttl > 0 and origin not in self._cand_forwarded:
                    self._cand_forwarded.add(origin)
                    self.send(Candidate(origin=origin, key=cand.key, ttl=cand.ttl - 1))

        for head, (decl, senders) in decl_seen.items():
            if head in self.declare_parent:
                continue  # already have the shortest-hop copy
            self.declare_parent[head] = min(senders)
            self.declare_dist[head] = decl.hops
            self._declares_this_phase.add(head)
            if decl.ttl > 0 and head not in self._decl_forwarded:
                self._decl_forwarded.add(head)
                self.send(Declare(head=head, ttl=decl.ttl - 1, hops=decl.hops + 1))

        # --- scheduled actions --------------------------------------------
        if t == 1 and self.head is None:
            # Announce candidacy for this phase.
            self._cand_keys[self.node_id] = self.key
            self.send(Candidate(origin=self.node_id, key=self.key, ttl=self.k - 1))

        elif t == self.k + 1 and self.head is None:
            # All candidates of this phase have arrived; elect.
            if self._cand_keys and min(self._cand_keys.values()) == self.key:
                self.head = self.node_id
                self.is_head = True
                self.declare_dist[self.node_id] = 0
                self._declares_this_phase.add(self.node_id)
                self.send(Declare(head=self.node_id, ttl=self.k - 1, hops=1))

        elif t == 2 * self.k + 1 and self.head is None:
            # All declares of this phase have arrived; join.
            cands = sorted(self._declares_this_phase)
            if cands:
                if self.membership == "id-based":
                    chosen = min(cands)
                else:  # distance-based
                    chosen = min(cands, key=lambda h: (self.declare_dist[h], h))
                self.head = chosen
                parent = self.declare_parent[chosen]
                self.send(Join(member=self.node_id, head=chosen, target=parent))

    def _begin_phase(self) -> None:
        self._cand_keys = {}
        self._cand_forwarded = set()
        self._declares_this_phase = set()
        self._decl_forwarded = set()

    def _handle_join(self, msg: Join) -> None:
        if msg.target != self.node_id:
            return  # overheard someone else's unicast
        if msg.head == self.node_id:
            self.joined_members.add(msg.member)
            return
        parent = self.declare_parent.get(msg.head)
        if parent is None:
            raise ProtocolError(
                f"node {self.node_id} asked to route Join toward unknown "
                f"head {msg.head}"
            )
        self.send(Join(member=msg.member, head=msg.head, target=parent))

    def idle(self) -> bool:
        return self.head is not None


def run_distributed_clustering(
    graph: Graph,
    k: int,
    *,
    keys: Optional[list[tuple]] = None,
    membership: str = "id-based",
    max_rounds: int = 100_000,
) -> tuple[list[DistributedClusteringNode], MessageStats]:
    """Run the distributed clustering protocol to completion.

    Args:
        graph: connectivity graph (connected).
        k: cluster radius.
        keys: per-node priority keys (default: lowest-ID keys).
        membership: ``"id-based"`` or ``"distance-based"``.

    Returns:
        The protocol nodes (carrying head assignments, parents, members)
        and the message statistics.
    """
    if keys is None:
        keys = [(u,) for u in graph.nodes()]
    if len(keys) != graph.n:
        raise InvalidParameterError("need one priority key per node")
    nodes = [
        DistributedClusteringNode(u, k, keys[u], membership) for u in graph.nodes()
    ]
    engine = Engine(graph, nodes)
    stats = engine.run(max_rounds=max_rounds)
    for node in nodes:
        if node.head is None:
            raise ProtocolError(f"node {node.node_id} ended the protocol unclustered")
    return nodes, stats
