"""Distributed protocol implementations of the paper's localized algorithms."""

from .adjacency import AdjacencyNode, run_distributed_adjacency
from .clustering import DistributedClusteringNode, run_distributed_clustering
from .discovery import DiscoveryNode, run_discovery
from .gateway import GatewayNode, run_distributed_gateway

__all__ = [
    "DiscoveryNode",
    "run_discovery",
    "DistributedClusteringNode",
    "run_distributed_clustering",
    "AdjacencyNode",
    "run_distributed_adjacency",
    "GatewayNode",
    "run_distributed_gateway",
]
