"""h-hop neighborhood discovery (the information substrate of §3).

Every node floods its adjacency list with TTL ``h - 1`` and collects the
records it hears; afterwards each node knows the subgraph induced by its
h-hop ball.  The paper's localized algorithms are defined over (2k+1)-hop
local information, and the tests use this protocol to confirm that the
local views really contain everything the centralized reference uses.

Protocol timeline (engine rounds):

* round 1 — nodes broadcast :class:`~repro.sim.messages.Hello`;
* round 2 — 1-hop neighbor lists are known; nodes broadcast their
  :class:`~repro.sim.messages.NeighborRecord` with ``ttl = h - 1``;
* rounds 3..h+1 — records propagate (each node forwards each origin once).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ...errors import InvalidParameterError
from ...net.graph import Graph
from ...types import NodeId
from ..engine import Engine, MessageStats
from ..messages import Hello, NeighborRecord
from ..node import ProtocolNode

__all__ = ["DiscoveryNode", "run_discovery"]


class DiscoveryNode(ProtocolNode):
    """State machine for h-hop neighborhood discovery."""

    def __init__(self, node_id: NodeId, h: int) -> None:
        super().__init__(node_id)
        if h < 1:
            raise InvalidParameterError(f"discovery radius h must be >= 1, got {h}")
        self.h = h
        #: 1-hop neighbors heard via Hello.
        self.neighbors: set[NodeId] = set()
        #: origin -> that origin's neighbor tuple (the local subgraph view).
        self.records: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._sent_record = False

    def start(self) -> None:
        self.send(Hello(origin=self.node_id))

    def on_round(
        self, round_no: int, inbox: Iterable[Tuple[NodeId, object]]
    ) -> None:
        forwarded: set[NodeId] = set()
        for sender, payload in inbox:
            if isinstance(payload, Hello):
                self.neighbors.add(payload.origin)
            elif isinstance(payload, NeighborRecord):
                if payload.origin not in self.records:
                    self.records[payload.origin] = payload.neighbors
                    if payload.ttl > 0 and payload.origin not in forwarded:
                        forwarded.add(payload.origin)
                        self.send(
                            NeighborRecord(
                                origin=payload.origin,
                                neighbors=payload.neighbors,
                                ttl=payload.ttl - 1,
                            )
                        )
        if round_no == 2 and not self._sent_record:
            # Hello exchange is complete; publish our own adjacency.
            self._sent_record = True
            record = NeighborRecord(
                origin=self.node_id,
                neighbors=tuple(sorted(self.neighbors)),
                ttl=self.h - 1,
            )
            self.records[self.node_id] = record.neighbors
            self.send(record)

    def idle(self) -> bool:
        return self._sent_record

    # ------------------------------------------------------------------ #

    def local_subgraph_edges(self) -> set[tuple[NodeId, NodeId]]:
        """Edges known to this node (normalized), from collected records."""
        edges: set[tuple[NodeId, NodeId]] = set()
        for origin, nbrs in self.records.items():
            for v in nbrs:
                edges.add((origin, v) if origin < v else (v, origin))
        return edges


def run_discovery(
    graph: Graph, h: int, *, max_rounds: int = 10_000
) -> tuple[list[DiscoveryNode], MessageStats]:
    """Run h-hop discovery on ``graph``; returns the nodes and stats."""
    nodes = [DiscoveryNode(u, h) for u in graph.nodes()]
    engine = Engine(graph, nodes)
    stats = engine.run(max_rounds=max_rounds)
    return nodes, stats
