"""The virtual graph of clusterheads and virtual links (§3.2).

LMSTGA operates on a *virtual graph*: vertices are clusterheads; a virtual
link between two heads stands for the canonical shortest path between them
in ``G``, weighted by hop count.  "The IDs of two nodes of a virtual link
can be used to break a tie in hop count" — we realize that as the strict
total order ``(hops, min_id, max_id)``, which makes every MST unique and
is exactly the ordering the Theorem-2 induction needs.

Two constructors are provided:

* :meth:`VirtualGraph.from_neighbor_map` — links for the pairs selected by
  a neighbor rule (NC or A-NCR): the localized view.
* :meth:`VirtualGraph.metric_closure` — links for *all* head pairs: the
  global view used by the centralized G-MST baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import InvalidParameterError, ValidationError
from ..net.paths import PathOracle
from ..types import Edge, NodeId, normalize_edge
from .clustering import Clustering
from .neighbor import NeighborMap, neighbor_pairs

__all__ = ["VirtualLink", "VirtualGraph"]


@dataclass(frozen=True)
class VirtualLink:
    """A virtual link: the canonical G-path between two clusterheads.

    Attributes:
        u, v: endpoint heads with ``u < v``.
        path: canonical shortest path from ``u`` to ``v`` (inclusive).
        weight: hop count (``len(path) - 1``).
    """

    u: NodeId
    v: NodeId
    path: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise InvalidParameterError("VirtualLink endpoints must satisfy u < v")
        if self.path[0] != self.u or self.path[-1] != self.v:
            raise InvalidParameterError("VirtualLink path must run u .. v")

    @property
    def weight(self) -> int:
        """Hop count of the link."""
        return len(self.path) - 1

    @property
    def interior(self) -> tuple[NodeId, ...]:
        """Nodes strictly between the endpoints — the gateway candidates."""
        return self.path[1:-1]

    def order_key(self) -> tuple[int, int, int]:
        """The strict total order on links: ``(hops, min_id, max_id)``."""
        return (self.weight, self.u, self.v)

    def other(self, head: NodeId) -> NodeId:
        """The endpoint that is not ``head``."""
        if head == self.u:
            return self.v
        if head == self.v:
            return self.u
        raise InvalidParameterError(f"{head} is not an endpoint of {self}")


class VirtualGraph:
    """Clusterheads plus a set of virtual links between them."""

    def __init__(self, heads: Iterable[NodeId], links: Iterable[VirtualLink]) -> None:
        self._heads: tuple[NodeId, ...] = tuple(sorted(set(heads)))
        head_set = set(self._heads)
        self._links: dict[Edge, VirtualLink] = {}
        self._nbrs: dict[NodeId, set[NodeId]] = {h: set() for h in self._heads}
        for link in links:
            if link.u not in head_set or link.v not in head_set:
                raise InvalidParameterError(
                    f"link {link.u}-{link.v} has a non-head endpoint"
                )
            self._links[(link.u, link.v)] = link
            self._nbrs[link.u].add(link.v)
            self._nbrs[link.v].add(link.u)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_neighbor_map(
        cls,
        clustering: Clustering,
        neighbor_map: NeighborMap,
        oracle: PathOracle,
    ) -> "VirtualGraph":
        """Virtual graph whose links are the neighbor-rule pairs.

        Interior nodes of every virtual link are checked to be
        non-clusterheads — a structural consequence of the k-hop independent
        set (any head on a shortest head-to-head path would force the
        endpoints more than 2k+1 hops apart).
        """
        head_set = set(clustering.heads)
        pairs = sorted(neighbor_pairs(neighbor_map))
        # Canonical paths walk back along the BFS row of each pair's
        # smaller endpoint; request all of those rows in one batched
        # (bit-packed multi-source) sweep before the per-pair walks.
        # Pairs already in the path cache (e.g. seeded from a surviving
        # backbone during repair) need no row at all.
        cold_roots = sorted({a for a, b in pairs if not oracle.has_path(a, b)})
        if cold_roots:
            clustering.graph.oracle.rows(cold_roots)
        links = []
        for a, b in pairs:
            path = oracle.path(a, b)
            bad = [w for w in path[1:-1] if w in head_set]
            if bad:
                raise ValidationError(
                    f"virtual link {a}-{b} passes through clusterheads {bad}"
                )
            links.append(VirtualLink(a, b, path))
        return cls(clustering.heads, links)

    @classmethod
    def metric_closure(
        cls, clustering: Clustering, oracle: PathOracle
    ) -> "VirtualGraph":
        """Complete virtual graph over all head pairs (global baseline)."""
        heads = clustering.heads
        if len(heads) > 1:  # all of heads[:-1] act as smaller endpoints
            cold = [
                a
                for i, a in enumerate(heads[:-1])
                if not all(oracle.has_path(a, b) for b in heads[i + 1 :])
            ]
            if cold:
                clustering.graph.oracle.rows(cold)
        links = []
        for i, a in enumerate(heads):
            for b in heads[i + 1 :]:
                links.append(VirtualLink(a, b, oracle.path(a, b)))
        return cls(heads, links)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def heads(self) -> tuple[NodeId, ...]:
        """Sorted clusterhead IDs."""
        return self._heads

    @property
    def num_links(self) -> int:
        """Number of virtual links."""
        return len(self._links)

    def links(self) -> Iterator[VirtualLink]:
        """All links, in ``(u, v)`` sorted order."""
        for key in sorted(self._links):
            yield self._links[key]

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        """Whether a virtual link joins ``a`` and ``b``."""
        if a == b:
            return False
        return normalize_edge(a, b) in self._links

    def link(self, a: NodeId, b: NodeId) -> VirtualLink:
        """The link between ``a`` and ``b`` (KeyError if absent)."""
        return self._links[normalize_edge(a, b)]

    def neighbors(self, head: NodeId) -> tuple[NodeId, ...]:
        """Heads sharing a virtual link with ``head``, sorted."""
        return tuple(sorted(self._nbrs[head]))

    def weight(self, a: NodeId, b: NodeId) -> int:
        """Hop weight of the ``a``-``b`` link."""
        return self.link(a, b).weight

    def is_connected(self) -> bool:
        """Whether the virtual graph is connected (union-find)."""
        if len(self._heads) <= 1:
            return True
        parent = {h: h for h in self._heads}

        def find(x: NodeId) -> NodeId:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self._links:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        return len({find(h) for h in self._heads}) == 1

    def gateways_for(self, selected: Iterable[Edge]) -> frozenset[NodeId]:
        """Union of interior nodes over a set of selected links."""
        out: set[NodeId] = set()
        for a, b in selected:
            out.update(self.link(a, b).interior)
        return frozenset(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualGraph(heads={len(self._heads)}, links={len(self._links)})"
