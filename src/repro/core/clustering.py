"""The k-hop clustering algorithm (§3 of the paper).

Iterative generalized-lowest-ID clustering over k-hop neighborhoods:

    In each round, every still-undecided node whose priority key is the best
    among the *undecided* nodes of its k-hop neighborhood declares itself a
    clusterhead.  Every undecided non-head that has at least one newly
    declared head within k hops then joins exactly one of those heads
    (membership policy).  Rounds repeat until every node is decided.

Properties (proved in the paper, checked in :mod:`repro.core.validate`):

* clusters partition the node set (non-overlapping, every node joins);
* every member is within k hops of its head (heads form a k-hop DS);
* heads are pairwise more than k hops apart (k-hop independent set) —
  undecided nodes within k hops of a head are forced to join in the same
  round, so no later head can appear within k hops of an earlier one.

Distances are hop distances in the *original* graph ``G`` (radio hops can
relay through already-decided nodes).

Engines and their round-equivalence
-----------------------------------
Two engines implement the identical algorithm:

* the **batched** engine (default) — the declaration phase is ``k``
  sweeps of neighborhood-min key propagation over the CSR adjacency
  arrays, and the join phase one multi-source depth-limited BFS from the
  round's new heads followed by vectorized candidate extraction;
* the **scalar** engine — the per-node reference loop (one oracle ball
  query + Python ``min()`` per undecided node), selectable with
  ``engine="scalar"`` or the ``REPRO_CLUSTER_ENGINE=scalar`` environment
  variable.

Round equivalence argument (why the two produce identical ``head_of``):

* *Declaration.*  Seed ``val[u]`` with ``u``'s priority rank if ``u`` is
  undecided, else +inf, then relax ``val[u] = min(val[u], min over
  neighbors)`` ``k`` times.  After sweep ``i``, ``val[u]`` is the minimum
  rank of any *undecided* node within ``i`` hops of ``u`` — decided nodes
  contribute +inf but still relay, matching the scalar path's hop
  distances in the original ``G``.  Ranks are strictly totally ordered
  (node ID tie-break), so ``val[u] == rank[u]`` after ``k`` sweeps holds
  iff ``u`` is the unique best undecided node of its closed k-ball —
  exactly the scalar declaration test.
* *Join.*  A depth-``k`` multi-source BFS from the new heads reaches an
  undecided node ``u`` at depth ``d <= k`` iff the scalar oracle ball of
  ``u`` contains that head at distance ``d`` (both are hop distances in
  ``G``).  Candidates are extracted per node in increasing head-ID order
  and the joins resolved through the same membership policy — the
  stateless policies vectorize the identical min, and the size-based
  policy walks the same node-ID admission order over the same candidate
  lists, so every choice coincides with the scalar engine's.

Property tests assert ``head_of`` identity across both engines on every
priority × membership × generator combination, including post-churn
(``without_nodes``) graphs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import DisconnectedGraphError, InvalidParameterError
from ..net.graph import Graph
from ..net.oracle import multi_source_bfs
from ..obs import span
from ..types import NodeId
from .membership import JoinContext, MembershipPolicy, resolve_membership
from .priorities import PriorityScheme, key_ranks, resolve_priority

__all__ = [
    "Clustering",
    "admit_nodes",
    "group_by_assignment",
    "khop_cluster",
    "resolve_head_conflicts",
]

#: Environment variable selecting the clustering engine ("batched" default;
#: "scalar" runs the per-node reference loop).
ENGINE_ENV = "REPRO_CLUSTER_ENGINE"


def group_by_assignment(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Group array positions by value in one stable-argsort pass.

    Returns ``(order, uniq, bounds)``: positions sorted so equal values
    are contiguous (ties in ascending position order), the distinct
    values ascending, and the segment boundaries — group ``i`` is
    ``order[bounds[i]:bounds[i + 1]]``.  The one-pass replacement for
    per-value O(n) scans over head assignments (cluster membership,
    repair validation).
    """
    order = np.argsort(values, kind="stable")
    uniq, starts = np.unique(values[order], return_index=True)
    bounds = starts.tolist() + [int(values.size)]
    return order, uniq, bounds


@dataclass(frozen=True)
class Clustering:
    """The outcome of k-hop clustering on a graph.

    Attributes:
        graph: the clustered network ``G``.
        k: cluster radius parameter.
        head_of: per-node head assignment (``head_of[h] == h`` for heads).
        heads: sorted tuple of clusterhead IDs.
        rounds: how many declare/join rounds the algorithm ran.
        priority_name: provenance — priority scheme used.
        membership_name: provenance — membership policy used.
    """

    graph: Graph
    k: int
    head_of: tuple[NodeId, ...]
    heads: tuple[NodeId, ...]
    rounds: int
    priority_name: str = "lowest-id"
    membership_name: str = "id-based"
    _members_cache: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------ #

    def is_head(self, u: NodeId) -> bool:
        """Whether ``u`` is a clusterhead."""
        return self.head_of[u] == u

    def cluster_of(self, u: NodeId) -> NodeId:
        """The head of the cluster that ``u`` belongs to."""
        return self.head_of[u]

    def members(self, head: NodeId) -> tuple[NodeId, ...]:
        """All nodes of ``head``'s cluster, including the head, sorted.

        The first call groups *all* clusters in one ``O(n log n)`` pass (a
        stable argsort of ``head_of``) and fills the cache wholesale, so
        iterating every cluster — :meth:`clusters`, routing-table sizing —
        costs one pass instead of one O(n) scan per head.
        """
        if self.head_of[head] != head:
            raise InvalidParameterError(f"node {head} is not a clusterhead")
        if not self._members_cache:
            assignment = np.asarray(self.head_of, dtype=np.int64)
            order, uniq, bounds = group_by_assignment(assignment)
            for i, h in enumerate(uniq.tolist()):
                self._members_cache[h] = tuple(
                    order[bounds[i] : bounds[i + 1]].tolist()
                )
        return self._members_cache[head]

    def clusters(self) -> Mapping[NodeId, tuple[NodeId, ...]]:
        """Mapping head -> sorted member tuple (members include the head)."""
        return {h: self.members(h) for h in self.heads}

    def cluster_sizes(self) -> dict[NodeId, int]:
        """Mapping head -> cluster size."""
        return {h: len(self.members(h)) for h in self.heads}

    def non_heads(self) -> Iterator[NodeId]:
        """All plain members (nodes that are not clusterheads)."""
        return (u for u in self.graph.nodes() if self.head_of[u] != u)

    @property
    def num_clusters(self) -> int:
        """Number of clusters (== number of clusterheads)."""
        return len(self.heads)

    def head_distance(self, u: NodeId) -> int:
        """Hop distance from ``u`` to its clusterhead."""
        return self.graph.hop_distance(u, self.head_of[u])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Clustering(n={self.graph.n}, k={self.k}, "
            f"heads={len(self.heads)}, rounds={self.rounds})"
        )


def khop_cluster(
    graph: Graph,
    k: int,
    *,
    priority: "PriorityScheme | str | None" = None,
    membership: "MembershipPolicy | str | None" = None,
    require_connected: bool = True,
    engine: str | None = None,
) -> Clustering:
    """Run the paper's iterative k-hop clustering algorithm.

    Args:
        graph: the network ``G``.
        k: cluster radius (``k >= 1``); the paper evaluates ``k`` in 1..4.
        priority: clusterhead priority scheme (default lowest-ID).
        membership: join policy for covered nodes (default ID-based).
        require_connected: raise :class:`DisconnectedGraphError` on a
            disconnected input (the connected-backbone theorems assume a
            connected ``G``).  Pass ``False`` to cluster each component
            independently, e.g. for maintenance experiments.
        engine: ``"batched"`` (default; CSR key propagation + multi-source
            join BFS) or ``"scalar"`` (the per-node reference loop).
            ``None`` reads the ``REPRO_CLUSTER_ENGINE`` environment
            variable, falling back to batched.  Both produce identical
            clusterings (see the module docstring's equivalence argument).

    Returns:
        A :class:`Clustering` carrying the head assignment and provenance.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if require_connected and not graph.is_connected():
        raise DisconnectedGraphError(
            "khop_cluster requires a connected graph (pass "
            "require_connected=False to cluster components independently)"
        )
    name = engine or os.environ.get(ENGINE_ENV) or "batched"
    if name not in ("batched", "scalar"):
        raise InvalidParameterError(
            f"unknown clustering engine {name!r}; known: batched, scalar"
        )
    prio = resolve_priority(priority)
    policy = resolve_membership(membership)
    run = _khop_cluster_batched if name == "batched" else _khop_cluster_scalar
    with span("cluster", n=graph.n, k=k, engine=name):
        head_of, heads, rounds = run(graph, k, prio, policy)
    return Clustering(
        graph=graph,
        k=k,
        head_of=tuple(int(h) for h in head_of.tolist()),
        heads=tuple(sorted(heads)),
        rounds=rounds,
        priority_name=prio.name,
        membership_name=policy.name,
    )


def admit_nodes(clustering: Clustering, graph: Graph) -> Clustering:
    """Admit a grown graph's new nodes into an existing clustering.

    The long-lived service's arrival path: ``graph`` extends
    ``clustering.graph`` with new nodes at the next IDs (a
    :meth:`~repro.net.graph.Graph.with_nodes` result), and each new node
    is decided without re-running the global algorithm — it joins a head
    within ``k`` hops through the clustering's membership policy, or
    declares itself a head when none is in range.  New nodes are decided
    in increasing ID order, and a node declared earlier in the batch is a
    candidate for later arrivals.

    Like §3.3 repair, this preserves the cover property (every member
    within ``k`` hops of its head — re-checkable with
    ``clustering_still_valid``) but not the initial rounds' k-hop
    independence between heads: an arrival bridging two clusters can
    leave their heads closer than ``k + 1`` hops, exactly as member
    departures can after a repair splice.

    Candidate extraction reuses the batched engine's join machinery (one
    depth-``k`` multi-source BFS from the new nodes plus vectorized
    in-range masks); the joins themselves resolve through
    :meth:`~repro.core.membership.MembershipPolicy.choose` seeded with the
    *current* cluster sizes, so the size-based policy sees the real
    occupancy rather than the fresh-round sizes ``choose_batch`` assumes.
    """
    old_n = len(clustering.head_of)
    if graph.n < old_n:
        raise InvalidParameterError(
            f"grown graph has {graph.n} nodes but clustering covers {old_n}"
        )
    if graph.n == old_n:
        if graph is clustering.graph:
            return clustering
        raise InvalidParameterError(
            "admit_nodes expects a graph grown from the clustering's graph"
        )
    k = clustering.k
    policy = resolve_membership(clustering.membership_name)
    indptr, indices = graph.csr_adjacency
    new_nodes = np.arange(old_n, graph.n, dtype=np.int64)
    head_of = [int(h) for h in clustering.head_of]
    sizes = {h: s for h, s in clustering.cluster_sizes().items()}
    declared: list[int] = []
    with span("cluster.admit", n=graph.n, grown=int(new_nodes.size), k=k):
        block = multi_source_bfs(indptr, indices, graph.n, new_nodes, max_depth=k)
        base_heads = np.asarray(clustering.heads, dtype=np.int64)
        # Distances from every new node to every pre-existing head, one
        # gather; finite entries are <= k by the BFS depth limit.
        base_dists = block[:, base_heads] if base_heads.size else block[:, :0]
        for i, x in enumerate(new_nodes.tolist()):
            in_range = base_dists[i] <= k
            cands = base_heads[in_range].tolist()
            cdists = base_dists[i][in_range].tolist()
            for h in declared:  # earlier arrivals that declared (IDs ascend)
                if block[i, h] <= k:
                    cands.append(h)
                    cdists.append(int(block[i, h]))
            if not cands:
                head_of.append(x)
                declared.append(x)
                sizes[x] = 1
                continue
            ctx = JoinContext(
                node=x,
                candidates=cands,
                distances=[int(d) for d in cdists],
                sizes=[sizes[h] for h in cands],
            )
            chosen = int(policy.choose(ctx))
            if chosen not in sizes:
                raise InvalidParameterError(
                    f"membership policy {policy.name!r} chose non-candidate "
                    f"head {chosen} for node {x}"
                )
            head_of.append(chosen)
            sizes[chosen] += 1
    return Clustering(
        graph=graph,
        k=k,
        head_of=tuple(head_of),
        # Declared arrivals carry the highest IDs, so appending keeps the
        # head tuple sorted.
        heads=tuple(clustering.heads) + tuple(declared),
        rounds=clustering.rounds,
        priority_name=clustering.priority_name,
        membership_name=clustering.membership_name,
    )


def resolve_head_conflicts(clustering: Clustering) -> Clustering:
    """Restore pairwise ``> k`` head separation after structural change.

    Growth (and edge arrivals generally) can only *shorten* distances, so
    two heads that were independent can drift within ``k`` hops of each
    other — which is exactly the condition under which a virtual link's
    canonical path can cross a third head and the backbone stage rejects
    the clustering.  This is the local merge response: in each pass, for
    every conflicting head pair the lower ID keeps its cluster (the
    paper's min-ID priority idiom) and the higher is demoted; the
    demoted cluster's nodes re-admit to a surviving head within ``k``
    through the membership policy, or re-declare when none is in range.
    A freshly declared node is ``> k`` from every head at that moment,
    so each pass strictly shrinks the conflict set and the loop
    terminates.

    Returns ``clustering`` itself when no conflict exists (the cheap
    common case: one multi-source BFS of depth ``k`` from the heads).
    Cover is preserved: every node ends within ``k`` of its head.
    """
    graph = clustering.graph
    k = clustering.k
    indptr, indices = graph.csr_adjacency
    policy = resolve_membership(clustering.membership_name)
    head_of = [int(h) for h in clustering.head_of]
    heads = [int(h) for h in clustering.heads]
    merges = 0
    with span("cluster.merge", n=graph.n, k=k):
        while True:
            harr = np.asarray(heads, dtype=np.int64)
            block = multi_source_bfs(
                indptr, indices, graph.n, harr, max_depth=k
            )
            demoted: set[int] = set()
            for i, h in enumerate(heads):
                if h in demoted:
                    continue
                for j in range(i + 1, len(heads)):
                    h2 = heads[j]
                    if h2 not in demoted and block[i, h2] <= k:
                        demoted.add(h2)
            if not demoted:
                break
            merges += len(demoted)
            survivors = [h for h in heads if h not in demoted]
            index_of = {h: i for i, h in enumerate(heads)}
            sizes = {h: 0 for h in survivors}
            for u, h in enumerate(head_of):
                if h in sizes and u != h:
                    sizes[h] += 1
            for h in survivors:
                sizes[h] += 1
            orphans = [u for u in range(graph.n) if head_of[u] in demoted]
            declared: list[int] = []
            declared_balls: dict[int, np.ndarray] = {}
            for u in orphans:
                cands = [
                    h for h in survivors if block[index_of[h], u] <= k
                ]
                cdists = [int(block[index_of[h], u]) for h in cands]
                for h in declared:
                    if declared_balls[h][u] <= k:
                        cands.append(h)
                        cdists.append(int(declared_balls[h][u]))
                if not cands:
                    head_of[u] = u
                    declared.append(u)
                    declared_balls[u] = multi_source_bfs(
                        indptr,
                        indices,
                        graph.n,
                        np.asarray([u], dtype=np.int64),
                        max_depth=k,
                    )[0]
                    sizes[u] = 1
                    continue
                ctx = JoinContext(
                    node=u,
                    candidates=cands,
                    distances=cdists,
                    sizes=[sizes[h] for h in cands],
                )
                chosen = int(policy.choose(ctx))
                head_of[u] = chosen
                sizes[chosen] += 1
            heads = sorted(survivors + declared)
    if merges == 0:
        return clustering
    return Clustering(
        graph=graph,
        k=k,
        head_of=tuple(head_of),
        heads=tuple(heads),
        rounds=clustering.rounds,
        priority_name=clustering.priority_name,
        membership_name=clustering.membership_name,
    )


def _khop_cluster_scalar(
    graph: Graph, k: int, prio: PriorityScheme, policy: MembershipPolicy
) -> tuple[np.ndarray, list[int], int]:
    """The per-node reference engine (one ball query + ``min()`` per node)."""
    keys = prio.keys(graph)
    if len(keys) != graph.n:
        raise InvalidParameterError("priority scheme returned wrong key count")

    n = graph.n
    head_of = np.full(n, -1, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)
    heads: list[int] = []
    # All distance queries go through the graph's oracle as closed k-balls,
    # so only O(ball) work/memory per node is ever done — the lazy backend
    # never materializes the O(n²) matrix.  Round 1 touches every node's
    # ball, so warm them all through the batched depth-limited kernel up
    # front (a no-op on the dense backend and for already-cached balls,
    # e.g. those inherited across a churn removal).
    oracle = graph.oracle
    oracle.prepare_balls(range(n), k)
    rounds = 0

    while undecided.any():
        rounds += 1
        # --- declaration phase -------------------------------------------
        # A node declares iff it holds the best key among the undecided
        # nodes of its closed k-hop neighborhood.  Two declarers are always
        # more than k hops apart: closer pairs share a neighborhood and only
        # one of them can hold the minimum.
        new_heads: list[int] = []
        for u in np.flatnonzero(undecided).tolist():
            ball_nodes, _ = oracle.ball(u, k)
            contenders = ball_nodes[undecided[ball_nodes]]
            best = min(contenders.tolist(), key=lambda w: keys[w])
            if best == u:
                new_heads.append(u)
        if not new_heads:  # pragma: no cover - cannot happen (global min declares)
            raise AssertionError("clustering round produced no clusterhead")
        for h in new_heads:
            head_of[h] = h
            undecided[h] = False
            heads.append(h)

        # --- join phase ---------------------------------------------------
        # Every undecided node within k hops of a new head must join one.
        # Assignments run in increasing node-ID order so that the size-based
        # policy sees up-to-date cluster sizes.
        sizes = {h: 1 for h in new_heads}
        new_heads_arr = np.asarray(new_heads, dtype=np.intp)
        for u in np.flatnonzero(undecided).tolist():
            ball_nodes, ball_dists = oracle.ball(u, k)
            # which new heads fall inside u's ball (ball_nodes is sorted)
            pos = np.searchsorted(ball_nodes, new_heads_arr)
            pos_c = np.minimum(pos, len(ball_nodes) - 1)
            in_range = ball_nodes[pos_c] == new_heads_arr
            if not in_range.any():
                continue
            cands = new_heads_arr[in_range].tolist()
            cdists = ball_dists[pos_c[in_range]].tolist()
            ctx = JoinContext(
                node=u,
                candidates=cands,
                distances=[int(d) for d in cdists],
                sizes=[sizes[h] for h in cands],
            )
            chosen = policy.choose(ctx)
            if chosen not in sizes:
                raise InvalidParameterError(
                    f"membership policy {policy.name!r} chose non-candidate "
                    f"head {chosen} for node {u}"
                )
            head_of[u] = chosen
            undecided[u] = False
            sizes[chosen] += 1

    return head_of, heads, rounds


def _khop_cluster_batched(
    graph: Graph, k: int, prio: PriorityScheme, policy: MembershipPolicy
) -> tuple[np.ndarray, list[int], int]:
    """The vectorized engine: CSR key propagation + multi-source join BFS.

    Per round, O(k · m) word operations for declaration and one
    depth-limited bit-packed BFS from the new heads for the join — no
    per-node Python work except inside stateful membership policies.
    """
    n = graph.n
    indptr, indices = graph.csr_adjacency
    ranks = key_ranks(prio, graph)
    inf = np.int64(n)  # ranks are 0..n-1, so n is a safe +infinity

    head_of = np.full(n, -1, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)
    heads: list[int] = []
    # Segment starts for the neighborhood-min reduction: reduceat cannot
    # represent the empty segments of isolated nodes, so reduce over the
    # nonzero-degree nodes only (isolated nodes keep +inf neighbor mins).
    degs = np.diff(indptr)
    nonzero = np.flatnonzero(degs > 0)
    seg_starts = indptr[nonzero]
    rounds = 0

    while undecided.any():
        rounds += 1
        # --- declaration: k relaxations of the undecided-key minimum ----- #
        val = np.where(undecided, ranks, inf)
        for _ in range(k):
            nbr_min = np.full(n, inf, dtype=np.int64)
            if indices.size:
                nbr_min[nonzero] = np.minimum.reduceat(val[indices], seg_starts)
            np.minimum(val, nbr_min, out=val)
        new_heads = np.flatnonzero(undecided & (val == ranks))
        if new_heads.size == 0:  # pragma: no cover - global min always wins
            raise AssertionError("clustering round produced no clusterhead")
        undecided[new_heads] = False
        head_of[new_heads] = new_heads
        heads.extend(new_heads.tolist())
        if not undecided.any():
            break

        # --- join: one depth-k BFS from the new heads ------------------- #
        # Isolated heads (e.g. dead self-elected nodes on post-churn
        # lifetime graphs) cover nobody; dropping them keeps the sweep's
        # frontier state proportional to the live heads.
        bfs_heads = new_heads[degs[new_heads] > 0]
        if bfs_heads.size == 0:
            continue
        block = multi_source_bfs(
            indptr, indices, n, bfs_heads, max_depth=k
        )
        # Finite entries are <= k by construction; a column with any
        # finite entry is a covered node.
        reached = block.min(axis=0) <= k
        join_nodes = np.flatnonzero(undecided & reached)
        if join_nodes.size == 0:
            continue
        sub = block[:, join_nodes]
        cand_head_idx, cand_node_idx = np.nonzero(sub <= k)
        # nonzero() is row-major (head-major); regroup node-major with the
        # head order preserved inside each node's segment.
        order = np.argsort(cand_node_idx, kind="stable")
        cand_node_idx = cand_node_idx[order]
        cand_heads = bfs_heads[cand_head_idx[order]]
        cand_dists = sub[cand_head_idx[order], cand_node_idx]
        counts = np.bincount(cand_node_idx, minlength=join_nodes.size)
        cand_indptr = np.zeros(join_nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=cand_indptr[1:])
        chosen = policy.choose_batch(
            join_nodes, bfs_heads, cand_indptr, cand_heads, cand_dists
        )
        head_of[join_nodes] = chosen
        undecided[join_nodes] = False

    return head_of, heads, rounds
