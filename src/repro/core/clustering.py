"""The k-hop clustering algorithm (§3 of the paper).

Iterative generalized-lowest-ID clustering over k-hop neighborhoods:

    In each round, every still-undecided node whose priority key is the best
    among the *undecided* nodes of its k-hop neighborhood declares itself a
    clusterhead.  Every undecided non-head that has at least one newly
    declared head within k hops then joins exactly one of those heads
    (membership policy).  Rounds repeat until every node is decided.

Properties (proved in the paper, checked in :mod:`repro.core.validate`):

* clusters partition the node set (non-overlapping, every node joins);
* every member is within k hops of its head (heads form a k-hop DS);
* heads are pairwise more than k hops apart (k-hop independent set) —
  undecided nodes within k hops of a head are forced to join in the same
  round, so no later head can appear within k hops of an earlier one.

Distances are hop distances in the *original* graph ``G`` (radio hops can
relay through already-decided nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import DisconnectedGraphError, InvalidParameterError
from ..net.graph import Graph
from ..types import NodeId
from .membership import JoinContext, MembershipPolicy, resolve_membership
from .priorities import PriorityScheme, resolve_priority

__all__ = ["Clustering", "khop_cluster"]


@dataclass(frozen=True)
class Clustering:
    """The outcome of k-hop clustering on a graph.

    Attributes:
        graph: the clustered network ``G``.
        k: cluster radius parameter.
        head_of: per-node head assignment (``head_of[h] == h`` for heads).
        heads: sorted tuple of clusterhead IDs.
        rounds: how many declare/join rounds the algorithm ran.
        priority_name: provenance — priority scheme used.
        membership_name: provenance — membership policy used.
    """

    graph: Graph
    k: int
    head_of: tuple[NodeId, ...]
    heads: tuple[NodeId, ...]
    rounds: int
    priority_name: str = "lowest-id"
    membership_name: str = "id-based"
    _members_cache: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------ #

    def is_head(self, u: NodeId) -> bool:
        """Whether ``u`` is a clusterhead."""
        return self.head_of[u] == u

    def cluster_of(self, u: NodeId) -> NodeId:
        """The head of the cluster that ``u`` belongs to."""
        return self.head_of[u]

    def members(self, head: NodeId) -> tuple[NodeId, ...]:
        """All nodes of ``head``'s cluster, including the head, sorted."""
        if self.head_of[head] != head:
            raise InvalidParameterError(f"node {head} is not a clusterhead")
        cached = self._members_cache.get(head)
        if cached is None:
            cached = tuple(
                u for u in self.graph.nodes() if self.head_of[u] == head
            )
            self._members_cache[head] = cached
        return cached

    def clusters(self) -> Mapping[NodeId, tuple[NodeId, ...]]:
        """Mapping head -> sorted member tuple (members include the head)."""
        return {h: self.members(h) for h in self.heads}

    def cluster_sizes(self) -> dict[NodeId, int]:
        """Mapping head -> cluster size."""
        return {h: len(self.members(h)) for h in self.heads}

    def non_heads(self) -> Iterator[NodeId]:
        """All plain members (nodes that are not clusterheads)."""
        return (u for u in self.graph.nodes() if self.head_of[u] != u)

    @property
    def num_clusters(self) -> int:
        """Number of clusters (== number of clusterheads)."""
        return len(self.heads)

    def head_distance(self, u: NodeId) -> int:
        """Hop distance from ``u`` to its clusterhead."""
        return self.graph.hop_distance(u, self.head_of[u])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Clustering(n={self.graph.n}, k={self.k}, "
            f"heads={len(self.heads)}, rounds={self.rounds})"
        )


def khop_cluster(
    graph: Graph,
    k: int,
    *,
    priority: "PriorityScheme | str | None" = None,
    membership: "MembershipPolicy | str | None" = None,
    require_connected: bool = True,
) -> Clustering:
    """Run the paper's iterative k-hop clustering algorithm.

    Args:
        graph: the network ``G``.
        k: cluster radius (``k >= 1``); the paper evaluates ``k`` in 1..4.
        priority: clusterhead priority scheme (default lowest-ID).
        membership: join policy for covered nodes (default ID-based).
        require_connected: raise :class:`DisconnectedGraphError` on a
            disconnected input (the connected-backbone theorems assume a
            connected ``G``).  Pass ``False`` to cluster each component
            independently, e.g. for maintenance experiments.

    Returns:
        A :class:`Clustering` carrying the head assignment and provenance.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if require_connected and not graph.is_connected():
        raise DisconnectedGraphError(
            "khop_cluster requires a connected graph (pass "
            "require_connected=False to cluster components independently)"
        )
    prio = resolve_priority(priority)
    policy = resolve_membership(membership)
    keys = prio.keys(graph)
    if len(keys) != graph.n:
        raise InvalidParameterError("priority scheme returned wrong key count")

    n = graph.n
    head_of = np.full(n, -1, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)
    heads: list[int] = []
    # All distance queries go through the graph's oracle as closed k-balls,
    # so only O(ball) work/memory per node is ever done — the lazy backend
    # never materializes the O(n²) matrix.  Round 1 touches every node's
    # ball, so warm them all through the batched depth-limited kernel up
    # front (a no-op on the dense backend and for already-cached balls,
    # e.g. those inherited across a churn removal).
    oracle = graph.oracle
    oracle.prepare_balls(range(n), k)
    rounds = 0

    while undecided.any():
        rounds += 1
        # --- declaration phase -------------------------------------------
        # A node declares iff it holds the best key among the undecided
        # nodes of its closed k-hop neighborhood.  Two declarers are always
        # more than k hops apart: closer pairs share a neighborhood and only
        # one of them can hold the minimum.
        new_heads: list[int] = []
        for u in np.flatnonzero(undecided).tolist():
            ball_nodes, _ = oracle.ball(u, k)
            contenders = ball_nodes[undecided[ball_nodes]]
            best = min(contenders.tolist(), key=lambda w: keys[w])
            if best == u:
                new_heads.append(u)
        if not new_heads:  # pragma: no cover - cannot happen (global min declares)
            raise AssertionError("clustering round produced no clusterhead")
        for h in new_heads:
            head_of[h] = h
            undecided[h] = False
            heads.append(h)

        # --- join phase ---------------------------------------------------
        # Every undecided node within k hops of a new head must join one.
        # Assignments run in increasing node-ID order so that the size-based
        # policy sees up-to-date cluster sizes.
        sizes = {h: 1 for h in new_heads}
        new_heads_arr = np.asarray(new_heads, dtype=np.intp)
        for u in np.flatnonzero(undecided).tolist():
            ball_nodes, ball_dists = oracle.ball(u, k)
            # which new heads fall inside u's ball (ball_nodes is sorted)
            pos = np.searchsorted(ball_nodes, new_heads_arr)
            pos_c = np.minimum(pos, len(ball_nodes) - 1)
            in_range = ball_nodes[pos_c] == new_heads_arr
            if not in_range.any():
                continue
            cands = new_heads_arr[in_range].tolist()
            cdists = ball_dists[pos_c[in_range]].tolist()
            ctx = JoinContext(
                node=u,
                candidates=cands,
                distances=[int(d) for d in cdists],
                sizes=[sizes[h] for h in cands],
            )
            chosen = policy.choose(ctx)
            if chosen not in sizes:
                raise InvalidParameterError(
                    f"membership policy {policy.name!r} chose non-candidate "
                    f"head {chosen} for node {u}"
                )
            head_of[u] = chosen
            undecided[u] = False
            sizes[chosen] += 1

    return Clustering(
        graph=graph,
        k=k,
        head_of=tuple(int(h) for h in head_of.tolist()),
        heads=tuple(sorted(heads)),
        rounds=rounds,
        priority_name=prio.name,
        membership_name=policy.name,
    )
