"""G-MST — the centralized global-MST baseline (§4's lower-bound curve).

A global minimum spanning tree is computed over the **metric closure** of
the clusterheads (every head pair, weighted by hop distance, with the same
``(hops, min_id, max_id)`` total order as everywhere else); the interior
nodes of the chosen canonical paths become gateways.  The paper uses this
centralized scheme as the lower-bound comparator: "G-MST has a constant
approximation ratio to the optimal k-hop CDS for a constant k".

This is *not* a localized algorithm — it needs global topology knowledge —
which is exactly why the paper builds A-NCR + LMSTGA instead.
"""

from __future__ import annotations

from ..net.paths import PathOracle
from ..types import Edge
from .clustering import Clustering
from .lmst import _kruskal
from .virtual_graph import VirtualGraph

__all__ = ["gmst_selected_links", "gmst_gateways", "gmst_virtual_graph"]


def gmst_virtual_graph(clustering: Clustering, oracle: PathOracle) -> VirtualGraph:
    """The metric-closure virtual graph G-MST runs on."""
    return VirtualGraph.metric_closure(clustering, oracle)


def gmst_selected_links(vgraph: VirtualGraph) -> set[Edge]:
    """Edges of the unique global MST of the (complete) virtual graph."""
    edges = [(link.order_key(), (link.u, link.v)) for link in vgraph.links()]
    return _kruskal(vgraph.heads, edges)


def gmst_gateways(vgraph: VirtualGraph) -> frozenset[int]:
    """Gateways of G-MST: interiors of the global MST's links."""
    return vgraph.gateways_for(gmst_selected_links(vgraph))
