"""Krishna et al.'s k-cluster definition (related work, [8]).

The paper's §1 contrasts two k-hop clustering definitions.  Its own (used
everywhere else in this repo): a cluster is the set of nodes within k hops
of a *clusterhead*.  The alternative, due to Krishna, Vaidya, Chatterjee
and Pradhan: a **k-cluster** is a subset of nodes *mutually* reachable by
paths of at most k hops — headless and overlapping.

This module implements the alternative for the definitional comparison
ablation: k-clusters are exactly the maximal cliques of the k-th power
graph ``G^k`` (u ~ v iff hop distance <= k).  Maximal-clique enumeration
is exponential in the worst case; at the paper's scales (N <= 200,
geometric graphs) it is fast, and ``max_clusters`` guards runaway inputs.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from ..errors import InvalidParameterError
from ..net.graph import Graph

__all__ = ["power_graph", "k_clusters", "kcluster_stats"]


def power_graph(graph: Graph, k: int) -> "nx.Graph":
    """The k-th power of ``graph``: edges join nodes at hop distance <= k."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    h = nx.Graph()
    h.add_nodes_from(graph.nodes())
    oracle = graph.oracle
    for u in range(graph.n):
        ball_nodes, _ = oracle.ball(u, k)
        for v in ball_nodes.tolist():
            if v > u:
                h.add_edge(u, v)
    return h


def k_clusters(
    graph: Graph, k: int, *, max_clusters: int = 100_000
) -> list[frozenset[int]]:
    """All k-clusters (maximal mutually-k-reachable sets), Krishna's def.

    Returns maximal cliques of ``G^k``, sorted by (size desc, members).

    Raises:
        InvalidParameterError: if enumeration exceeds ``max_clusters`` —
            the definitional comparison does not need pathological cases.
    """
    h = power_graph(graph, k)
    out: list[frozenset[int]] = []
    for clique in nx.find_cliques(h):
        out.append(frozenset(clique))
        if len(out) > max_clusters:
            raise InvalidParameterError(
                f"more than {max_clusters} k-clusters; aborting enumeration"
            )
    out.sort(key=lambda c: (-len(c), sorted(c)))
    return out


def kcluster_stats(graph: Graph, k: int) -> dict:
    """Comparison metrics between the two definitions (§1 ablation).

    Returns a dict with: number of k-clusters, mean cluster size, mean
    node membership multiplicity (1.0 would mean non-overlapping — in
    general it is larger, the key practical drawback the paper's
    definition avoids), and max multiplicity.
    """
    clusters = k_clusters(graph, k)
    n = graph.n
    counts = [0] * n
    for c in clusters:
        for u in c:
            counts[u] += 1
    sizes = [len(c) for c in clusters]
    return {
        "num_clusters": len(clusters),
        "mean_size": sum(sizes) / len(sizes) if sizes else 0.0,
        "mean_multiplicity": sum(counts) / n if n else 0.0,
        "max_multiplicity": max(counts) if counts else 0,
    }
