"""Cluster membership policies — which cluster does a covered node join?

§3 of the paper: "For a non-clusterhead that has received more than one
clusterhead declaration message within its k-hop neighborhood, there are
several ways for it to decide which cluster to join. (1) ID-based ...
(2) Distance-based ... (3) Size-based ...".

A policy ranks the candidate clusterheads a node heard from; the node joins
the best-ranked one.  All policies end with deterministic tie-breaks (hop
distance, then head ID) so clusterings are reproducible.

Size-based membership is stateful within a clustering round: nodes are
assigned in increasing node-ID order and each assignment immediately updates
the cluster sizes, mirroring a sequential admission process that balances
cluster sizes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import InvalidParameterError
from ..types import NodeId

__all__ = [
    "JoinContext",
    "MembershipPolicy",
    "IDBasedJoin",
    "DistanceBasedJoin",
    "SizeBasedJoin",
    "resolve_membership",
]


@dataclass(frozen=True)
class JoinContext:
    """Information available to a joining node.

    Attributes:
        node: the joining (non-clusterhead) node.
        candidates: clusterheads within k hops that declared this round,
            sorted by ID.
        distances: hop distance from ``node`` to each head (same order as
            ``candidates``).
        sizes: current size of each candidate's cluster **including the head
            itself and members admitted earlier in this round** (same order).
    """

    node: NodeId
    candidates: Sequence[NodeId]
    distances: Sequence[int]
    sizes: Sequence[int]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise InvalidParameterError(f"node {self.node} has no candidate heads")
        if not (len(self.candidates) == len(self.distances) == len(self.sizes)):
            raise InvalidParameterError("candidates/distances/sizes length mismatch")


class MembershipPolicy(ABC):
    """Strategy choosing one clusterhead from a :class:`JoinContext`."""

    #: Human-readable policy name for provenance.
    name: str = "abstract"

    @abstractmethod
    def choose(self, ctx: JoinContext) -> NodeId:
        """Return the clusterhead ``ctx.node`` joins."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IDBasedJoin(MembershipPolicy):
    """Join the candidate clusterhead with the smallest ID (paper option 1)."""

    name = "id-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        return min(ctx.candidates)


class DistanceBasedJoin(MembershipPolicy):
    """Join the nearest candidate clusterhead (paper option 2).

    Tie-break: smallest head ID among nearest candidates.
    """

    name = "distance-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        best = min(zip(ctx.distances, ctx.candidates))
        return best[1]


class SizeBasedJoin(MembershipPolicy):
    """Join the currently smallest candidate cluster (paper option 3).

    Tie-breaks: among equally small clusters prefer the nearest head, then
    the smallest head ID.  Combined with the sequential node-ID assignment
    order in the clustering engine this balances cluster sizes greedily.
    """

    name = "size-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        ranked = sorted(zip(ctx.sizes, ctx.distances, ctx.candidates))
        return ranked[0][2]


_NAMED: Mapping[str, type[MembershipPolicy]] = {
    "id-based": IDBasedJoin,
    "distance-based": DistanceBasedJoin,
    "size-based": SizeBasedJoin,
}


def resolve_membership(spec: "MembershipPolicy | str | None") -> MembershipPolicy:
    """Resolve a membership spec: an instance, a name, or None (ID-based)."""
    if spec is None:
        return IDBasedJoin()
    if isinstance(spec, MembershipPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise InvalidParameterError(
                f"unknown membership policy {spec!r}; known: {sorted(_NAMED)}"
            ) from None
    raise InvalidParameterError(f"cannot interpret membership spec {spec!r}")
