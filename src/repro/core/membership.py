"""Cluster membership policies — which cluster does a covered node join?

§3 of the paper: "For a non-clusterhead that has received more than one
clusterhead declaration message within its k-hop neighborhood, there are
several ways for it to decide which cluster to join. (1) ID-based ...
(2) Distance-based ... (3) Size-based ...".

A policy ranks the candidate clusterheads a node heard from; the node joins
the best-ranked one.  All policies end with deterministic tie-breaks (hop
distance, then head ID) so clusterings are reproducible.

Size-based membership is stateful within a clustering round: nodes are
assigned in increasing node-ID order and each assignment immediately updates
the cluster sizes, mirroring a sequential admission process that balances
cluster sizes.

Batched path
------------
The batched clustering engine resolves a whole round's joins at once
through :meth:`MembershipPolicy.choose_batch`, handing each policy the
round's candidate sets as CSR-style segment arrays (one segment of
``(head, distance)`` candidates per joining node, nodes in increasing ID
order, candidates in increasing head-ID order — exactly the
:class:`JoinContext` contents the scalar engine would have built).  The
stateless policies (ID- and distance-based) override it with fully
vectorized segment reductions; the stateful size-based policy keeps the
base implementation, which walks the precomputed candidate arrays in
node-ID order through :meth:`~MembershipPolicy.choose` and so preserves
the documented sequential-admission semantics exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..types import NodeId

__all__ = [
    "JoinContext",
    "MembershipPolicy",
    "IDBasedJoin",
    "DistanceBasedJoin",
    "SizeBasedJoin",
    "resolve_membership",
]


@dataclass(frozen=True)
class JoinContext:
    """Information available to a joining node.

    Attributes:
        node: the joining (non-clusterhead) node.
        candidates: clusterheads within k hops that declared this round,
            sorted by ID.
        distances: hop distance from ``node`` to each head (same order as
            ``candidates``).
        sizes: current size of each candidate's cluster **including the head
            itself and members admitted earlier in this round** (same order).
    """

    node: NodeId
    candidates: Sequence[NodeId]
    distances: Sequence[int]
    sizes: Sequence[int]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise InvalidParameterError(f"node {self.node} has no candidate heads")
        if not (len(self.candidates) == len(self.distances) == len(self.sizes)):
            raise InvalidParameterError("candidates/distances/sizes length mismatch")


class MembershipPolicy(ABC):
    """Strategy choosing one clusterhead from a :class:`JoinContext`."""

    #: Human-readable policy name for provenance.
    name: str = "abstract"

    @abstractmethod
    def choose(self, ctx: JoinContext) -> NodeId:
        """Return the clusterhead ``ctx.node`` joins."""

    def choose_batch(
        self,
        nodes: np.ndarray,
        heads: np.ndarray,
        cand_indptr: np.ndarray,
        cand_heads: np.ndarray,
        cand_dists: np.ndarray,
    ) -> np.ndarray:
        """Resolve one round's joins over precomputed candidate arrays.

        Args:
            nodes: joining node IDs, strictly increasing (the engine's
                assignment order).
            heads: this round's newly declared heads, strictly increasing.
            cand_indptr: ``(len(nodes) + 1,)`` segment boundaries into the
                flattened candidate arrays; every segment is non-empty.
            cand_heads: flattened candidate head IDs, increasing within
                each segment.
            cand_dists: matching hop distances (all ``<= k``).

        Returns:
            The chosen head per node, parallel to ``nodes``.

        The base implementation is the sequential reference: it walks the
        segments in node-ID order, maintaining per-head sizes exactly like
        the scalar engine (head itself plus members admitted earlier this
        round), and defers each choice to :meth:`choose` — correct for any
        policy, and the path stateful policies (size-based) keep.
        """
        sizes = np.ones(heads.size, dtype=np.int64)
        out = np.empty(nodes.size, dtype=np.int64)
        bounds = cand_indptr.tolist()
        for j, u in enumerate(nodes.tolist()):
            s, e = bounds[j], bounds[j + 1]
            seg_heads = cand_heads[s:e]
            seg_idx = np.searchsorted(heads, seg_heads)
            ctx = JoinContext(
                node=int(u),
                candidates=seg_heads.tolist(),
                distances=cand_dists[s:e].tolist(),
                sizes=sizes[seg_idx].tolist(),
            )
            chosen = self.choose(ctx)
            pos = np.searchsorted(seg_heads, chosen)
            if pos >= seg_heads.size or seg_heads[pos] != chosen:
                raise InvalidParameterError(
                    f"membership policy {self.name!r} chose non-candidate "
                    f"head {chosen} for node {u}"
                )
            out[j] = chosen
            sizes[seg_idx[pos]] += 1
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IDBasedJoin(MembershipPolicy):
    """Join the candidate clusterhead with the smallest ID (paper option 1)."""

    name = "id-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        return min(ctx.candidates)

    def choose_batch(
        self,
        nodes: np.ndarray,
        heads: np.ndarray,
        cand_indptr: np.ndarray,
        cand_heads: np.ndarray,
        cand_dists: np.ndarray,
    ) -> np.ndarray:
        # Candidates are head-ID-ascending, so each segment's first entry
        # is the minimum — one gather resolves the whole round.
        return cand_heads[cand_indptr[:-1]].astype(np.int64)


class DistanceBasedJoin(MembershipPolicy):
    """Join the nearest candidate clusterhead (paper option 2).

    Tie-break: smallest head ID among nearest candidates.
    """

    name = "distance-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        best = min(zip(ctx.distances, ctx.candidates))
        return best[1]

    def choose_batch(
        self,
        nodes: np.ndarray,
        heads: np.ndarray,
        cand_indptr: np.ndarray,
        cand_heads: np.ndarray,
        cand_dists: np.ndarray,
    ) -> np.ndarray:
        # Encode (distance, head) as one int64 so a single segmented min
        # (reduceat over the non-empty segments) picks the nearest head
        # with lowest-ID tie-break, exactly like the scalar min().
        base = int(heads[-1]) + 1 if heads.size else 1
        key = cand_dists.astype(np.int64) * base + cand_heads.astype(np.int64)
        best = np.minimum.reduceat(key, cand_indptr[:-1])
        return best % base


class SizeBasedJoin(MembershipPolicy):
    """Join the currently smallest candidate cluster (paper option 3).

    Tie-breaks: among equally small clusters prefer the nearest head, then
    the smallest head ID.  Combined with the sequential node-ID assignment
    order in the clustering engine this balances cluster sizes greedily.
    """

    name = "size-based"

    def choose(self, ctx: JoinContext) -> NodeId:
        ranked = sorted(zip(ctx.sizes, ctx.distances, ctx.candidates))
        return ranked[0][2]


_NAMED: Mapping[str, type[MembershipPolicy]] = {
    "id-based": IDBasedJoin,
    "distance-based": DistanceBasedJoin,
    "size-based": SizeBasedJoin,
}


def resolve_membership(spec: "MembershipPolicy | str | None") -> MembershipPolicy:
    """Resolve a membership spec: an instance, a name, or None (ID-based)."""
    if spec is None:
        return IDBasedJoin()
    if isinstance(spec, MembershipPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise InvalidParameterError(
                f"unknown membership policy {spec!r}; known: {sorted(_NAMED)}"
            ) from None
    raise InvalidParameterError(f"cannot interpret membership spec {spec!r}")
