"""Wu-Lou greedy gateway selection for 1-hop clustering (related work [17]).

For k = 1 the paper's predecessor work connects each clusterhead to its
"2.5-hop coverage" set (see :func:`repro.core.neighbor.wu_lou_neighbors`)
using a greedy choice of forwarding members.  The original paper [17] frames
this as a forward-node set selection; here we implement the natural greedy
set-cover reading:

* heads at 2 hops are reachable through one common member; heads at 3 hops
  through an ordered pair of members;
* each head greedily picks the member that covers the most still-unconnected
  2-hop coverage targets (ties to lowest ID), then completes any remaining
  3-hop targets with the canonical virtual link interiors.

This module is labelled *inspired-by*: [17]'s exact tie-breaking is not
reproducible from the ICPP'05 text, but the structure (greedy local cover of
the 2.5-hop set) matches, and the result is only used for the k=1 ablation
benchmark, never for the paper's main figures.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..net.paths import PathOracle
from ..types import NodeId
from .clustering import Clustering
from .neighbor import wu_lou_neighbors

__all__ = ["wu_lou_gateways"]


def wu_lou_gateways(
    clustering: Clustering, oracle: PathOracle
) -> frozenset[NodeId]:
    """Greedy gateway set connecting each head to its 2.5-hop coverage.

    Raises:
        InvalidParameterError: for ``k != 1`` (the rule is 1-hop specific).
    """
    if clustering.k != 1:
        raise InvalidParameterError("Wu-Lou greedy gateways require k = 1")
    g = clustering.graph
    distances = g.oracle
    coverage = wu_lou_neighbors(clustering)
    gateways: set[NodeId] = set()
    for u, targets in coverage.items():
        dmap = distances.ball_map(u, 3)
        two_hop = [v for v in targets if dmap.get(v) == 2]
        three_hop = [v for v in targets if dmap.get(v) == 3]
        # Greedy cover of 2-hop targets by single common members.
        uncovered = set(two_hop)
        candidates = [w for w in g.khop_neighbors(u, 1) if not clustering.is_head(w)]
        while uncovered:
            best_w, best_cov = None, frozenset()
            for w in candidates:
                cov = frozenset(
                    v for v in uncovered if g.has_edge(w, v)
                )
                if len(cov) > len(best_cov) or (
                    len(cov) == len(best_cov) and cov and (best_w is None or w < best_w)
                ):
                    best_w, best_cov = w, cov
            if best_w is None or not best_cov:
                # No single member covers the rest (shouldn't happen for
                # 2-hop targets); fall back to canonical paths.
                for v in sorted(uncovered):
                    gateways.update(oracle.interior(u, v))
                break
            gateways.add(best_w)
            uncovered -= best_cov
        # 3-hop coverage targets: connect along canonical virtual links.
        for v in three_hop:
            gateways.update(oracle.interior(u, v))
    return frozenset(gateways)
