"""End-to-end backbone construction pipelines (the five evaluated algorithms).

The simulation section compares **NC-Mesh, AC-Mesh, NC-LMST, AC-LMST** and
the centralized **G-MST** lower bound.  Each pipeline is

    k-hop clustering  ->  neighbor rule (NC | AC)  ->  gateway algorithm
    (Mesh | LMST)     or  the global G-MST shortcut,

and yields a :class:`BackboneResult` holding the clustering, the selected
virtual links, the gateway set and the resulting k-hop CDS.  All pipelines
reuse one clustering and one :class:`~repro.net.paths.PathOracle`, so
algorithm comparisons on the same instance are paired (same clusters, same
canonical paths), mirroring the paper's methodology.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..errors import InvalidParameterError
from ..net.graph import Graph
from ..net.paths import PathOracle
from ..obs import span
from ..net.topology import Topology
from ..types import Edge, NodeId
from .clustering import Clustering, khop_cluster
from .gmst import gmst_selected_links
from .lmst import lmst_selected_links
from .membership import MembershipPolicy
from .mesh import mesh_selected_links
from .neighbor import NeighborMap, ancr_neighbors, nc_neighbors
from .priorities import PriorityScheme
from .virtual_graph import VirtualGraph

__all__ = [
    "BackboneResult",
    "ALGORITHMS",
    "algorithm_names",
    "build_backbone",
    "build_all_backbones",
    "run_pipeline",
]


@dataclass(frozen=True)
class BackboneResult:
    """A connected k-hop clustering backbone produced by one pipeline.

    Attributes:
        algorithm: registry name (e.g. ``"AC-LMST"``).
        clustering: the underlying k-hop clustering.
        neighbor_map: head -> neighbor heads (None for G-MST, which has no
            localized neighbor-selection phase).
        virtual_graph: the virtual graph the gateway stage ran on.
        selected_links: virtual links actually realized by gateways.
        gateways: the selected gateway (non-head) nodes.
    """

    algorithm: str
    clustering: Clustering
    neighbor_map: Optional[NeighborMap]
    virtual_graph: VirtualGraph
    selected_links: frozenset[Edge]
    gateways: frozenset[NodeId]

    @property
    def heads(self) -> tuple[NodeId, ...]:
        """Clusterhead IDs."""
        return self.clustering.heads

    @property
    def cds(self) -> frozenset[NodeId]:
        """The k-hop connected dominating set: heads plus gateways."""
        return frozenset(self.heads) | self.gateways

    @property
    def num_gateways(self) -> int:
        """Number of gateway nodes (the paper's primary metric)."""
        return len(self.gateways)

    @property
    def cds_size(self) -> int:
        """Size of the CDS (heads + gateways, the figures' y-axis)."""
        return len(self.cds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackboneResult({self.algorithm}, heads={len(self.heads)}, "
            f"gateways={self.num_gateways})"
        )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

_NeighborFn = Callable[[Clustering], NeighborMap]
_GatewayFn = Callable[[VirtualGraph], set[Edge]]

#: name -> (neighbor rule, link-selection function); G-MST is special-cased.
_LOCALIZED: Mapping[str, tuple[_NeighborFn, _GatewayFn]] = {
    "NC-Mesh": (nc_neighbors, mesh_selected_links),
    "AC-Mesh": (ancr_neighbors, mesh_selected_links),
    "NC-LMST": (nc_neighbors, lmst_selected_links),
    "AC-LMST": (ancr_neighbors, lmst_selected_links),
}

#: All algorithm names in the paper's plotting order.
ALGORITHMS: tuple[str, ...] = ("NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST", "G-MST")


def algorithm_names() -> tuple[str, ...]:
    """The five algorithm names compared by the paper, plotting order."""
    return ALGORITHMS


def build_backbone(
    clustering: Clustering,
    algorithm: str,
    *,
    oracle: Optional[PathOracle] = None,
) -> BackboneResult:
    """Run the neighbor-selection + gateway stage of one algorithm.

    Args:
        clustering: a validated k-hop clustering of a connected graph.
        algorithm: one of :data:`ALGORITHMS`.
        oracle: optional shared path oracle (created if omitted).
    """
    # `or` would discard an *empty* caller oracle (PathOracle defines
    # __len__, so a fresh one is falsy) — inherit-then-build flows hand
    # those in deliberately.
    oracle = oracle if oracle is not None else PathOracle(clustering.graph)
    with span("cds", algorithm=algorithm):
        if algorithm == "G-MST":
            vgraph = VirtualGraph.metric_closure(clustering, oracle)
            selected = gmst_selected_links(vgraph)
            return BackboneResult(
                algorithm=algorithm,
                clustering=clustering,
                neighbor_map=None,
                virtual_graph=vgraph,
                selected_links=frozenset(selected),
                gateways=vgraph.gateways_for(selected),
            )
        try:
            neighbor_fn, link_fn = _LOCALIZED[algorithm]
        except KeyError:
            raise InvalidParameterError(
                f"unknown algorithm {algorithm!r}; known: {list(ALGORITHMS)}"
            ) from None
        nmap = neighbor_fn(clustering)
        vgraph = VirtualGraph.from_neighbor_map(clustering, nmap, oracle)
        selected = link_fn(vgraph)
        return BackboneResult(
            algorithm=algorithm,
            clustering=clustering,
            neighbor_map=nmap,
            virtual_graph=vgraph,
            selected_links=frozenset(selected),
            gateways=vgraph.gateways_for(selected),
        )


def build_all_backbones(
    clustering: Clustering,
    algorithms: tuple[str, ...] = ALGORITHMS,
    *,
    oracle: Optional[PathOracle] = None,
) -> dict[str, BackboneResult]:
    """Run several algorithms on one clustering, sharing the path oracle."""
    # `or` would discard an *empty* caller oracle (PathOracle defines
    # __len__, so a fresh one is falsy) — inherit-then-build flows hand
    # those in deliberately.
    oracle = oracle if oracle is not None else PathOracle(clustering.graph)
    return {a: build_backbone(clustering, a, oracle=oracle) for a in algorithms}


def run_pipeline(
    network: "Graph | Topology",
    k: int,
    algorithm: str = "AC-LMST",
    *,
    priority: "PriorityScheme | str | None" = None,
    membership: "MembershipPolicy | str | None" = None,
    distance_backend: "str | None" = None,
) -> BackboneResult:
    """One-call convenience API: cluster a network and build a backbone.

    This is the quickstart entry point::

        from repro import run_pipeline, random_topology
        topo = random_topology(100, degree=6, seed=42)
        result = run_pipeline(topo, k=2, algorithm="AC-LMST")
        print(result.num_gateways, result.cds_size)

    Args:
        network: a :class:`~repro.net.graph.Graph` or
            :class:`~repro.net.topology.Topology`.
        k: cluster radius (>= 1).
        algorithm: one of :data:`ALGORITHMS` (default the paper's best,
            AC-LMST).
        priority: clusterhead priority scheme (default lowest-ID).
        membership: join policy (default ID-based).
        distance_backend: force the hop-distance backend for this call
            (``"dense"``/``"lazy"``/``"auto"``); the graph's own policy is
            restored afterwards (dense for small n, lazy CSR above).
    """
    graph = network.graph if isinstance(network, Topology) else network
    ctx = (
        graph.pinned_distance_backend(distance_backend)
        if distance_backend is not None
        else nullcontext()
    )
    with ctx:
        clustering = khop_cluster(graph, k, priority=priority, membership=membership)
        return build_backbone(clustering, algorithm)
