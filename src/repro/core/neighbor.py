"""Neighbor-clusterhead selection rules (phase 1 of the paper's solution).

After clustering, each clusterhead must pick a set of *neighbor
clusterheads* to connect to.  If every head reaches each of its neighbors,
the whole cluster graph is connected — provided the rule is rich enough.
The paper contributes **A-NCR**; two baselines complete the picture:

* :func:`nc_neighbors` — the usual rule: all clusterheads within 2k+1 hops.
* :func:`ancr_neighbors` — **A-NCR**: only *adjacent* clusterheads (heads of
  clusters joined by at least one G-edge between their member sets,
  Definition 2).  Theorem 1: the adjacent-cluster graph G'' is connected,
  so this smaller set still guarantees global connectivity.
* :func:`wu_lou_neighbors` — Wu & Lou's "2.5-hop coverage" (k = 1 only):
  each head covers heads within 2 hops plus heads at exactly 3 hops that
  own a member inside the head's 2-hop neighborhood.  A-NCR at k=1 refines
  this further; the tests verify the inclusion chain
  ``A-NCR ⊆ Wu-Lou ⊆ NC`` at k = 1.

All rules return a mapping ``head -> sorted tuple of neighbor heads``.
NC and A-NCR are symmetric relations; Wu-Lou is directional in general
(the paper's Figure 2 shows unidirectional connections), so its mapping is
per-source coverage.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import InvalidParameterError, ValidationError
from ..net.graph import UNREACHABLE
from ..types import Edge, NodeId, normalize_edge
from .clustering import Clustering

__all__ = [
    "NeighborMap",
    "nc_neighbors",
    "adjacent_head_pairs",
    "ancr_neighbors",
    "wu_lou_neighbors",
    "neighbor_pairs",
    "is_symmetric",
    "cluster_graph_connected",
    "NEIGHBOR_RULES",
    "resolve_neighbor_rule",
]

#: head -> sorted tuple of neighbor heads.
NeighborMap = Mapping[NodeId, tuple[NodeId, ...]]


def nc_neighbors(clustering: Clustering) -> dict[NodeId, tuple[NodeId, ...]]:
    """Baseline NC rule: every other clusterhead within 2k+1 hops.

    Answered from one head-to-head pairwise distance matrix: the dense
    backend gathers it from the materialized matrix, the lazy backend
    computes head rows in bit-packed batched BFS sweeps (which also warms
    the row cache the virtual-link phase reads next), and the landmark
    backend joins 2-hop labels per pair — never a full row.
    """
    g = clustering.graph
    oracle = g.oracle
    reach = 2 * clustering.k + 1
    heads = clustering.heads
    if not heads:
        return {}
    dmat = oracle.pairwise_distances(heads)
    out: dict[NodeId, tuple[NodeId, ...]] = {}
    for i, h in enumerate(heads):
        near = dmat[i] <= reach  # UNREACHABLE never passes the test
        near[i] = False
        out[h] = tuple(w for j, w in enumerate(heads) if near[j])
    return out


def adjacent_head_pairs(clustering: Clustering) -> set[Edge]:
    """Unordered pairs of *adjacent* clusterheads (Definition 2).

    Clusters C1, C2 are adjacent iff some G-edge joins a member of C1 to a
    member of C2.  Because heads are > k >= 1 hops apart, the two endpoints
    of such an edge are never both clusterheads, matching the definition's
    parenthetical.
    """
    head_of = clustering.head_of
    pairs: set[Edge] = set()
    for u, v in clustering.graph.edges:
        hu, hv = head_of[u], head_of[v]
        if hu != hv:
            if u == hu and v == hv:  # pragma: no cover - excluded by k-hop IS
                raise ValidationError(
                    f"adjacent heads {u},{v} are direct neighbors; "
                    "k-hop independence is violated"
                )
            pairs.add(normalize_edge(hu, hv))
    return pairs


def ancr_neighbors(clustering: Clustering) -> dict[NodeId, tuple[NodeId, ...]]:
    """A-NCR (the paper's rule): neighbor heads = adjacent clusterheads."""
    out: dict[NodeId, list[NodeId]] = {h: [] for h in clustering.heads}
    for a, b in adjacent_head_pairs(clustering):
        out[a].append(b)
        out[b].append(a)
    return {h: tuple(sorted(v)) for h, v in out.items()}


def wu_lou_neighbors(clustering: Clustering) -> dict[NodeId, tuple[NodeId, ...]]:
    """Wu & Lou "2.5-hop coverage" [17] — defined for k = 1 clustering only.

    Head ``u`` covers (i) all heads within 2 hops, and (ii) heads at exactly
    3 hops that have at least one member inside ``u``'s 2-hop neighborhood.
    """
    if clustering.k != 1:
        raise InvalidParameterError(
            f"Wu-Lou 2.5-hop coverage applies to k=1 clustering, got k={clustering.k}"
        )
    g = clustering.graph
    oracle = g.oracle
    heads = clustering.heads
    out: dict[NodeId, tuple[NodeId, ...]] = {}
    for u in heads:
        dmap = oracle.ball_map(u, 3)
        within2 = {w for w, d in dmap.items() if d <= 2}
        covered: list[NodeId] = []
        for v in heads:
            if v == u:
                continue
            d = dmap.get(v, UNREACHABLE)
            if d <= 2:
                covered.append(v)
            elif d == 3:
                # v's cluster has a member within u's 2-hop neighborhood?
                if any(w in within2 for w in clustering.members(v)):
                    covered.append(v)
        out[u] = tuple(covered)
    return out


def neighbor_pairs(neighbor_map: NeighborMap) -> set[Edge]:
    """All unordered pairs implied by a neighbor map (direction dropped)."""
    pairs: set[Edge] = set()
    for h, nbrs in neighbor_map.items():
        for w in nbrs:
            pairs.add(normalize_edge(h, w))
    return pairs


def is_symmetric(neighbor_map: NeighborMap) -> bool:
    """Whether ``v in N(u)`` always implies ``u in N(v)``."""
    for h, nbrs in neighbor_map.items():
        for w in nbrs:
            if h not in neighbor_map.get(w, ()):
                return False
    return True


def cluster_graph_connected(
    heads: tuple[NodeId, ...], pairs: set[Edge]
) -> bool:
    """Connectivity of the cluster graph ``G'`` via union-find.

    ``heads`` with no pairs counts as connected iff there is at most one
    head.
    """
    if len(heads) <= 1:
        return True
    parent = {h: h for h in heads}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    roots = {find(h) for h in heads}
    return len(roots) == 1


#: Registry of neighbor rules usable in the end-to-end pipeline.
NEIGHBOR_RULES = {
    "NC": nc_neighbors,
    "AC": ancr_neighbors,
}


def resolve_neighbor_rule(name: str):
    """Look up a neighbor rule by registry name (``"NC"`` or ``"AC"``)."""
    try:
        return NEIGHBOR_RULES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown neighbor rule {name!r}; known: {sorted(NEIGHBOR_RULES)}"
        ) from None
