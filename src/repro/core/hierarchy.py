"""Hierarchical (multi-level) clustering — the §2 extension.

"High level clustering, clustering applied recursively over clusterheads,
is also feasible and effective in even larger networks."  This module
realizes that: level-1 k-hop clustering of ``G`` produces a cluster graph
G'' (adjacent clusterheads); level 2 clusters *that* graph the same way;
and so on, until a single apex cluster remains or a level limit is hit.

Each level l > 1 works on the **adjacent-cluster graph of the previous
level**: vertices are the previous level's clusterheads, edges join heads
of adjacent clusters.  Theorem 1 guarantees each such graph is connected,
so the recursion is well-defined all the way up.

The result is the tree-of-clusters hierarchy used by frameworks like MMWN
[15]: every node has a chain of heads ``level-1 head -> level-2 head ->
...``, and aggregate routing state shrinks geometrically with each level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import InvalidParameterError
from ..net.graph import Graph
from ..types import NodeId
from .clustering import Clustering, khop_cluster
from .neighbor import adjacent_head_pairs

__all__ = ["HierarchyLevel", "ClusterHierarchy", "build_hierarchy"]


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the hierarchy.

    Attributes:
        level: 1-based level index.
        graph: the graph clustered at this level (level 1: the network G;
            level l: the adjacent-cluster graph of level l-1, with vertices
            relabelled 0..h-1).
        clustering: the k-hop clustering of ``graph``.
        node_ids: original network IDs of this level's graph vertices
            (``node_ids[i]`` is the network node that vertex ``i``
            represents).
    """

    level: int
    graph: Graph
    clustering: Clustering
    node_ids: tuple[NodeId, ...]

    @property
    def heads(self) -> tuple[NodeId, ...]:
        """This level's clusterheads, as original network IDs."""
        return tuple(self.node_ids[h] for h in self.clustering.heads)


@dataclass(frozen=True)
class ClusterHierarchy:
    """A full multi-level clustering.

    Attributes:
        levels: bottom-up list of levels (levels[0] clusters the network).
        ks: the per-level k parameters used.
    """

    levels: tuple[HierarchyLevel, ...]
    ks: tuple[int, ...]

    @property
    def depth(self) -> int:
        """Number of levels built."""
        return len(self.levels)

    @property
    def apex_heads(self) -> tuple[NodeId, ...]:
        """Clusterheads of the top level (original network IDs)."""
        return self.levels[-1].heads

    def head_chain(self, node: NodeId) -> tuple[NodeId, ...]:
        """The node's chain of heads, one per level, bottom-up.

        ``head_chain(u)[0]`` is u's level-1 clusterhead; the last entry is
        its apex-cluster head.  Every entry is an original network ID.
        """
        chain: list[NodeId] = []
        current = node
        for lvl in self.levels:
            try:
                idx = lvl.node_ids.index(current)
            except ValueError:  # pragma: no cover - defensive
                raise InvalidParameterError(
                    f"node {current} is not a vertex of level {lvl.level}"
                ) from None
            head_idx = lvl.clustering.cluster_of(idx)
            current = lvl.node_ids[head_idx]
            chain.append(current)
        return tuple(chain)

    def heads_per_level(self) -> list[int]:
        """Clusterhead counts per level (monotonically non-increasing)."""
        return [len(lvl.clustering.heads) for lvl in self.levels]


def _adjacent_cluster_graph(
    clustering: Clustering, node_ids: Sequence[NodeId]
) -> tuple[Graph, tuple[NodeId, ...]]:
    """The (relabelled) adjacent-cluster graph G'' of one level."""
    heads = clustering.heads
    index = {h: i for i, h in enumerate(heads)}
    edges = [
        (index[a], index[b]) for a, b in adjacent_head_pairs(clustering)
    ]
    graph = Graph(len(heads), edges)
    ids = tuple(node_ids[h] for h in heads)
    return graph, ids


def build_hierarchy(
    graph: Graph,
    ks: "int | Sequence[int]",
    *,
    max_levels: int = 8,
    membership: Optional[str] = None,
) -> ClusterHierarchy:
    """Cluster recursively until one cluster remains (or levels run out).

    Args:
        graph: connected network graph.
        ks: a single k used at every level, or a per-level sequence (the
            last entry repeats if more levels are needed).
        max_levels: recursion cap.
        membership: membership policy name for every level (default
            ID-based).

    Returns:
        The bottom-up :class:`ClusterHierarchy`.
    """
    if isinstance(ks, int):
        ks_seq: list[int] = [ks]
    else:
        ks_seq = list(ks)
        if not ks_seq:
            raise InvalidParameterError("ks must not be empty")
    if max_levels < 1:
        raise InvalidParameterError("max_levels must be >= 1")

    levels: list[HierarchyLevel] = []
    used_ks: list[int] = []
    cur_graph = graph
    cur_ids: tuple[NodeId, ...] = tuple(graph.nodes())
    for level in range(1, max_levels + 1):
        k = ks_seq[min(level - 1, len(ks_seq) - 1)]
        clustering = khop_cluster(cur_graph, k, membership=membership)
        levels.append(
            HierarchyLevel(
                level=level,
                graph=cur_graph,
                clustering=clustering,
                node_ids=cur_ids,
            )
        )
        used_ks.append(k)
        if clustering.num_clusters <= 1:
            break
        cur_graph, cur_ids = _adjacent_cluster_graph(clustering, cur_ids)
    return ClusterHierarchy(levels=tuple(levels), ks=tuple(used_ks))
