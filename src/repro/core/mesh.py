"""Mesh-based gateway selection (baseline, [16] generalized to k hops).

The mesh scheme connects every clusterhead to **all** of its neighbor
clusterheads: for each selected neighbor pair the interior nodes of the
canonical virtual link become gateways.  Combined with the NC rule this is
the paper's NC-Mesh baseline; combined with A-NCR it is AC-Mesh.

Because A-NCR neighbor sets are subsets of NC neighbor sets and both use the
same canonical paths, AC-Mesh gateway sets are always subsets of NC-Mesh
gateway sets — an invariant the property tests enforce.
"""

from __future__ import annotations

from ..types import Edge
from .virtual_graph import VirtualGraph

__all__ = ["mesh_selected_links", "mesh_gateways"]


def mesh_selected_links(vgraph: VirtualGraph) -> set[Edge]:
    """The mesh keeps every virtual link of the neighbor relation."""
    return {(link.u, link.v) for link in vgraph.links()}


def mesh_gateways(vgraph: VirtualGraph) -> frozenset[int]:
    """Gateways of the mesh scheme: interiors of all virtual links."""
    return vgraph.gateways_for(mesh_selected_links(vgraph))
