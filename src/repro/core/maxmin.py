"""Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh — Infocom 2000).

The paper's related work ([2]) cites Max-Min as the k-hop *core* style
alternative to its own lowest-ID k-hop clustering: a 2d-round localized
heuristic in which node IDs flood outward for ``d`` rounds of MAX, then
``d`` rounds of MIN, and the rule set below elects clusterheads.  We
implement it as a comparison baseline (ablation): same k-hop dominating
property, but clusterheads may be closer than k+1 hops to each other
(no independent-set guarantee), typically electing *more* heads.

Algorithm (original formulation, synchronous):

1. ``winner_0(u) = u``.
2. Floodmax, d rounds: ``winner_r(u) = max over closed neighborhood of
   winner_{r-1}``.
3. Floodmin, d rounds, starting from the floodmax result.
4. Rules at each node u:
   * if u's own ID appears among its floodmin values -> u is a head
     (rule: it "won" some region);
   * else if some ID appears in both u's floodmax and floodmin value
     lists (a *node pair*), the minimum such ID is u's head;
   * else u's head is its floodmax winner ``winner_d(u)``.
5. Each non-head joins the chosen head's cluster (heads within d hops by
   construction of the floods).

After rule evaluation some chosen heads may themselves have deferred to
another head; we resolve chains by pointer-jumping to the final head, and
(as in the original paper's "convergecast" fix-ups) any node whose chosen
head resolves to something more than d hops away falls back to the
nearest elected head within d hops — every elected head's own cluster is
within range because it heard its own ID come back.
"""

from __future__ import annotations

import numpy as np

from ..errors import DisconnectedGraphError, InvalidParameterError
from ..net.graph import Graph
from ..types import NodeId
from .clustering import Clustering

__all__ = ["maxmin_cluster"]


def maxmin_cluster(graph: Graph, d: int, *, require_connected: bool = True) -> Clustering:
    """Run Max-Min d-cluster formation; returns a :class:`Clustering`.

    The result satisfies the d-hop dominating property (every node within
    d hops of its head) but **not** the d-hop independent-set property —
    use it as the related-work baseline it is, not as a drop-in for the
    paper's clustering (validation: run only ``check_partition`` and
    ``check_dominating`` on it).
    """
    if d < 1:
        raise InvalidParameterError(f"d must be >= 1, got {d}")
    if require_connected and not graph.is_connected():
        raise DisconnectedGraphError("maxmin_cluster requires a connected graph")
    n = graph.n
    if n == 0:
        return Clustering(graph=graph, k=d, head_of=(), heads=(), rounds=0,
                          priority_name="maxmin", membership_name="maxmin")

    # --- floodmax -------------------------------------------------------- #
    winner = list(range(n))
    maxlog = [[u] for u in range(n)]  # winner_r(u) per round, r=0..d
    for _ in range(d):
        new = [
            max(winner[u], *(winner[v] for v in graph.neighbors(u)))
            if graph.neighbors(u)
            else winner[u]
            for u in range(n)
        ]
        winner = new
        for u in range(n):
            maxlog[u].append(winner[u])
    floodmax_winner = winner[:]

    # --- floodmin -------------------------------------------------------- #
    minlog = [[floodmax_winner[u]] for u in range(n)]
    for _ in range(d):
        new = [
            min(winner[u], *(winner[v] for v in graph.neighbors(u)))
            if graph.neighbors(u)
            else winner[u]
            for u in range(n)
        ]
        winner = new
        for u in range(n):
            minlog[u].append(winner[u])

    # --- election rules --------------------------------------------------- #
    chosen = [-1] * n
    for u in range(n):
        min_vals = set(minlog[u][1:])  # floodmin rounds 1..d
        max_vals = set(maxlog[u][1:])  # floodmax rounds 1..d
        if u in min_vals:
            chosen[u] = u
        else:
            pairs = min_vals & max_vals
            if pairs:
                chosen[u] = min(pairs)
            else:
                chosen[u] = floodmax_winner[u]

    heads = sorted(u for u in range(n) if chosen[u] == u)
    head_set = set(heads)

    # --- resolution ------------------------------------------------------- #
    # Chains: u chose h, but h itself chose h'. Pointer-jump to the root.
    def resolve(u: NodeId) -> NodeId:
        seen = set()
        cur = u
        while chosen[cur] != cur:
            if cur in seen:  # cycle (possible in pathological ties): break by min
                return min(seen)
            seen.add(cur)
            cur = chosen[cur]
        return cur

    head_of = [0] * n
    # Per-node d-balls replace the all-pairs matrix: every distance the
    # rules consult is <= d by construction of the floods.
    oracle = graph.oracle
    for u in range(n):
        ball_nodes, _ = oracle.ball(u, d)
        h = resolve(u)
        pos = int(np.searchsorted(ball_nodes, h))
        in_ball = pos < len(ball_nodes) and int(ball_nodes[pos]) == h
        if h not in head_set or not in_ball:
            # convergecast fix-up: nearest elected head within d hops.
            # Only this rare branch needs actual distances, and only to
            # the heads: on a pair-cheap backend (landmark) that is a
            # batch of O(|label|) joins; otherwise the depth-limited
            # d-ball stays the output-sensitive choice.
            if oracle.fast_pairs:
                head_dists = oracle.distances(u, heads)
                du = {
                    x: int(dd)
                    for x, dd in zip(heads, head_dists)
                    if dd <= d
                }
            else:
                ball_du = oracle.ball_map(u, d)
                du = {x: ball_du[x] for x in heads if x in ball_du}
            in_range = list(du)
            if not in_range:
                # no elected head within range: u becomes a head itself
                head_set.add(u)
                heads = sorted(head_set)
                h = u
            else:
                h = min(in_range, key=lambda x: (du[x], x))
        head_of[u] = h
    # heads that lost all members to fix-ups may still self-head; keep them
    final_heads = tuple(sorted({head_of[u] for u in range(n)} | {
        h for h in head_set if head_of[h] == h
    }))
    # normalize: every final head heads itself
    for h in final_heads:
        head_of[h] = h

    return Clustering(
        graph=graph,
        k=d,
        head_of=tuple(head_of),
        heads=final_heads,
        rounds=2 * d,
        priority_name="maxmin",
        membership_name="maxmin",
    )
