"""The paper's primary contribution: k-hop clustering, A-NCR, LMSTGA.

Layout:

* :mod:`~repro.core.priorities`, :mod:`~repro.core.membership` — the
  pluggable election and join policies of §3.
* :mod:`~repro.core.clustering` — the iterative k-hop clustering engine.
* :mod:`~repro.core.validate` — invariant checks (k-hop DS / IS, partition).
* :mod:`~repro.core.neighbor` — phase 1: NC, **A-NCR**, Wu-Lou coverage.
* :mod:`~repro.core.virtual_graph` — virtual links / the cluster graph.
* :mod:`~repro.core.mesh`, :mod:`~repro.core.lmst`, :mod:`~repro.core.gmst`,
  :mod:`~repro.core.wulou` — phase 2 gateway algorithms.
* :mod:`~repro.core.pipeline` — the five end-to-end algorithms of §4.
"""

from .clustering import Clustering, khop_cluster
from .gmst import gmst_gateways, gmst_selected_links, gmst_virtual_graph
from .hierarchy import ClusterHierarchy, HierarchyLevel, build_hierarchy
from .lmst import lmst_gateways, lmst_selected_links, local_mst_edges
from .membership import (
    DistanceBasedJoin,
    IDBasedJoin,
    JoinContext,
    MembershipPolicy,
    SizeBasedJoin,
    resolve_membership,
)
from .mesh import mesh_gateways, mesh_selected_links
from .neighbor import (
    adjacent_head_pairs,
    ancr_neighbors,
    cluster_graph_connected,
    is_symmetric,
    nc_neighbors,
    neighbor_pairs,
    wu_lou_neighbors,
)
from .pipeline import (
    ALGORITHMS,
    BackboneResult,
    algorithm_names,
    build_all_backbones,
    build_backbone,
    run_pipeline,
)
from .priorities import (
    ExplicitPriority,
    HighestDegree,
    LowestID,
    PriorityScheme,
    RandomTimer,
    ResidualEnergy,
    resolve_priority,
)
from .validate import validate_clustering
from .virtual_graph import VirtualGraph, VirtualLink
from .wulou import wu_lou_gateways

__all__ = [
    "Clustering",
    "khop_cluster",
    "ClusterHierarchy",
    "HierarchyLevel",
    "build_hierarchy",
    "validate_clustering",
    "PriorityScheme",
    "LowestID",
    "HighestDegree",
    "ResidualEnergy",
    "RandomTimer",
    "ExplicitPriority",
    "resolve_priority",
    "MembershipPolicy",
    "IDBasedJoin",
    "DistanceBasedJoin",
    "SizeBasedJoin",
    "JoinContext",
    "resolve_membership",
    "nc_neighbors",
    "ancr_neighbors",
    "wu_lou_neighbors",
    "adjacent_head_pairs",
    "neighbor_pairs",
    "is_symmetric",
    "cluster_graph_connected",
    "VirtualGraph",
    "VirtualLink",
    "mesh_selected_links",
    "mesh_gateways",
    "local_mst_edges",
    "lmst_selected_links",
    "lmst_gateways",
    "gmst_virtual_graph",
    "gmst_selected_links",
    "gmst_gateways",
    "wu_lou_gateways",
    "ALGORITHMS",
    "algorithm_names",
    "BackboneResult",
    "build_backbone",
    "build_all_backbones",
    "run_pipeline",
]
