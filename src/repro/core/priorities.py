"""Node priority schemes for clusterhead election.

The paper's clustering uses "the traditional lowest ID clustering algorithm"
but explicitly lists alternatives (§2): node degree, node speed, sum of
distances, random timers, and — for the power-aware variant of §3.3 —
residual energy.  A priority scheme assigns every node a totally ordered
*key*; **lower keys win** the clusterhead election.  Every scheme appends
the node ID as the final tie-breaker, so keys are always strictly totally
ordered and elections deterministic.

Two representations of the same order exist side by side:

* :meth:`PriorityScheme.keys` — one Python tuple per node, compared
  lexicographically.  The scalar clustering engine consumes these.
* :meth:`PriorityScheme.key_array` — a ``(components, n)`` numpy array of
  the tuple components *without* the trailing node ID, most-significant
  component first.  :func:`key_ranks` lexsorts it (ID appended as the
  final sort key) into a dense ``0..n-1`` rank vector — a single int64
  per node that the batched clustering engine can min-propagate over the
  CSR arrays.  Both representations must induce the identical total
  order; the property tests enforce this via scalar/batched clustering
  equivalence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..net.graph import Graph

__all__ = [
    "PriorityScheme",
    "LowestID",
    "HighestDegree",
    "ResidualEnergy",
    "RandomTimer",
    "ExplicitPriority",
    "key_ranks",
    "resolve_priority",
]

#: A priority key: any totally ordered tuple ending in the node ID.
PriorityKey = Tuple


class PriorityScheme(ABC):
    """Strategy object producing one comparable key per node (lower wins)."""

    #: Human-readable scheme name, used in result provenance.
    name: str = "abstract"

    @abstractmethod
    def keys(self, graph: Graph) -> list[PriorityKey]:
        """Per-node keys, indexed by node ID."""

    def key_array(self, graph: Graph) -> np.ndarray:
        """Key components as a ``(components, n)`` lexsort-able array.

        Row 0 is the most-significant component; the node ID tie-break is
        *not* included (:func:`key_ranks` appends it).  Must induce the
        same total order as :meth:`keys`.  Schemes that cannot express
        their keys as numeric arrays may leave this unimplemented — the
        batched clustering engine then falls back to ranking the Python
        tuples from :meth:`keys`.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LowestID(PriorityScheme):
    """The paper's default: the node with the smallest ID wins."""

    name = "lowest-id"

    def keys(self, graph: Graph) -> list[PriorityKey]:
        return [(u,) for u in graph.nodes()]

    def key_array(self, graph: Graph) -> np.ndarray:
        # The node ID *is* the key; no components beyond the tie-break.
        return np.zeros((0, graph.n))


class HighestDegree(PriorityScheme):
    """Degree-based priority [Gerla & Tsai]: well-connected nodes win.

    Key is ``(-degree, id)`` so higher degree sorts first and ties fall back
    to lowest ID.
    """

    name = "highest-degree"

    def keys(self, graph: Graph) -> list[PriorityKey]:
        return [(-graph.degree(u), u) for u in graph.nodes()]

    def key_array(self, graph: Graph) -> np.ndarray:
        degs = np.fromiter(
            (graph.degree(u) for u in graph.nodes()),
            dtype=np.int64,
            count=graph.n,
        )
        return -degs[np.newaxis, :]


class ResidualEnergy(PriorityScheme):
    """Energy-based priority (§3.3): the node with most residual energy wins.

    Args:
        residuals: per-node residual energy (e.g. from
            :meth:`repro.net.energy.EnergyModel.residuals`).
    """

    name = "residual-energy"

    def __init__(self, residuals: Sequence[float]) -> None:
        self._residuals = [float(r) for r in residuals]

    def keys(self, graph: Graph) -> list[PriorityKey]:
        if len(self._residuals) != graph.n:
            raise InvalidParameterError(
                f"residual vector has {len(self._residuals)} entries for a "
                f"{graph.n}-node graph"
            )
        return [(-self._residuals[u], u) for u in graph.nodes()]

    def key_array(self, graph: Graph) -> np.ndarray:
        if len(self._residuals) != graph.n:
            raise InvalidParameterError(
                f"residual vector has {len(self._residuals)} entries for a "
                f"{graph.n}-node graph"
            )
        return -np.asarray(self._residuals, dtype=np.float64)[np.newaxis, :]


class RandomTimer(PriorityScheme):
    """Random-timer priority [18]: each node draws a uniform backoff.

    The node whose timer fires first (smallest draw) wins; node ID breaks
    the (measure-zero, but float) ties.  Deterministic given ``seed``.
    """

    name = "random-timer"

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    def keys(self, graph: Graph) -> list[PriorityKey]:
        rng = np.random.default_rng(self._seed)
        draws = rng.random(graph.n)
        return [(float(draws[u]), u) for u in graph.nodes()]

    def key_array(self, graph: Graph) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        return rng.random(graph.n)[np.newaxis, :]


class ExplicitPriority(PriorityScheme):
    """Adapter for caller-supplied keys (ID appended as tie-break).

    Useful in tests and in the maintenance code, which re-clusters with
    hand-crafted priorities.
    """

    name = "explicit"

    def __init__(self, values: Sequence[float]) -> None:
        self._values = list(values)

    def keys(self, graph: Graph) -> list[PriorityKey]:
        if len(self._values) != graph.n:
            raise InvalidParameterError(
                f"priority vector has {len(self._values)} entries for a "
                f"{graph.n}-node graph"
            )
        return [(self._values[u], u) for u in graph.nodes()]

    def key_array(self, graph: Graph) -> np.ndarray:
        if len(self._values) != graph.n:
            raise InvalidParameterError(
                f"priority vector has {len(self._values)} entries for a "
                f"{graph.n}-node graph"
            )
        # Caller-supplied keys are only required to be *comparable*; use
        # the array form only when float64 represents every value
        # exactly (Python's int/float comparison is exact, so huge ints
        # that would collide in float64 fail this test), else fall back
        # to ranking the Python keys so both engines see the same order.
        try:
            arr = np.asarray(self._values, dtype=np.float64)
        except (TypeError, ValueError, OverflowError):
            raise NotImplementedError from None
        if arr.shape != (graph.n,) or not all(
            float(v) == v for v in self._values
        ):
            raise NotImplementedError
        return arr[np.newaxis, :]


def key_ranks(scheme: PriorityScheme, graph: Graph) -> np.ndarray:
    """Dense int64 rank per node: ``rank[u] < rank[v]`` iff ``u``'s key wins.

    Lexsorts the scheme's :meth:`~PriorityScheme.key_array` components
    with the node ID appended as the final tie-break, yielding a strictly
    totally ordered ``0..n-1`` rank vector — the single-word key
    representation the batched clustering engine min-propagates.  Schemes
    without a ``key_array`` fall back to ranking the Python tuples from
    :meth:`~PriorityScheme.keys` (same order, slower to build).
    """
    n = graph.n
    ids = np.arange(n, dtype=np.int64)
    try:
        comps = np.atleast_2d(scheme.key_array(graph))
    except NotImplementedError:
        keys = scheme.keys(graph)
        if len(keys) != n:
            raise InvalidParameterError(
                "priority scheme returned wrong key count"
            )
        order = np.asarray(
            sorted(range(n), key=keys.__getitem__), dtype=np.int64
        )
    else:
        if comps.shape[1:] != (n,):
            raise InvalidParameterError(
                f"key_array must have shape (components, {n}), got "
                f"{comps.shape}"
            )
        # np.lexsort treats the *last* key as most significant.
        order = np.lexsort((ids, *comps[::-1]))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ids
    return ranks


_NAMED = {
    "lowest-id": LowestID,
    "highest-degree": HighestDegree,
}


def resolve_priority(spec: "PriorityScheme | str | None") -> PriorityScheme:
    """Resolve a priority spec: a scheme instance, a name, or None (default).

    Accepted names: ``"lowest-id"``, ``"highest-degree"``.  Schemes needing
    state (energy, random timer) must be passed as instances.
    """
    if spec is None:
        return LowestID()
    if isinstance(spec, PriorityScheme):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise InvalidParameterError(
                f"unknown priority scheme {spec!r}; known: {sorted(_NAMED)}"
            ) from None
    raise InvalidParameterError(f"cannot interpret priority spec {spec!r}")
