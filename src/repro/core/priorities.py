"""Node priority schemes for clusterhead election.

The paper's clustering uses "the traditional lowest ID clustering algorithm"
but explicitly lists alternatives (§2): node degree, node speed, sum of
distances, random timers, and — for the power-aware variant of §3.3 —
residual energy.  A priority scheme assigns every node a totally ordered
*key*; **lower keys win** the clusterhead election.  Every scheme appends
the node ID as the final tie-breaker, so keys are always strictly totally
ordered and elections deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..net.graph import Graph

__all__ = [
    "PriorityScheme",
    "LowestID",
    "HighestDegree",
    "ResidualEnergy",
    "RandomTimer",
    "ExplicitPriority",
    "resolve_priority",
]

#: A priority key: any totally ordered tuple ending in the node ID.
PriorityKey = Tuple


class PriorityScheme(ABC):
    """Strategy object producing one comparable key per node (lower wins)."""

    #: Human-readable scheme name, used in result provenance.
    name: str = "abstract"

    @abstractmethod
    def keys(self, graph: Graph) -> list[PriorityKey]:
        """Per-node keys, indexed by node ID."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LowestID(PriorityScheme):
    """The paper's default: the node with the smallest ID wins."""

    name = "lowest-id"

    def keys(self, graph: Graph) -> list[PriorityKey]:
        return [(u,) for u in graph.nodes()]


class HighestDegree(PriorityScheme):
    """Degree-based priority [Gerla & Tsai]: well-connected nodes win.

    Key is ``(-degree, id)`` so higher degree sorts first and ties fall back
    to lowest ID.
    """

    name = "highest-degree"

    def keys(self, graph: Graph) -> list[PriorityKey]:
        return [(-graph.degree(u), u) for u in graph.nodes()]


class ResidualEnergy(PriorityScheme):
    """Energy-based priority (§3.3): the node with most residual energy wins.

    Args:
        residuals: per-node residual energy (e.g. from
            :meth:`repro.net.energy.EnergyModel.residuals`).
    """

    name = "residual-energy"

    def __init__(self, residuals: Sequence[float]) -> None:
        self._residuals = [float(r) for r in residuals]

    def keys(self, graph: Graph) -> list[PriorityKey]:
        if len(self._residuals) != graph.n:
            raise InvalidParameterError(
                f"residual vector has {len(self._residuals)} entries for a "
                f"{graph.n}-node graph"
            )
        return [(-self._residuals[u], u) for u in graph.nodes()]


class RandomTimer(PriorityScheme):
    """Random-timer priority [18]: each node draws a uniform backoff.

    The node whose timer fires first (smallest draw) wins; node ID breaks
    the (measure-zero, but float) ties.  Deterministic given ``seed``.
    """

    name = "random-timer"

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    def keys(self, graph: Graph) -> list[PriorityKey]:
        rng = np.random.default_rng(self._seed)
        draws = rng.random(graph.n)
        return [(float(draws[u]), u) for u in graph.nodes()]


class ExplicitPriority(PriorityScheme):
    """Adapter for caller-supplied keys (ID appended as tie-break).

    Useful in tests and in the maintenance code, which re-clusters with
    hand-crafted priorities.
    """

    name = "explicit"

    def __init__(self, values: Sequence[float]) -> None:
        self._values = list(values)

    def keys(self, graph: Graph) -> list[PriorityKey]:
        if len(self._values) != graph.n:
            raise InvalidParameterError(
                f"priority vector has {len(self._values)} entries for a "
                f"{graph.n}-node graph"
            )
        return [(self._values[u], u) for u in graph.nodes()]


_NAMED = {
    "lowest-id": LowestID,
    "highest-degree": HighestDegree,
}


def resolve_priority(spec: "PriorityScheme | str | None") -> PriorityScheme:
    """Resolve a priority spec: a scheme instance, a name, or None (default).

    Accepted names: ``"lowest-id"``, ``"highest-degree"``.  Schemes needing
    state (energy, random timer) must be passed as instances.
    """
    if spec is None:
        return LowestID()
    if isinstance(spec, PriorityScheme):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise InvalidParameterError(
                f"unknown priority scheme {spec!r}; known: {sorted(_NAMED)}"
            ) from None
    raise InvalidParameterError(f"cannot interpret priority spec {spec!r}")
