"""Structural validation of clusterings (the paper's stated invariants).

Each ``check_*`` function raises :class:`~repro.errors.ValidationError` with
a precise message on the first violation; :func:`validate_clustering` runs
the full battery.  The property-based tests drive these checks over large
random graph families, so any algorithmic regression in the clustering core
surfaces as a validation failure rather than a silently wrong experiment.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..net.graph import UNREACHABLE
from .clustering import Clustering

__all__ = [
    "check_partition",
    "check_dominating",
    "check_independent",
    "check_heads_consistent",
    "validate_clustering",
]


def check_heads_consistent(clustering: Clustering) -> None:
    """Heads list matches the fixed points of ``head_of``."""
    fixed = tuple(
        u for u in clustering.graph.nodes() if clustering.head_of[u] == u
    )
    if fixed != clustering.heads:
        raise ValidationError(
            f"heads tuple {clustering.heads} != head_of fixed points {fixed}"
        )


def check_partition(clustering: Clustering) -> None:
    """Every node belongs to exactly one cluster led by a real head."""
    heads = set(clustering.heads)
    for u in clustering.graph.nodes():
        h = clustering.head_of[u]
        if h < 0:
            raise ValidationError(f"node {u} was never assigned a cluster")
        if h not in heads:
            raise ValidationError(f"node {u} assigned to non-head {h}")
    total = sum(len(clustering.members(h)) for h in clustering.heads)
    if total != clustering.graph.n:
        raise ValidationError(
            f"cluster sizes sum to {total}, expected {clustering.graph.n}"
        )


def check_dominating(clustering: Clustering) -> None:
    """k-hop dominating set: every member is within k hops of its head."""
    g = clustering.graph
    for u in g.nodes():
        h = clustering.head_of[u]
        d = g.hop_distance(u, h)
        if d >= UNREACHABLE or d > clustering.k:
            raise ValidationError(
                f"node {u} is {d} hops from its head {h} (> k={clustering.k})"
            )


def check_independent(clustering: Clustering) -> None:
    """k-hop independent set: heads are pairwise more than k hops apart."""
    g = clustering.graph
    heads = clustering.heads
    for i, h1 in enumerate(heads):
        for h2 in heads[i + 1 :]:
            d = g.hop_distance(h1, h2)
            if d <= clustering.k:
                raise ValidationError(
                    f"heads {h1} and {h2} are only {d} hops apart "
                    f"(<= k={clustering.k})"
                )


def validate_clustering(clustering: Clustering) -> None:
    """Run every clustering invariant check; raises on the first failure."""
    check_heads_consistent(clustering)
    check_partition(clustering)
    check_dominating(clustering)
    check_independent(clustering)
