"""Structural validation of clusterings (the paper's stated invariants).

Each ``check_*`` function raises :class:`~repro.errors.ValidationError` with
a precise message on the first violation; :func:`validate_clustering` runs
the full battery.  The property-based tests drive these checks over large
random graph families, so any algorithmic regression in the clustering core
surfaces as a validation failure rather than a silently wrong experiment.
"""

from __future__ import annotations

from ..errors import ValidationError
from .clustering import Clustering

__all__ = [
    "check_partition",
    "check_dominating",
    "check_independent",
    "check_heads_consistent",
    "validate_clustering",
]


def check_heads_consistent(clustering: Clustering) -> None:
    """Heads list matches the fixed points of ``head_of``."""
    fixed = tuple(
        u for u in clustering.graph.nodes() if clustering.head_of[u] == u
    )
    if fixed != clustering.heads:
        raise ValidationError(
            f"heads tuple {clustering.heads} != head_of fixed points {fixed}"
        )


def check_partition(clustering: Clustering) -> None:
    """Every node belongs to exactly one cluster led by a real head."""
    heads = set(clustering.heads)
    for u in clustering.graph.nodes():
        h = clustering.head_of[u]
        if h < 0:
            raise ValidationError(f"node {u} was never assigned a cluster")
        if h not in heads:
            raise ValidationError(f"node {u} assigned to non-head {h}")
    total = sum(len(clustering.members(h)) for h in clustering.heads)
    if total != clustering.graph.n:
        raise ValidationError(
            f"cluster sizes sum to {total}, expected {clustering.graph.n}"
        )


def check_dominating(clustering: Clustering) -> None:
    """k-hop dominating set: every member is within k hops of its head.

    One k-ball query per head replaces per-pair BFS.  Every node is checked
    against the ball of its assigned head, so a node pointing at a non-head
    (or left unassigned) fails here even when run standalone.
    """
    g = clustering.graph
    oracle = g.oracle
    k = clustering.k
    ball_of = {
        h: set(oracle.ball(h, k)[0].tolist()) for h in clustering.heads
    }
    for u in g.nodes():
        h = clustering.head_of[u]
        ball = ball_of.get(h)
        if ball is None:
            raise ValidationError(
                f"node {u} is assigned to {h}, which is not a clusterhead"
            )
        if u not in ball:
            raise ValidationError(
                f"node {u} is more than k={k} hops from its head {h}"
            )


def check_independent(clustering: Clustering) -> None:
    """k-hop independent set: heads are pairwise more than k hops apart.

    Checked per head with one k-ball query: any other head inside the
    ball is a violation.
    """
    g = clustering.graph
    oracle = g.oracle
    heads = set(clustering.heads)
    for h1 in clustering.heads:
        ball_nodes, ball_dists = oracle.ball(h1, clustering.k)
        for h2, d in zip(ball_nodes.tolist(), ball_dists.tolist()):
            if h2 != h1 and h2 in heads:
                raise ValidationError(
                    f"heads {h1} and {h2} are only {d} hops apart "
                    f"(<= k={clustering.k})"
                )


def validate_clustering(clustering: Clustering) -> None:
    """Run every clustering invariant check; raises on the first failure."""
    check_heads_consistent(clustering)
    check_partition(clustering)
    check_dominating(clustering)
    check_independent(clustering)
