"""LMSTGA — the LMST-based gateway algorithm (§3.2, the paper's core).

Li, Hou and Sha's LMST topology control is lifted to the virtual graph:
every clusterhead ``u`` builds a *local* minimum spanning tree over its
virtual "1-hop" neighborhood — itself plus its neighbor clusterheads, with
every virtual link known between members of that set — and keeps only the
links to its **on-tree neighbors** (heads adjacent to ``u`` in ``u``'s local
MST).  The union of all kept links connects the cluster graph (Theorem 2),
and only the interior nodes of kept links are marked as gateways.

Link weights use the strict total order ``(hops, min_id, max_id)`` (see
:mod:`repro.core.virtual_graph`), so each local MST is unique and the
induction of Theorem 2 ("every strictly smaller link is already connected")
applies verbatim.

The information needed by each head — its neighbor set ``S`` and every
neighbor's ``S`` and distances (algorithm lines 7-8) — is available within
2k+1 hops, so the algorithm is localized; the distributed realization lives
in :mod:`repro.sim.protocols.gateway`.
"""

from __future__ import annotations

from typing import Iterable

from ..types import Edge, NodeId, normalize_edge
from .virtual_graph import VirtualGraph

__all__ = ["local_mst_edges", "lmst_selected_links", "lmst_gateways"]


def _kruskal(
    nodes: Iterable[NodeId], edges: list[tuple[tuple[int, int, int], Edge]]
) -> set[Edge]:
    """Minimum spanning forest by Kruskal over totally ordered weights."""
    parent = {v: v for v in nodes}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: set[Edge] = set()
    for _w, (a, b) in sorted(edges):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            chosen.add((a, b))
    return chosen


def local_mst_edges(vgraph: VirtualGraph, head: NodeId) -> set[Edge]:
    """The MST of ``head``'s local view of the virtual graph.

    The local view contains ``head`` and its virtual-link neighbors, plus
    every virtual link joining two members of that set (heads learn their
    neighbors' neighbor sets via the line-7 broadcast).  The view is always
    connected: every neighbor links directly to ``head``.
    """
    view = {head, *vgraph.neighbors(head)}
    edges: list[tuple[tuple[int, int, int], Edge]] = []
    for a in sorted(view):
        for b in vgraph.neighbors(a):
            if b in view and a < b:
                link = vgraph.link(a, b)
                edges.append((link.order_key(), (a, b)))
    return _kruskal(view, edges)


def lmst_selected_links(vgraph: VirtualGraph) -> set[Edge]:
    """Links kept by LMSTGA: each head's on-tree incident links, unioned.

    A link ``(u, v)`` is kept as soon as *either* endpoint has it on its
    local MST — matching LMST's directed "u selects v" semantics followed by
    the union that gateway marking performs (node u marks the path to every
    on-tree neighbor it selected).
    """
    selected: set[Edge] = set()
    for h in vgraph.heads:
        for a, b in local_mst_edges(vgraph, h):
            if h in (a, b):
                selected.add(normalize_edge(a, b))
    return selected


def lmst_gateways(vgraph: VirtualGraph) -> frozenset[int]:
    """Gateways of LMSTGA: interiors of the selected on-tree links."""
    return vgraph.gateways_for(lmst_selected_links(vgraph))
