"""Command-line interface: regenerate any paper artifact from the terminal.

Installed as ``repro-khop`` (see pyproject).  Examples::

    repro-khop figure5 --trials 20          # Figure 5 with a reduced budget
    repro-khop figure4 --k 3 --seed 11      # a Figure-4 style instance
    repro-khop claims --trials 10           # check the six §4 claims
    repro-khop overhead                     # distributed message overhead
    repro-khop traffic --flows 10000        # batch-route a flow workload
    repro-khop traffic --lifetime-epochs 40 # traffic-driven lifetime loop
    repro-khop mobility --snapshots 30      # traffic over RandomWaypoint motion
    repro-khop chaos --seed 7 --events 500  # fault campaign + invariant checks
    repro-khop stats                        # metrics + span flame of a quick run
    repro-khop traffic --trace out.jsonl    # JSONL trace + manifest of the run
    repro-khop all --trials 5               # everything, quickly
"""

from __future__ import annotations

import argparse
import os
import sys
import zlib
from typing import Optional, Sequence

from .figures import ablations, claims, figure4, figure5, figure6, figure7, overhead

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-khop`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-khop",
        description=(
            "Reproduce 'Connected k-Hop Clustering in Ad Hoc Networks' "
            "(Yang, Wu, Cao — ICPP 2005)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trial budget per experiment cell (default: paper's 100 / ±1%% CI rule)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p4 = sub.add_parser("figure4", help="single-instance gateway gallery")
    p4.add_argument("--n", type=int, default=100)
    p4.add_argument("--degree", type=float, default=6.0)
    p4.add_argument("--k", type=int, default=2)
    p4.add_argument("--seed", type=int, default=4)

    pt = sub.add_parser(
        "traffic", help="batch-route a flow workload over the backbone"
    )
    pt.add_argument("--n", type=int, default=400)
    pt.add_argument("--degree", type=float, default=8.0)
    pt.add_argument("--k", type=int, default=2)
    pt.add_argument("--algorithm", default="AC-LMST")
    pt.add_argument(
        "--workload",
        default="uniform",
        choices=("uniform", "cbr", "hotspot", "gossip"),
    )
    pt.add_argument("--flows", type=int, default=5000)
    pt.add_argument("--seed", type=int, default=7)
    pt.add_argument(
        "--lifetime-epochs",
        type=int,
        default=0,
        help="also run the rotation-vs-static traffic-driven lifetime loop",
    )
    pt.add_argument(
        "--backend",
        default="landmark",
        choices=("dense", "lazy", "landmark", "auto"),
        help="hop-distance backend (results are identical on every choice; "
        "landmark keeps the batch's pair queries cheap)",
    )
    pt.add_argument(
        "--balance",
        action="store_true",
        help="load-adaptive multipath routing: spread flows across "
        "k-shortest head walks to flatten backbone hot spots",
    )
    pt.add_argument(
        "--radio-budget",
        type=float,
        default=None,
        metavar="PKTS",
        help="per-radio packet budget; derives per-link capacities from "
        "the backbone and reports congestion drops against them",
    )
    pt.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable the observability layer and write a JSONL trace "
        "(manifest + span tree + metrics snapshot) to PATH",
    )

    pm = sub.add_parser(
        "mobility",
        help="route a workload over RandomWaypoint snapshots (edge-delta engine)",
    )
    pm.add_argument("--n", type=int, default=400)
    pm.add_argument("--degree", type=float, default=8.0)
    pm.add_argument("--k", type=int, default=2)
    pm.add_argument("--algorithm", default="AC-LMST")
    pm.add_argument(
        "--workload",
        default="uniform",
        choices=("uniform", "cbr", "hotspot", "gossip"),
    )
    pm.add_argument("--flows", type=int, default=2000)
    pm.add_argument("--snapshots", type=int, default=20)
    pm.add_argument(
        "--speed",
        type=float,
        nargs=2,
        default=(0.5, 1.5),
        metavar=("VMIN", "VMAX"),
        help="random-waypoint speed range, units per step",
    )
    pm.add_argument("--seed", type=int, default=7)
    pm.add_argument(
        "--engine",
        default="delta",
        choices=("delta", "rebuild"),
        help="incremental edge-delta maintenance vs from-scratch baseline",
    )
    pm.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable the observability layer and write a JSONL trace to PATH",
    )

    pc = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with per-batch invariant checks",
    )
    pc.add_argument("--seed", type=int, default=7)
    pc.add_argument("--events", type=int, default=500)
    pc.add_argument("--n", type=int, default=120)
    pc.add_argument("--degree", type=float, default=8.0)
    pc.add_argument("--k", type=int, default=2)
    pc.add_argument("--algorithm", default="AC-LMST")
    pc.add_argument("--flows", type=int, default=200)
    pc.add_argument(
        "--join-weight",
        type=float,
        default=0.0,
        help="campaign weight of node-arrival events (0 disables growth; "
        "> 0 interleaves grow+shrink+rewire)",
    )
    pc.add_argument(
        "--keep-going",
        action="store_true",
        help="collect every violation instead of stopping at the first",
    )
    pc.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable the observability layer and write a JSONL trace to PATH "
        "(violation repro lines then carry the same flag)",
    )

    ps = sub.add_parser(
        "stats",
        help="run a quick instrumented traffic experiment and print the "
        "metrics registry + span flame summary",
    )
    ps.add_argument("--n", type=int, default=400)
    ps.add_argument("--degree", type=float, default=8.0)
    ps.add_argument("--k", type=int, default=2)
    ps.add_argument("--algorithm", default="AC-LMST")
    ps.add_argument("--flows", type=int, default=1000)
    ps.add_argument("--seed", type=int, default=7)
    ps.add_argument(
        "--backend",
        default="landmark",
        choices=("dense", "lazy", "landmark", "auto"),
    )
    ps.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also write the JSONL trace to PATH",
    )

    pv = sub.add_parser(
        "serve",
        help="run the long-lived engine service over a seeded event "
        "schedule, with crash-consistent checkpoints and replay recovery",
    )
    pv.add_argument("--n", type=int, default=100)
    pv.add_argument("--degree", type=float, default=8.0)
    pv.add_argument("--k", type=int, default=2)
    pv.add_argument("--algorithm", default="NC-Mesh")
    pv.add_argument(
        "--backend",
        default="lazy",
        choices=("dense", "lazy", "landmark", "auto"),
    )
    pv.add_argument("--seed", type=int, default=7)
    pv.add_argument("--events", type=int, default=200)
    pv.add_argument("--base-loss", type=float, default=0.05)
    pv.add_argument("--checkpoint-every", type=int, default=50)
    pv.add_argument("--guard-every", type=int, default=1)
    pv.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="service directory for the event log and checkpoints "
        "(default: in-memory only, no durability)",
    )
    pv.add_argument(
        "--resume",
        action="store_true",
        help="recover from the service directory's durable state and "
        "continue the schedule instead of starting fresh",
    )
    pv.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on event-log appends (faster; kill -9 "
        "consistency is kept, power-loss durability is not)",
    )

    pl = sub.add_parser(
        "lint", help="run the repro-lint static-analysis suite"
    )
    pl.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories relative to the repo root "
        "(default: src tests benchmarks)",
    )
    pl.add_argument(
        "--root",
        default=".",
        help="repository root the paths are resolved against",
    )
    pl.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    sub.add_parser("figure5", help="CDS size vs N, sparse (D=6)")
    sub.add_parser("figure6", help="CDS size vs N, dense (D=10)")
    sub.add_parser("figure7", help="effect of k (heads and CDS size)")
    sub.add_parser("claims", help="verify the six §4 summary claims")
    sub.add_parser("overhead", help="distributed message overhead vs k")
    sub.add_parser("ablations", help="membership/priority/neighbor-rule ablations")
    sub.add_parser("all", help="run every artifact")
    return parser


def _apply_budget(trials: Optional[int]) -> None:
    if trials is not None:
        os.environ["REPRO_TRIALS"] = str(trials)


def _start_tracing() -> None:
    """Switch the observability layer on with a clean registry/tracer."""
    from . import obs

    obs.set_enabled(True)
    obs.reset()
    obs.reset_tracer()


def _finish_tracing(trace_path: Optional[str], **knobs: object) -> None:
    """Export the collected spans/metrics and switch the layer back off."""
    from . import obs

    spans = obs.take_finished()
    if trace_path is not None:
        out = obs.write_trace(
            trace_path, spans, obs.run_manifest(**knobs)
        )
        print(f"trace written to {out}")
    obs.set_enabled(False)


def _run_stats(args: argparse.Namespace) -> int:
    """The ``repro-khop stats`` command: one instrumented quick run."""
    from . import obs
    from .traffic.report import run_traffic

    _start_tracing()
    run_traffic(
        n=args.n,
        degree=args.degree,
        k=args.k,
        algorithm=args.algorithm,
        flows=args.flows,
        seed=args.seed,
        backend=args.backend,
    )
    spans = obs.take_finished()
    manifest = obs.run_manifest(
        command="stats",
        n=args.n,
        degree=args.degree,
        k=args.k,
        algorithm=args.algorithm,
        flows=args.flows,
        seed=args.seed,
        backend=args.backend,
    )
    knobs = ", ".join(f"{k}={v}" for k, v in manifest["knobs"].items())
    print(
        f"manifest: schema={manifest['schema']} "
        f"git={manifest['git_sha'][:12]} python={manifest['python']}"
    )
    print(f"knobs: {knobs}")
    print()
    print(obs.render_trace_summary(spans))
    print()
    print(obs.render_metrics())
    if args.trace is not None:
        out = obs.write_trace(args.trace, spans, manifest)
        print(f"\ntrace written to {out}")
    obs.set_enabled(False)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``repro-khop serve`` command: the supervised service loop."""
    from . import obs
    from .service import ServiceConfig, run_service

    config = ServiceConfig(
        n=args.n,
        degree=args.degree,
        k=args.k,
        algorithm=args.algorithm,
        backend=args.backend,
        seed=args.seed,
        base_loss=args.base_loss,
        checkpoint_every=args.checkpoint_every,
        guard_every=args.guard_every,
        fsync=not args.no_fsync,
    )
    _start_tracing()
    engine, report = run_service(
        config,
        events=args.events,
        directory=args.dir,
        resume=args.resume,
    )
    print(report.render())
    # One-line digest of the observable state: two runs that processed
    # the same schedule — straight through or via kill/recover/replay —
    # print the same value (the CI recovery check greps it).
    fp = zlib.crc32(repr(engine.fingerprint()).encode())
    print(f"fingerprint          {fp:08x}")
    if args.dir is not None:
        print(f"service directory     {args.dir}")
    print()
    print(obs.render_metrics())
    obs.set_enabled(False)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _apply_budget(args.trials)

    if args.command == "lint":
        from .errors import LintError
        from .lint import RULE_DOCS, run_lint

        if args.list_rules:
            for code, (name, what) in sorted(RULE_DOCS.items()):
                print(f"{code}  {name:<22} {what}")
            return 0
        run = run_lint(args.root, args.paths or None)
        if run.diagnostics:
            print(LintError(tuple(run.diagnostics)).report())
            return 1
        print(
            f"repro-lint: {run.files_checked} files clean "
            f"({len(run.rules)} rules, {run.suppressed} pragma-suppressed)"
        )
        return 0
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "chaos":
        from .faults import render_chaos, run_chaos

        if args.trace is not None:
            _start_tracing()
        chaos_report = run_chaos(
            seed=args.seed,
            events=args.events,
            n=args.n,
            degree=args.degree,
            k=args.k,
            algorithm=args.algorithm,
            flows=args.flows,
            join_weight=args.join_weight,
            stop_on_violation=not args.keep_going,
            trace_path=args.trace,
        )
        print(render_chaos(chaos_report))
        if args.trace is not None:
            _finish_tracing(
                args.trace,
                command="chaos",
                seed=args.seed,
                events=args.events,
                n=args.n,
                degree=args.degree,
                k=args.k,
                algorithm=args.algorithm,
                flows=args.flows,
                join_weight=args.join_weight,
            )
        return 0 if chaos_report.ok else 1
    if args.command == "figure4":
        data = figure4.run(n=args.n, degree=args.degree, k=args.k, seed=args.seed)
        print(figure4.render(data))
    elif args.command == "traffic":
        from .traffic import report as traffic_report

        if args.trace is not None:
            _start_tracing()
        traffic_report.main(
            n=args.n,
            degree=args.degree,
            k=args.k,
            algorithm=args.algorithm,
            workload=args.workload,
            flows=args.flows,
            seed=args.seed,
            lifetime_epochs=args.lifetime_epochs,
            backend=args.backend,
            balance=args.balance,
            radio_budget=args.radio_budget,
        )
        if args.trace is not None:
            _finish_tracing(
                args.trace,
                command="traffic",
                n=args.n,
                degree=args.degree,
                k=args.k,
                algorithm=args.algorithm,
                workload=args.workload,
                flows=args.flows,
                seed=args.seed,
                lifetime_epochs=args.lifetime_epochs,
                backend=args.backend,
                balance=args.balance,
                radio_budget=args.radio_budget,
            )
    elif args.command == "mobility":
        from .traffic import mobile

        if args.trace is not None:
            _start_tracing()
        mobile.main(
            n=args.n,
            degree=args.degree,
            k=args.k,
            algorithm=args.algorithm,
            workload=args.workload,
            flows=args.flows,
            snapshots=args.snapshots,
            speed=tuple(args.speed),
            seed=args.seed,
            engine=args.engine,
        )
        if args.trace is not None:
            _finish_tracing(
                args.trace,
                command="mobility",
                n=args.n,
                degree=args.degree,
                k=args.k,
                algorithm=args.algorithm,
                workload=args.workload,
                flows=args.flows,
                snapshots=args.snapshots,
                speed=list(args.speed),
                seed=args.seed,
                engine=args.engine,
            )
    elif args.command == "figure5":
        figure5.main()
    elif args.command == "figure6":
        figure6.main()
    elif args.command == "figure7":
        figure7.main()
    elif args.command == "claims":
        sparse = figure5.run(trials=args.trials)
        dense = figure6.run(trials=args.trials)
        verdicts = claims.check_claims(sparse, dense)
        print(claims.render_verdicts(verdicts))
        if not all(v.holds for v in verdicts):
            return 1
    elif args.command == "overhead":
        overhead.main()
    elif args.command == "ablations":
        ablations.main()
    elif args.command == "all":
        figure4.main()
        figure5.main()
        figure6.main()
        figure7.main()
        overhead.main()
        ablations.main()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
