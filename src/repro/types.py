"""Shared type aliases and tiny value objects used across the library.

The paper works on an undirected graph ``G`` whose vertices are radio hosts
identified by unique comparable IDs.  We represent node IDs as dense integers
``0..n-1`` (the "lowest ID" priority of the paper is then simply the natural
integer order), hop counts as non-negative ints, and edges as 2-tuples with
``u < v``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "NodeId",
    "Hops",
    "Edge",
    "DistArray",
    "IndexArray",
    "BoolArray",
    "FloatArray",
    "normalize_edge",
    "normalize_edges",
]

#: A network host identifier.  Dense, hashable, totally ordered.
NodeId = int

#: A hop-distance array.  The element type mirrors
#: :data:`repro.net.oracle.DIST_DTYPE` (int32) — the repro-lint R002 rule
#: keeps runtime arrays on that dtype, this alias keeps the signatures.
DistArray = NDArray[np.int32]

#: A node-index array (CSR indptr/indices, id lists, argsort results).
IndexArray = NDArray[np.int64]

#: A boolean mask over nodes or edges.
BoolArray = NDArray[np.bool_]

#: Euclidean geometry (positions, radii, stretch factors).
FloatArray = NDArray[np.float64]

#: A hop count (graph distance in G).
Hops = int

#: An undirected edge, stored with the smaller endpoint first.
Edge = Tuple[NodeId, NodeId]


def normalize_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the undirected edge ``(min(u, v), max(u, v))``.

    Raises:
        ValueError: if ``u == v`` (self-loops are meaningless in a radio
            network and always indicate a caller bug).
    """
    if u == v:
        raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


def normalize_edges(edges: Iterable[Tuple[NodeId, NodeId]]) -> set[Edge]:
    """Normalize an iterable of edges into a set of ``(min, max)`` tuples."""
    return {normalize_edge(u, v) for u, v in edges}
