"""Canonical shortest paths and the path oracle.

The paper's gateway algorithms all hinge on *which* shortest path is chosen
between a pair of clusterheads ("virtual links", §3.2): the interior nodes
of the chosen path become gateways when the link is selected.  The paper
does not pin the choice down, so this reproduction defines a single
**canonical shortest path** per unordered pair that is

* deterministic (reruns and different algorithms agree),
* symmetric (``path(u, v)`` is ``path(v, u)`` reversed), and
* realizable by a distributed BFS: it equals the predecessor chain produced
  by a scoped flood from the *smaller-ID* endpoint in which every node
  adopts its minimum-ID predecessor — exactly what the round-simulator
  protocols in :mod:`repro.sim.protocols` implement.

Definition
----------
For ``s = min(u, v)``, ``t = max(u, v)``: walk backwards from ``t``; at each
step move to the minimum-ID neighbor that is one hop closer to ``s``.
Reversing the walk gives the canonical path from ``s`` to ``t``.

Backend note
------------
Path construction needs the full BFS row of the smaller endpoint, obtained
via :meth:`Graph.bfs_distances` and therefore through the graph's current
:class:`~repro.net.oracle.DistanceOracle`.  On the dense backend that is a
matrix row; on the lazy backend it is a single CSR BFS cached under the
oracle's LRU row policy — virtual links are head-to-head, so an experiment
touches O(heads) rows, never the O(n²) matrix.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import DisconnectedGraphError
from ..types import NodeId
from .graph import UNREACHABLE, Graph
from .oracle import ByteBudgetLRU, OracleStats, gather_csr_neighbors

__all__ = [
    "canonical_path",
    "path_interior",
    "PathOracle",
    "DEFAULT_PATH_CACHE_BYTES",
]

#: Default byte budget for the per-pair canonical-path cache (~4 MiB).
DEFAULT_PATH_CACHE_BYTES: int = 4 << 20


def _path_nbytes(path: tuple[int, ...]) -> int:
    """Approximate resident size of a cached path entry.

    A tuple of n small ints costs roughly one machine word per element
    plus fixed tuple/key overhead; precise accounting is not the point —
    bounding growth under adversarial query streams is.
    """
    return 8 * len(path) + 64


def canonical_path(graph: Graph, u: NodeId, v: NodeId) -> tuple[int, ...]:
    """The canonical shortest path between ``u`` and ``v``, oriented u -> v.

    The underlying unordered path is computed from ``min(u, v)`` (see module
    docstring); if ``u > v`` the result is reversed so it always starts at
    ``u`` and ends at ``v``.

    Raises:
        DisconnectedGraphError: if ``v`` is unreachable from ``u``.
    """
    if u == v:
        return (u,)
    s, t = (u, v) if u < v else (v, u)
    dist = graph.bfs_distances(s)
    d = int(dist[t])
    if d >= UNREACHABLE:
        raise DisconnectedGraphError(f"no path between {u} and {v}")
    # Walk back from t toward s picking the min-ID predecessor each hop.
    rev = [t]
    cur = t
    for step in range(d, 0, -1):
        cur = min(w for w in graph.neighbors(cur) if dist[w] == step - 1)
        rev.append(cur)
    path = tuple(reversed(rev))  # s .. t
    assert path[0] == s and path[-1] == t and len(path) == d + 1
    return path if u == s else tuple(reversed(path))


def path_interior(path: tuple[int, ...]) -> tuple[int, ...]:
    """Interior (non-endpoint) nodes of a path — the gateway candidates."""
    return path[1:-1]


class PathOracle:
    """Memoizing provider of canonical paths and hop distances for one graph.

    A single experiment queries the same clusterhead pairs many times
    (neighbor selection, mesh gateways, LMST gateways, G-MST baseline); the
    oracle computes each canonical path once.  The per-pair cache is
    bounded by a byte-budgeted LRU (:class:`~repro.net.oracle.ByteBudgetLRU`
    — the same policy class as the distance oracle's row/ball caches), so
    a long pair-heavy experiment can no longer grow the cache without
    bound; :meth:`stats` reports occupancy and hit counters.

    The oracle is keyed by unordered pair; :meth:`path` orients the stored
    path to the requested direction.
    """

    def __init__(
        self, graph: Graph, *, cache_bytes: int = DEFAULT_PATH_CACHE_BYTES
    ) -> None:
        self._graph = graph
        self._cache = ByteBudgetLRU(cache_bytes)
        self._paths_computed = 0
        self._path_hits = 0
        self._paths_inherited = 0
        self._peak_bytes = 0

    @property
    def graph(self) -> Graph:
        """The underlying network graph."""
        return self._graph

    @property
    def paths_inherited(self) -> int:
        """Cached paths carried over from a parent oracle after a removal."""
        return self._paths_inherited

    def inherit_from(self, parent: "PathOracle", removed: NodeId) -> int:
        """Seed the path cache from ``parent`` after ``removed`` lost its edges.

        A cached canonical path that does not contain ``removed`` is still
        the canonical path in the child graph: removal only *increases*
        distances, so every node of the surviving path keeps its BFS level
        from the smaller endpoint, and the min-ID backward walk — whose
        candidate sets can only shrink but always retain the previously
        chosen (still-minimal) predecessor — reproduces the identical
        walk.  Paths through ``removed`` are dropped and recomputed on
        demand.

        Returns the number of paths carried over.
        """
        removed = int(removed)
        seed = [
            (key, path, _path_nbytes(path))
            for key, path in parent._cache.items()
            if removed not in path
        ]
        self._cache.seed(seed)
        self._paths_inherited += len(seed)
        if self._cache.nbytes > self._peak_bytes:
            self._peak_bytes = self._cache.nbytes
        return len(seed)

    def inherit_edge_delta(
        self, parent: "PathOracle", touched: Iterable[NodeId]
    ) -> int:
        """Seed the path cache from ``parent`` after an edge delta.

        ``touched`` is the set of endpoints of every added or removed
        edge (all nodes persist — the mobility case).  Call this on an
        oracle for the post-delta graph *before* querying it.  A path
        survives only when no changed edge is incident to one of its
        nodes (adjacency, hence the min-ID candidate *sets*, unchanged)
        **and** the BFS levels its backward walk consults are provably
        unchanged: both the parent's and the child's oracles must hold
        resident rows for the path's BFS root ``s``
        (:meth:`DistanceOracle.cached_row` — the child's is typically an
        inherited certified/patched row), and the two rows must agree on
        every path node and every neighbor of a path node.  The walk's
        candidate sets are then value-identical, so the identical min-ID
        walk re-derives.  Mere avoidance of touched nodes is never
        enough on its own — an *added* edge elsewhere can reroute
        levels.

        The row comparison deliberately judges the *parent oracle's*
        graph against this one, so ``touched`` may span several composed
        deltas (the mobility loop inherits across disconnected-snapshot
        gaps); rows the child inherited verbatim compare equal
        instantly (same array object).

        Returns the number of paths carried over.
        """
        touched_set = {int(t) for t in touched}
        parent_oracle = parent._graph.oracle
        child_oracle = self._graph.oracle
        indptr, indices = self._graph.csr_adjacency
        # Per source: the set of nodes whose *own or neighboring* level
        # changed — a path survives iff it avoids that set (and every
        # touched node).  None = no resident row pair, drop the source.
        bad_nodes: dict[int, set | None] = {}
        seed = []
        for key, path in parent._cache.items():
            if key in self._cache:
                continue
            s = key[0]
            if not touched_set.isdisjoint(path):
                continue  # a changed edge touches the walk's candidate sets
            bad = bad_nodes.get(s, -1)
            if bad == -1:
                old_row = parent_oracle.cached_row(s)
                new_row = child_oracle.cached_row(s)
                if old_row is None or new_row is None:
                    bad = None
                elif new_row is old_row:  # carried verbatim: levels identical
                    bad = set()
                else:
                    moved = np.flatnonzero(new_row != old_row)
                    if moved.size:
                        nbrs, _ = gather_csr_neighbors(
                            indptr, indices, moved
                        )
                        bad = set(moved.tolist())
                        bad.update(nbrs.tolist())
                    else:
                        bad = set()
                bad_nodes[s] = bad
            if bad is None or not bad.isdisjoint(path):
                continue
            seed.append((key, path, _path_nbytes(path)))
        self._cache.seed(seed)
        self._paths_inherited += len(seed)
        if self._cache.nbytes > self._peak_bytes:
            self._peak_bytes = self._cache.nbytes
        return len(seed)

    def inherit_node_add(self, parent: "PathOracle") -> int:
        """Seed the path cache from ``parent`` after node arrivals.

        New nodes append at IDs ``>= parent.graph.n``, so they can never
        win a min-ID tie in the backward walk — adjacency growing by
        only-higher-ID neighbors leaves every candidate ``min()``
        unchanged.  A cached path therefore survives iff the BFS levels
        its walk consults are provably unchanged: both oracles must hold
        resident rows for the path's root ``s``
        (:meth:`DistanceOracle.cached_row`), and the child row's *old*
        prefix must agree with the parent row on every path node and
        every old neighbor of a path node (arrivals only decrease
        distances, so a disagreement means a genuine shortcut rerouted
        the walk's levels).  The verification mirrors
        :meth:`inherit_edge_delta` — and like there, the row comparison
        judges the parent oracle's graph against this one, so chained
        arrivals compose (the recorded per-hop certificates deliberately
        go unused).

        Returns the number of paths carried over.
        """
        old_n = parent._graph.n
        parent_oracle = parent._graph.oracle
        child_oracle = self._graph.oracle
        indptr, indices = self._graph.csr_adjacency
        # Per source: nodes whose own or neighboring level changed (None =
        # no resident row pair, drop the source's paths).
        bad_nodes: dict[int, set | None] = {}
        seed = []
        for key, path in parent._cache.items():
            if key in self._cache:
                continue
            s = key[0]
            bad = bad_nodes.get(s, -1)
            if bad == -1:
                old_row = parent_oracle.cached_row(s)
                new_row = child_oracle.cached_row(s)
                if old_row is None or new_row is None:
                    bad = None
                else:
                    moved = np.flatnonzero(new_row[:old_n] != old_row)
                    if moved.size:
                        nbrs, _ = gather_csr_neighbors(
                            indptr, indices, moved
                        )
                        bad = set(moved.tolist())
                        bad.update(nbrs.tolist())
                    else:
                        bad = set()
                bad_nodes[s] = bad
            if bad is None or not bad.isdisjoint(path):
                continue
            seed.append((key, path, _path_nbytes(path)))
        self._cache.seed(seed)
        self._paths_inherited += len(seed)
        if self._cache.nbytes > self._peak_bytes:
            self._peak_bytes = self._cache.nbytes
        return len(seed)

    def has_path(self, u: NodeId, v: NodeId) -> bool:
        """Whether the ``u``-``v`` canonical path is already cached."""
        if u == v:
            return True
        return ((u, v) if u < v else (v, u)) in self._cache

    def seed_paths(self, paths: Iterable[tuple[NodeId, ...]]) -> int:
        """Bulk-insert known canonical paths (e.g. surviving virtual links).

        Every path must be the *canonical* path between its endpoints on
        this oracle's graph — the caller's obligation; repair uses the
        previous backbone's stored link paths, which stay canonical as
        long as they avoid every removed node.  Already-cached pairs are
        skipped.  Returns the number of paths seeded.
        """
        seed = []
        seen: set[tuple[NodeId, NodeId]] = set()
        for path in paths:
            if len(path) < 2:
                continue
            u, v = path[0], path[-1]
            key = (u, v) if u < v else (v, u)
            if key in seen or key in self._cache:
                continue
            seen.add(key)
            stored = path if path[0] == key[0] else tuple(reversed(path))
            seed.append((key, stored, _path_nbytes(stored)))
        self._cache.seed(seed)
        self._paths_inherited += len(seed)
        if self._cache.nbytes > self._peak_bytes:
            self._peak_bytes = self._cache.nbytes
        return len(seed)

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Hop distance between ``u`` and ``v`` in the underlying graph.

        Routed through the graph's current distance oracle, so on the
        landmark backend a pair query costs O(|label|), never a BFS row.
        """
        return self._graph.hop_distance(u, v)

    def path(self, u: NodeId, v: NodeId) -> tuple[int, ...]:
        """Canonical path oriented from ``u`` to ``v`` (cached per pair)."""
        if u == v:
            return (u,)
        key = (u, v) if u < v else (v, u)
        stored = self._cache.get(key)
        if stored is None:
            stored = canonical_path(self._graph, key[0], key[1])
            self._paths_computed += 1
            self._cache.put(key, stored, _path_nbytes(stored))
            if self._cache.nbytes > self._peak_bytes:
                self._peak_bytes = self._cache.nbytes
        else:
            self._path_hits += 1
        return stored if u == key[0] else tuple(reversed(stored))

    def interior(self, u: NodeId, v: NodeId) -> tuple[int, ...]:
        """Interior nodes of the canonical ``u``-``v`` path."""
        return path_interior(self.path(u, v))

    def stats(self) -> OracleStats:
        """Path-cache occupancy and hit counters (``backend="path-cache"``)."""
        return OracleStats(
            backend="path-cache",
            rows_computed=0,
            row_hits=0,
            balls_computed=0,
            ball_hits=0,
            cached_bytes=self._cache.nbytes,
            peak_cached_bytes=self._peak_bytes,
            paths_computed=self._paths_computed,
            path_hits=self._path_hits,
        )

    def __len__(self) -> int:
        """Number of distinct pairs currently cached."""
        return len(self._cache)
