"""Exact landmark distance labeling (the ``"landmark"`` oracle backend).

Pair-heavy consumers — routing stretch sampling, the NC neighbor rule,
repair validation under churn — ask the distance machinery for *single
pair* distances, and on the lazy backend each cold pair query costs a full
O(n + m) BFS row.  Bounded-stretch geometric graphs (the paper's unit-disk
regime; cf. Yao-graph spanner results) have exactly the structure that
makes **2-hop distance labeling** tiny: a small set of high-degree
"landmark" hubs covers almost every shortest path.

:class:`LandmarkDistanceOracle` implements **pruned landmark labeling**
(Akiba, Iwata & Yoshida, SIGMOD 2013): roots are processed in decreasing
degree rank, each performing a *pruned* BFS that labels a node ``v`` with
``(rank, d(root, v))`` only when the labels built so far cannot already
prove a distance ``<= d``.  The first ~O(√n) degree-ranked roots
contribute nearly all label entries on unit-disk-style graphs; later
roots' BFS prune almost immediately.  Because every vertex is processed,
the resulting labels are **exact** for all pairs (same-component queries
return the true hop distance, cross-component queries return
:data:`~repro.net.oracle.UNREACHABLE`), so the backend is observationally
identical to ``dense``/``lazy`` — the property tests enforce this.

Queries join the two sorted label arrays in O(|label(u)| + |label(v)|)
without materializing any BFS row.  Ball and row queries fall back to the
inherited lazy CSR machinery, so the backend is a drop-in for every
consumer.  Labels are built lazily on the first pair query.  Construction
(:func:`build_pruned_labels`) runs each root's pruned BFS as masked
level-synchronous sweeps over the CSR arrays: the whole frontier's prune
checks are one gather of hub distances over padded per-node label arrays
plus one masked row-min, and surviving nodes are labeled and expanded
with array operations — no per-node Python work.  That opens the
landmark backend to ``N >= 10^4`` graphs (a full N=10^4 unit-disk build
is part of ``make bench-pipeline``); memory during construction is
O(n · max label length) for the padded arrays.

Under single-node churn the labels are discarded (a removed node may have
carried shortest paths the labels encode) while cached rows/balls are
inherited through the usual lazy-oracle rules; labels rebuild lazily on
the next pair query.  Mobility edge deltas (:meth:`Graph.with_edge_delta`)
behave the same way: the derived oracle is constructed label-cold — a
label certifies arbitrary pairs, so no per-pair validity rule survives a
delta cheaply — but every certified/patched row and surviving ball
arrives through :meth:`LazyDistanceOracle.inherit_edge_delta`, and
``distance`` prefers a resident row over a label join, so the inherited
cache keeps answering most pair queries until the labels rebuild.
Node arrivals (:meth:`Graph.with_nodes`) follow the same label-cold rule
with one exact exception: a *pendant* arrival augments the parent labels
in O(|label(u)|) instead of dropping them — see
:meth:`LandmarkDistanceOracle.inherit_node_add`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

from ..obs import counter as obs_counter
from ..obs import span
from ..types import DistArray, IndexArray, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular import
    from .graph import Graph
from .oracle import (
    DIST_DTYPE,
    UNREACHABLE,
    LazyDistanceOracle,
    OracleStats,
    gather_csr_neighbors,
)

__all__ = ["LandmarkDistanceOracle", "build_pruned_labels"]


def _root_order(indptr: IndexArray, n: int) -> IndexArray:
    """Root processing order: decreasing degree, ties by increasing ID."""
    degrees = np.diff(indptr)
    return np.lexsort((np.arange(n), -degrees)).astype(np.int64)


def build_pruned_labels(
    indptr: IndexArray, indices: IndexArray, n: int
) -> tuple[list[IndexArray], list[DistArray], IndexArray]:
    """Build exact 2-hop labels by pruned BFS from degree-ranked roots.

    Returns ``(label_ranks, label_dists, order)``: per-node sorted arrays
    of hub *ranks* and the matching hop distances, plus the rank -> node
    ordering (``order[0]`` is the highest-degree landmark).

    Each root's pruned BFS runs level-synchronously over the CSR arrays.
    Per-node labels live in capacity-doubled padded 2D arrays
    (``lab_rank``/``lab_dist`` of shape ``(n, cap)`` plus a length
    vector), so one level's PLL prune check — "can the labels built so
    far already certify a distance <= depth between root and v?" — is a
    single gather of the root's hub distances through the frontier's
    label rows, a masked add, and a row-min, instead of a Python loop
    over every label entry.  Nodes that survive the check are labeled
    ``(rank, depth)`` and expanded by one vectorized CSR gather; pruned
    nodes are not expanded (their subtree is reachable no cheaper, the
    PLL invariant).  Produces byte-identical labels to the per-node
    reference (:func:`_build_pruned_labels_reference`, kept for the
    equivalence tests).
    """
    order = _root_order(indptr, n)
    if n == 0:
        return [], [], order
    inf = np.int64(UNREACHABLE)
    cap = 8
    lab_rank = np.zeros((n, cap), dtype=np.int64)
    lab_dist = np.zeros((n, cap), dtype=DIST_DTYPE)
    lab_len = np.zeros(n, dtype=np.int64)
    col_ids = np.arange(cap)
    # Distance from the current root to every hub, indexed by hub rank.
    # int64, not DIST_DTYPE: the prune check adds the UNREACHABLE
    # sentinel to label distances, which must not wrap in int32; keeping
    # the headroom on this (n,)-sized vector upcasts the whole gather.
    hub_dist = np.full(n, inf, dtype=np.int64)  # repro-lint: disable=R002
    # PLL is sequential in the root rank by definition (each root's BFS
    # prunes against every earlier root's labels); the per-root work
    # below is fully vectorized.
    for rank in range(n):  # repro-lint: disable=R004
        root = int(order[rank])
        root_len = int(lab_len[root])
        root_hubs = lab_rank[root, :root_len]
        hub_dist[root_hubs] = lab_dist[root, :root_len]
        seen = np.zeros(n, dtype=bool)
        seen[root] = True
        frontier = np.asarray([root], dtype=np.int64)
        depth = 0
        while frontier.size:
            # --- prune check, whole level at once ---------------------- #
            # Clip the gather to the frontier's longest label: early roots
            # run against near-empty labels, so their (wide) BFS levels
            # touch a handful of columns instead of the full capacity.
            lens = lab_len[frontier]
            width = int(lens.max())
            if width:
                rows_rank = lab_rank[frontier, :width]
                rows_dist = lab_dist[frontier, :width]
                valid = col_ids[:width] < lens[:, None]
                via_hub = np.where(
                    valid, hub_dist[rows_rank] + rows_dist, inf
                )
                kept = frontier[via_hub.min(axis=1) > depth]
            else:
                kept = frontier  # empty labels certify nothing
            # --- label the survivors ----------------------------------- #
            if kept.size:
                if int(lab_len[kept].max()) >= cap:
                    lab_rank = np.concatenate(
                        [lab_rank, np.zeros((n, cap), dtype=np.int64)], axis=1
                    )
                    lab_dist = np.concatenate(
                        [lab_dist, np.zeros((n, cap), dtype=DIST_DTYPE)],
                        axis=1,
                    )
                    cap *= 2
                    col_ids = np.arange(cap)
                slot = lab_len[kept]
                lab_rank[kept, slot] = rank
                lab_dist[kept, slot] = depth
                lab_len[kept] += 1
            # --- expand only the survivors ----------------------------- #
            if kept.size == 0:
                break
            if kept.size == 1:
                # Dominant shape for late roots (the root itself, then an
                # immediately-pruned neighbor ring): one CSR slice, already
                # sorted and duplicate-free.
                v = int(kept[0])
                nbrs = indices[indptr[v] : indptr[v + 1]]
                frontier = nbrs[~seen[nbrs]]
            else:
                nbrs, _ = gather_csr_neighbors(indptr, indices, kept)
                if nbrs.size == 0:
                    break
                frontier = np.unique(nbrs[~seen[nbrs]])
            if frontier.size == 0:
                break
            seen[frontier] = True
            depth += 1
        hub_dist[root_hubs] = inf
    ranks_out = [lab_rank[u, : lab_len[u]].copy() for u in range(n)]
    dists_out = [
        lab_dist[u, : lab_len[u]].astype(DIST_DTYPE) for u in range(n)
    ]
    return ranks_out, dists_out, order


def _build_pruned_labels_reference(
    indptr: IndexArray, indices: IndexArray, n: int
) -> tuple[list[IndexArray], list[DistArray], IndexArray]:
    """Per-node reference PLL construction (the pre-vectorization path).

    Kept as the ground truth for the CSR-vs-reference label-equality
    tests; observationally identical to :func:`build_pruned_labels`.
    """
    order = _root_order(indptr, n)
    neighbors = [indices[indptr[u] : indptr[u + 1]].tolist() for u in range(n)]
    label_ranks: list[list[int]] = [[] for _ in range(n)]
    label_dists: list[list[int]] = [[] for _ in range(n)]
    hub_dist = [UNREACHABLE] * n  # distance from current root, by hub rank
    for rank in range(n):
        root = int(order[rank])
        root_ranks = label_ranks[root]
        root_dists = label_dists[root]
        for rk, dd in zip(root_ranks, root_dists):
            hub_dist[rk] = dd
        seen = bytearray(n)
        seen[root] = 1
        frontier = [root]
        depth = 0
        while frontier:
            nxt: list[int] = []
            for v in frontier:
                # Prune when existing labels already certify a distance
                # <= depth between root and v (the PLL invariant).
                best = UNREACHABLE
                for rk, dd in zip(label_ranks[v], label_dists[v]):
                    t = hub_dist[rk] + dd
                    if t < best:
                        best = t
                if best <= depth:
                    continue
                label_ranks[v].append(rank)
                label_dists[v].append(depth)
                for w in neighbors[v]:
                    if not seen[w]:
                        seen[w] = 1
                        nxt.append(w)
            frontier = nxt
            depth += 1
        for rk in root_ranks:
            hub_dist[rk] = UNREACHABLE
    ranks_out = [np.asarray(r, dtype=np.int64) for r in label_ranks]
    dists_out = [np.asarray(d, dtype=DIST_DTYPE) for d in label_dists]
    return ranks_out, dists_out, order


def _label_join(
    ru: IndexArray, du: DistArray, rv: IndexArray, dv: DistArray
) -> int:
    """Minimum ``d(u, hub) + d(hub, v)`` over shared hubs (sorted join)."""
    common, iu, iv = np.intersect1d(
        ru, rv, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return UNREACHABLE
    return int((du[iu] + dv[iv]).min())


class LandmarkDistanceOracle(LazyDistanceOracle):
    """Lazy CSR oracle plus exact pruned landmark labels for pair queries.

    ``distance`` / ``distances`` / ``pair_distances`` /
    ``pairwise_distances`` are answered from 2-hop labels in
    O(|label|) per pair; ``row`` and ``ball`` fall back to the inherited
    lazy CSR machinery.  Labels are built on the first pair query and
    shared for the oracle's lifetime.
    """

    backend = "landmark"
    fast_pairs = True  # label joins, never a BFS row

    def __init__(self, graph: "Graph", **kwargs: object) -> None:
        super().__init__(graph, **kwargs)
        self._label_ranks: list[IndexArray] | None = None
        self._label_dists: list[DistArray] | None = None
        self._landmark_order: IndexArray | None = None
        self._label_entries = 0
        self._pair_queries = 0

    # -- labels --------------------------------------------------------- #

    @property
    def labels_built(self) -> bool:
        """Whether the 2-hop labels have been constructed yet."""
        return self._label_ranks is not None

    def _ensure_labels(self) -> None:
        if self._label_ranks is None:
            with span("labels", n=self._graph.n):
                self._label_ranks, self._label_dists, self._landmark_order = (
                    build_pruned_labels(
                        self._indptr, self._indices, self._graph.n
                    )
                )
                self._label_entries = sum(r.size for r in self._label_ranks)
                obs_counter("oracle.labels_built").add()

    def label(self, u: NodeId) -> tuple[IndexArray, DistArray]:
        """``u``'s 2-hop label as ``(hub_ranks, hub_dists)`` arrays."""
        self._ensure_labels()
        return self._label_ranks[int(u)], self._label_dists[int(u)]

    def landmarks(self, count: int) -> tuple[int, ...]:
        """The ``count`` highest-ranked landmark node IDs (degree order)."""
        self._ensure_labels()
        return tuple(int(x) for x in self._landmark_order[:count])

    # -- incremental maintenance ----------------------------------------- #

    def inherit_node_add(
        self,
        parent: LazyDistanceOracle,
        added: Sequence[tuple[int, int]],
    ) -> None:
        """Node-add inheritance with pendant label augmentation.

        Rows, partial rows and balls carry through
        :meth:`LazyDistanceOracle.inherit_node_add`.  Labels normally
        drop (an arrival can shorten pair distances the labels encode,
        and no per-pair validity rule survives that cheaply) — with one
        exact exception worth keeping: a **pendant** arrival, a single
        new node attached by exactly one edge to one old node ``u``.  A
        pendant cannot shorten any old pair (every path through it
        re-enters via ``u``), so the parent labels stay exact, and the
        new node's label is ``u``'s with every hub distance increased by
        one — the join then answers ``d(x, t) = d(u, t) + 1`` exactly
        (``d(x, u) = 1`` lands via ``u``'s self-hub).  Denser arrivals
        construct label-cold and rebuild on the next pair query, exactly
        like churn and mobility.
        """
        super().inherit_node_add(parent, added)
        if not isinstance(parent, LandmarkDistanceOracle):
            return
        if parent._label_ranks is None or parent._label_dists is None:
            return
        old_n = parent.graph.n
        pendant = (
            len(added) == 1
            and self._graph.n == old_n + 1
            and min(added[0]) < old_n <= max(added[0])
        )
        if not pendant:
            return
        u = int(min(added[0]))
        self._label_ranks = list(parent._label_ranks) + [
            parent._label_ranks[u].copy()
        ]
        self._label_dists = list(parent._label_dists) + [
            (parent._label_dists[u] + np.asarray(1, dtype=DIST_DTYPE)).astype(
                DIST_DTYPE
            )
        ]
        self._landmark_order = parent._landmark_order
        self._label_entries = parent._label_entries + int(
            parent._label_ranks[u].size
        )
        obs_counter("oracle.labels_augmented").add()

    # -- pair queries ---------------------------------------------------- #

    def distance(self, u: NodeId, v: NodeId) -> int:
        u, v = int(u), int(v)
        if u == v:
            return 0
        cached = self._rows.get(u)
        if cached is not None:  # a resident row is even cheaper than a join
            self._row_hits += 1
            return int(cached[v])
        self._ensure_labels()
        self._pair_queries += 1
        return _label_join(
            self._label_ranks[u],
            self._label_dists[u],
            self._label_ranks[v],
            self._label_dists[v],
        )

    def distances(self, source: NodeId, targets: Sequence[NodeId]) -> DistArray:
        if len(targets) == 0:
            return np.zeros(0, dtype=DIST_DTYPE)
        source = int(source)
        cached = self._rows.get(source)
        if cached is not None:
            self._row_hits += 1
            return cached[np.asarray(targets, dtype=np.intp)]
        self._ensure_labels()
        out = np.empty(len(targets), dtype=DIST_DTYPE)
        ru, du = self._label_ranks[source], self._label_dists[source]
        for i, t in enumerate(targets):
            t = int(t)
            if t == source:
                out[i] = 0
                continue
            self._pair_queries += 1
            out[i] = _label_join(
                ru, du, self._label_ranks[t], self._label_dists[t]
            )
        return out

    def pair_distances(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> DistArray:
        if len(pairs) == 0:
            return np.zeros(0, dtype=DIST_DTYPE)
        out = np.empty(len(pairs), dtype=DIST_DTYPE)
        for i, (u, v) in enumerate(pairs):
            out[i] = self.distance(u, v)
        return out

    def pairwise_distances(self, nodes: Sequence[NodeId]) -> DistArray:
        idx = [int(x) for x in nodes]
        out = np.zeros((len(idx), len(idx)), dtype=DIST_DTYPE)
        for i, u in enumerate(idx):
            for j in range(i + 1, len(idx)):
                d = self.distance(u, idx[j])
                out[i, j] = d
                out[j, i] = d
        return out

    # -- introspection --------------------------------------------------- #

    def stats(self) -> OracleStats:
        base = super().stats()
        return replace(
            base,
            label_entries=self._label_entries,
            pair_queries=self._pair_queries,
            cached_bytes=base.cached_bytes + self._label_bytes(),
        )

    def _label_bytes(self) -> int:
        if self._label_ranks is None:
            return 0
        return sum(
            r.nbytes + d.nbytes
            for r, d in zip(self._label_ranks, self._label_dists)
        )
