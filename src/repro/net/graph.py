"""Compact immutable undirected graph with hop-distance machinery.

Every algorithm in the paper is defined in terms of *hop distances* in the
original network ``G``: k-hop neighborhoods for clustering, 2k+1-hop
neighborhoods for neighbor-clusterhead discovery, and hop-count "virtual
distances" between clusterheads.  :class:`Graph` therefore caches an
all-pairs hop-distance matrix (computed with a vectorized BFS sweep) and
answers all neighborhood queries from it.

Design notes
------------
* Nodes are dense integers ``0..n-1``; the paper's "lowest ID" priority is
  the natural integer order on these.
* The graph is immutable.  Maintenance operations (node failure, §3.3 of the
  paper) produce *new* graphs via :meth:`Graph.without_nodes`, which keeps
  the original node numbering so results remain comparable.
* For the paper's scales (N <= a few hundred) the dense ``(n, n)`` int16
  distance matrix is small (~80 KB at N=200) and the vectorized
  frontier-expansion BFS is far faster than per-node Python BFS.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DisconnectedGraphError, InvalidParameterError
from ..types import Edge, NodeId, normalize_edge

__all__ = ["Graph", "UNREACHABLE"]

#: Sentinel hop distance for unreachable pairs (fits in int16; larger than
#: any real hop distance for n <= 32766).
UNREACHABLE: int = np.iinfo(np.int16).max


class Graph:
    """Immutable undirected graph on nodes ``0..n-1``.

    Args:
        n: number of nodes.
        edges: iterable of ``(u, v)`` pairs; order and duplicates are
            normalized away.  Self-loops raise :class:`ValueError`.

    The constructor is O(n + m log m); all hop-distance machinery is lazy
    and cached.
    """

    __slots__ = ("_n", "_edges", "_adj", "__dict__")

    def __init__(self, n: int, edges: Iterable[tuple[NodeId, NodeId]] = ()) -> None:
        if n < 0:
            raise InvalidParameterError(f"node count must be >= 0, got {n}")
        self._n = int(n)
        norm: set[Edge] = set()
        for u, v in edges:
            e = normalize_edge(int(u), int(v))
            if not (0 <= e[0] < n and 0 <= e[1] < n):
                raise InvalidParameterError(f"edge {e} out of range for n={n}")
            norm.add(e)
        self._edges: tuple[Edge, ...] = tuple(sorted(norm))
        adj: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in self._edges:
            adj[u].append(v)
            adj[v].append(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(tuple(sorted(a)) for a in adj)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """Sorted tuple of normalized edges."""
        return self._edges

    def nodes(self) -> range:
        """Iterable over all node IDs."""
        return range(self._n)

    def neighbors(self, u: NodeId) -> tuple[int, ...]:
        """Sorted tuple of ``u``'s 1-hop neighbors."""
        return self._adj[u]

    def degree(self, u: NodeId) -> int:
        """Number of 1-hop neighbors of ``u``."""
        return len(self._adj[u])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``{u, v}`` is an edge (False for u == v)."""
        if u == v:
            return False
        a, b = (u, v) if len(self._adj[u]) <= len(self._adj[v]) else (v, u)
        return b in self._adj[a]

    def average_degree(self) -> float:
        """Mean node degree, ``2m / n`` (0.0 for the empty graph)."""
        return 2.0 * self.m / self._n if self._n else 0.0

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.m})"

    # ------------------------------------------------------------------ #
    # hop distances
    # ------------------------------------------------------------------ #

    @cached_property
    def _adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix (cached)."""
        a = np.zeros((self._n, self._n), dtype=bool)
        if self._edges:
            e = np.asarray(self._edges, dtype=np.intp)
            a[e[:, 0], e[:, 1]] = True
            a[e[:, 1], e[:, 0]] = True
        return a

    @cached_property
    def hop_distances(self) -> np.ndarray:
        """All-pairs hop-distance matrix, shape ``(n, n)``, dtype int16.

        Unreachable pairs hold :data:`UNREACHABLE`.  Computed once with a
        vectorized multi-source frontier expansion: each BFS level is one
        boolean matrix product, so the total cost is O(diameter) dense
        matrix-vector sweeps — ideal at the paper's scales.
        """
        n = self._n
        if n == 0:
            return np.zeros((0, 0), dtype=np.int16)
        adj = self._adjacency_matrix
        dist = np.full((n, n), UNREACHABLE, dtype=np.int16)
        np.fill_diagonal(dist, 0)
        frontier = np.eye(n, dtype=bool)
        visited = frontier.copy()
        level = 0
        while frontier.any():
            level += 1
            # next frontier: nodes adjacent to the current frontier rows,
            # not yet visited.  frontier @ adj is a boolean "reach in one
            # more hop" product.
            nxt = (frontier @ adj) & ~visited
            if not nxt.any():
                break
            dist[nxt] = level
            visited |= nxt
            frontier = nxt
        return dist

    def bfs_distances(self, source: NodeId) -> np.ndarray:
        """Hop distances from ``source`` to every node (int16 vector)."""
        return self.hop_distances[source]

    def hop_distance(self, u: NodeId, v: NodeId) -> int:
        """Hop distance between ``u`` and ``v`` (:data:`UNREACHABLE` if none)."""
        return int(self.hop_distances[u, v])

    def eccentricity(self, u: NodeId) -> int:
        """Greatest hop distance from ``u`` to any reachable node."""
        row = self.hop_distances[u]
        finite = row[row < UNREACHABLE]
        return int(finite.max()) if finite.size else 0

    def diameter(self) -> int:
        """Graph diameter; raises on disconnected graphs."""
        if not self.is_connected():
            raise DisconnectedGraphError("diameter of a disconnected graph")
        return int(self.hop_distances.max()) if self._n else 0

    # ------------------------------------------------------------------ #
    # neighborhoods
    # ------------------------------------------------------------------ #

    def khop_neighbors(self, u: NodeId, k: int) -> tuple[int, ...]:
        """Nodes at hop distance ``1..k`` from ``u`` (excludes ``u``), sorted.

        This is the paper's "k-hop neighborhood" of a node: everything a
        TTL-``k`` scoped flood started at ``u`` can reach.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        row = self.hop_distances[u]
        mask = (row >= 1) & (row <= k)
        return tuple(np.flatnonzero(mask).tolist())

    def closed_khop_neighbors(self, u: NodeId, k: int) -> tuple[int, ...]:
        """``khop_neighbors(u, k)`` plus ``u`` itself, sorted."""
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        row = self.hop_distances[u]
        mask = row <= k
        return tuple(np.flatnonzero(mask).tolist())

    def nodes_within(self, sources: Sequence[NodeId], k: int) -> tuple[int, ...]:
        """Nodes at hop distance ``<= k`` from *any* node in ``sources``."""
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if len(sources) == 0:
            return ()
        sub = self.hop_distances[np.asarray(sources, dtype=np.intp)]
        mask = (sub <= k).any(axis=0)
        return tuple(np.flatnonzero(mask).tolist())

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected).

        Uses a plain adjacency-list BFS so connectivity filtering of
        candidate topologies never triggers the dense all-pairs matrix.
        """
        if self._n <= 1:
            return True
        seen = np.zeros(self._n, dtype=bool)
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def connected_components(self) -> list[tuple[int, ...]]:
        """Connected components as sorted node tuples, largest first."""
        comps: list[tuple[int, ...]] = []
        seen = np.zeros(self._n, dtype=bool)
        dist = self.hop_distances
        for u in range(self._n):
            if seen[u]:
                continue
            members = np.flatnonzero(dist[u] < UNREACHABLE)
            seen[members] = True
            comps.append(tuple(members.tolist()))
        comps.sort(key=lambda c: (-len(c), c))
        return comps

    def is_connected_subset(self, nodes: Iterable[NodeId]) -> bool:
        """Whether the subgraph induced by ``nodes`` is connected.

        An empty or singleton subset counts as connected.  Used to verify
        backbone (CDS) connectivity.
        """
        node_list = sorted(set(nodes))
        if len(node_list) <= 1:
            return True
        node_set = set(node_list)
        root = node_list[0]
        stack = [root]
        seen = {root}
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v in node_set and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(node_set)

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def without_nodes(self, removed: Iterable[NodeId]) -> "Graph":
        """Copy of the graph with ``removed`` nodes isolated (edges dropped).

        Node numbering is preserved so that clusterings computed before and
        after a failure are directly comparable (§3.3 maintenance).
        """
        gone = set(removed)
        for u in gone:
            if not (0 <= u < self._n):
                raise InvalidParameterError(f"node {u} out of range")
        keep = [e for e in self._edges if e[0] not in gone and e[1] not in gone]
        return Graph(self._n, keep)

    def with_edges(self, extra: Iterable[tuple[NodeId, NodeId]]) -> "Graph":
        """Copy of the graph with additional edges."""
        return Graph(self._n, list(self._edges) + list(extra))

    def induced_subgraph_edges(self, nodes: Iterable[NodeId]) -> list[Edge]:
        """Edges of the subgraph induced by ``nodes`` (original numbering)."""
        s = set(nodes)
        return [e for e in self._edges if e[0] in s and e[1] in s]

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (all nodes, then edges)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Import from networkx; nodes must be integers ``0..n-1``."""
        nodes = sorted(g.nodes())
        n = len(nodes)
        if nodes != list(range(n)):
            raise InvalidParameterError(
                "from_networkx requires nodes labelled 0..n-1; relabel first"
            )
        return cls(n, g.edges())

    @classmethod
    def from_edge_list(cls, edges: Iterable[tuple[NodeId, NodeId]]) -> "Graph":
        """Build a graph whose size is inferred from the maximum endpoint."""
        edge_list = [normalize_edge(u, v) for u, v in edges]
        n = 1 + max((e[1] for e in edge_list), default=-1)
        return cls(n, edge_list)
