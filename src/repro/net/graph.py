"""Compact immutable undirected graph with pluggable hop-distance backends.

Every algorithm in the paper is defined in terms of *hop distances* in the
original network ``G``: k-hop neighborhoods for clustering, 2k+1-hop
neighborhoods for neighbor-clusterhead discovery, and hop-count "virtual
distances" between clusterheads.  :class:`Graph` answers all of those
queries through a :class:`~repro.net.oracle.DistanceOracle`, of which three
interchangeable backends exist (see :mod:`repro.net.oracle` for the full
selection guide):

* **dense** — the all-pairs ``(n, n)`` int32 matrix materialized by the
  bit-packed batched BFS kernel; fastest at the paper's scales (N <= a few
  hundred) and the default up to :data:`~repro.net.oracle.DENSE_AUTO_MAX`
  nodes.
* **lazy** — CSR adjacency arrays plus on-demand per-source BFS rows
  (batched through the same kernel) and depth-limited balls under
  byte-budgeted LRU caches; sub-quadratic memory, the default for larger
  graphs.
* **landmark** — the lazy machinery plus exact pruned landmark labels
  (:mod:`repro.net.labeling`); pair distances in O(|label|) for
  pair-heavy consumers.

Call :meth:`Graph.use_distance_backend` to force a backend;
:attr:`Graph.hop_distances` remains as the small-n/compatibility API and
always materializes the dense matrix.

Design notes
------------
* Nodes are dense integers ``0..n-1``; the paper's "lowest ID" priority is
  the natural integer order on these.
* The graph is immutable.  Maintenance operations (node failure, §3.3 of the
  paper) produce *new* graphs via :meth:`Graph.without_nodes`, which keeps
  the original node numbering so results remain comparable.  Oracles are
  caches over the immutable structure, so backend switches are safe — and
  single-node removals patch the CSR arrays and carry still-valid cached
  rows/balls into the derived graph's oracle instead of recomputing.
* Mobility (nodes that move rather than disappear) produces new graphs via
  :meth:`Graph.with_edge_delta`: successive unit-disk snapshots differ by a
  few edges, so the CSR arrays are patched only around the changed edges'
  endpoints and oracle caches inherit under the edge-delta valid-prefix
  rules (:meth:`~repro.net.oracle.LazyDistanceOracle.inherit_edge_delta`).
* Node arrivals (the long-lived service's growth path) produce new graphs
  via :meth:`Graph.with_nodes`: new nodes append at the next IDs, CSR rows
  for them are appended while only the attachment endpoints' slices are
  rewritten, and oracle caches carry over under the decrease-only
  node-add rules (:meth:`~repro.net.oracle.LazyDistanceOracle.inherit_node_add`).
* All backends use the int32 :data:`UNREACHABLE` sentinel and refuse
  graphs beyond :data:`~repro.net.oracle.MAX_ORACLE_NODES` nodes rather
  than silently overflowing hop distances (the seed's int16 ceiling of
  32766 nodes is gone).
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DisconnectedGraphError, InvalidParameterError
from ..types import DistArray, Edge, IndexArray, NodeId, normalize_edge
from .oracle import (
    UNREACHABLE,
    DistanceOracle,
    build_distance_oracle,
    resolve_backend,
)

__all__ = ["Graph", "UNREACHABLE"]


class Graph:
    """Immutable undirected graph on nodes ``0..n-1``.

    Args:
        n: number of nodes.
        edges: iterable of ``(u, v)`` pairs; order and duplicates are
            normalized away.  Self-loops raise :class:`ValueError`.

    The constructor is O(n + m log m); all hop-distance machinery is lazy
    and cached.
    """

    __slots__ = ("_n", "_edges", "_adj", "_oracles", "_backend", "__dict__")

    def __init__(self, n: int, edges: Iterable[tuple[NodeId, NodeId]] = ()) -> None:
        if n < 0:
            raise InvalidParameterError(f"node count must be >= 0, got {n}")
        self._n = int(n)
        norm: set[Edge] = set()
        for u, v in edges:
            e = normalize_edge(int(u), int(v))
            if not (0 <= e[0] < n and 0 <= e[1] < n):
                raise InvalidParameterError(f"edge {e} out of range for n={n}")
            norm.add(e)
        self._edges: tuple[Edge, ...] = tuple(sorted(norm))
        adj: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in self._edges:
            adj[u].append(v)
            adj[v].append(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(tuple(sorted(a)) for a in adj)
        self._oracles: dict[str, DistanceOracle] = {}
        self._backend: str | None = None  # None = auto policy

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """Sorted tuple of normalized edges."""
        return self._edges

    def nodes(self) -> range:
        """Iterable over all node IDs."""
        return range(self._n)

    def neighbors(self, u: NodeId) -> tuple[int, ...]:
        """Sorted tuple of ``u``'s 1-hop neighbors."""
        return self._adj[u]

    def degree(self, u: NodeId) -> int:
        """Number of 1-hop neighbors of ``u``."""
        return len(self._adj[u])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``{u, v}`` is an edge (False for u == v)."""
        if u == v:
            return False
        a, b = (u, v) if len(self._adj[u]) <= len(self._adj[v]) else (v, u)
        return b in self._adj[a]

    def average_degree(self) -> float:
        """Mean node degree, ``2m / n`` (0.0 for the empty graph)."""
        return 2.0 * self.m / self._n if self._n else 0.0

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.m})"

    # ------------------------------------------------------------------ #
    # distance backends
    # ------------------------------------------------------------------ #

    @cached_property
    def csr_adjacency(self) -> tuple[IndexArray, IndexArray]:
        """CSR adjacency arrays ``(indptr, indices)``.

        ``indices[indptr[u]:indptr[u+1]]`` are ``u``'s sorted neighbors.
        This is the representation the lazy BFS kernels run on; it costs
        O(n + m) memory regardless of graph size.
        """
        degs = np.fromiter(
            (len(a) for a in self._adj), dtype=np.int64, count=self._n
        )
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        indices = np.fromiter(
            (v for a in self._adj for v in a),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        indptr.setflags(write=False)
        indices.setflags(write=False)
        return indptr, indices

    def distance_oracle(self, backend: str | None = None) -> DistanceOracle:
        """The distance oracle for ``backend`` (created once per backend).

        ``backend=None`` uses the graph's current default: the backend set
        via :meth:`use_distance_backend`, else the auto policy (dense for
        small n, lazy above :data:`~repro.net.oracle.DENSE_AUTO_MAX`).
        """
        name = resolve_backend(backend or self._backend, self._n)
        oracle = self._oracles.get(name)
        if oracle is None:
            oracle = build_distance_oracle(self, name)
            self._oracles[name] = oracle
        return oracle

    def use_distance_backend(self, backend: str) -> "Graph":
        """Pin the default distance backend (``"dense"``/``"lazy"``/``"auto"``).

        Returns ``self`` for chaining; existing per-backend caches are kept.
        """
        resolve_backend(backend, self._n)  # validate early
        self._backend = None if backend == "auto" else backend
        return self

    @contextmanager
    def pinned_distance_backend(self, backend: str):
        """Temporarily pin the default backend; restores the prior policy.

        Lets an experiment force a backend for one computation without a
        lasting side effect on a shared graph.
        """
        prev = self._backend
        self.use_distance_backend(backend)
        try:
            yield self
        finally:
            self._backend = prev

    @property
    def oracle(self) -> DistanceOracle:
        """The graph's current default distance oracle."""
        return self.distance_oracle()

    @property
    def distance_backend(self) -> str:
        """Name of the backend the default oracle uses."""
        return resolve_backend(self._backend, self._n)

    @property
    def dense_materialized(self) -> bool:
        """Whether an O(n²) dense matrix has been computed for this graph.

        Benchmarks assert this stays ``False`` on the lazy path.
        """
        from .oracle import DenseDistanceOracle

        dense = self._oracles.get("dense")
        return isinstance(dense, DenseDistanceOracle) and dense.materialized

    # ------------------------------------------------------------------ #
    # hop distances
    # ------------------------------------------------------------------ #

    @property
    def hop_distances(self) -> DistArray:
        """All-pairs hop-distance matrix, shape ``(n, n)``, dtype int32.

        Compatibility/small-n API: this always materializes the **dense**
        backend's O(n²) matrix, whatever the default backend is.  Scalable
        code should use :meth:`bfs_distances`, :meth:`khop_neighbors` or
        the oracle's ``ball`` queries instead.
        """
        from .oracle import DenseDistanceOracle

        dense = self.distance_oracle("dense")
        assert isinstance(dense, DenseDistanceOracle)
        return dense.matrix

    def bfs_distances(self, source: NodeId) -> DistArray:
        """Hop distances from ``source`` to every node (read-only int32)."""
        return self.oracle.row(source)

    def hop_distance(self, u: NodeId, v: NodeId) -> int:
        """Hop distance between ``u`` and ``v`` (:data:`UNREACHABLE` if none)."""
        return self.oracle.distance(u, v)

    def eccentricity(self, u: NodeId) -> int:
        """Greatest hop distance from ``u`` to any reachable node."""
        return self.oracle.eccentricity(u)

    def diameter(self) -> int:
        """Graph diameter; raises on disconnected graphs.

        On the dense backend this is one ``matrix.max()``; on the lazy
        backend it streams one BFS row per node — O(n·(n+m)) time but
        never O(n²) resident memory.
        """
        if not self.is_connected():
            raise DisconnectedGraphError("diameter of a disconnected graph")
        if self._n == 0:
            return 0
        from .oracle import DenseDistanceOracle

        oracle = self.oracle
        if isinstance(oracle, DenseDistanceOracle):
            return int(oracle.matrix.max())
        return max(oracle.eccentricity(u) for u in range(self._n))

    # ------------------------------------------------------------------ #
    # neighborhoods
    # ------------------------------------------------------------------ #

    def khop_neighbors(self, u: NodeId, k: int) -> tuple[int, ...]:
        """Nodes at hop distance ``1..k`` from ``u`` (excludes ``u``), sorted.

        This is the paper's "k-hop neighborhood" of a node: everything a
        TTL-``k`` scoped flood started at ``u`` can reach.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        nodes, dists = self.oracle.ball(u, k)
        return tuple(nodes[dists >= 1].tolist())

    def closed_khop_neighbors(self, u: NodeId, k: int) -> tuple[int, ...]:
        """``khop_neighbors(u, k)`` plus ``u`` itself, sorted."""
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        nodes, _ = self.oracle.ball(u, k)
        return tuple(nodes.tolist())

    def nodes_within(self, sources: Sequence[NodeId], k: int) -> tuple[int, ...]:
        """Nodes at hop distance ``<= k`` from *any* node in ``sources``.

        Computed as a union of balls, so cost scales with the covered
        region rather than with ``n × len(sources)``.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if len(sources) == 0:
            return ()
        oracle = self.oracle
        covered: set[int] = set()
        for s in sources:
            nodes, _ = oracle.ball(int(s), k)
            covered.update(nodes.tolist())
        return tuple(sorted(covered))

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected).

        Uses a plain adjacency-list BFS so connectivity filtering of
        candidate topologies never triggers the distance machinery.
        """
        if self._n <= 1:
            return True
        seen = np.zeros(self._n, dtype=bool)
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def connected_components(self) -> list[tuple[int, ...]]:
        """Connected components as sorted node tuples, largest first."""
        comps: list[tuple[int, ...]] = []
        seen = np.zeros(self._n, dtype=bool)
        oracle = self.oracle
        for u in range(self._n):
            if seen[u]:
                continue
            members = np.flatnonzero(oracle.row(u) < UNREACHABLE)
            seen[members] = True
            comps.append(tuple(members.tolist()))
        comps.sort(key=lambda c: (-len(c), c))
        return comps

    def is_connected_subset(self, nodes: Iterable[NodeId]) -> bool:
        """Whether the subgraph induced by ``nodes`` is connected.

        An empty or singleton subset counts as connected.  Used to verify
        backbone (CDS) connectivity.
        """
        node_list = sorted(set(nodes))
        if len(node_list) <= 1:
            return True
        node_set = set(node_list)
        root = node_list[0]
        stack = [root]
        seen = {root}
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v in node_set and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(node_set)

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def without_nodes(self, removed: Iterable[NodeId]) -> "Graph":
        """Copy of the graph with ``removed`` nodes isolated (edges dropped).

        Node numbering is preserved so that clusterings computed before and
        after a failure are directly comparable (§3.3 maintenance).  The
        copy inherits the default distance backend.

        Single-node removals — the churn/repair hot path — take a fast
        incremental route: adjacency and CSR arrays are patched instead of
        rebuilt from the edge list, and any lazy-family oracle caches are
        carried over minus the entries the removal invalidates (see
        :meth:`~repro.net.oracle.LazyDistanceOracle.inherit_from`).
        """
        gone = {int(u) for u in removed}
        for u in gone:
            if not (0 <= u < self._n):
                raise InvalidParameterError(f"node {u} out of range")
        if len(gone) == 1:
            return self._without_single_node(next(iter(gone)))
        keep = [e for e in self._edges if e[0] not in gone and e[1] not in gone]
        g = Graph(self._n, keep)
        g._backend = self._backend
        return g

    def _without_single_node(self, x: NodeId) -> "Graph":
        """Incremental single-node removal: patch arrays, inherit caches."""
        g = Graph.__new__(Graph)
        g._n = self._n
        g._edges = tuple(e for e in self._edges if e[0] != x and e[1] != x)
        adj = list(self._adj)
        for v in self._adj[x]:
            adj[v] = tuple(w for w in adj[v] if w != x)
        adj[x] = ()
        g._adj = tuple(adj)
        g._oracles = {}
        g._backend = self._backend
        if "csr_adjacency" in self.__dict__:
            # Patch the parent's CSR arrays: drop x's own slice and every
            # occurrence of x in its neighbors' slices; no O(m log m)
            # rebuild from the python adjacency.
            indptr, indices = self.csr_adjacency
            keep_mask = indices != x
            keep_mask[indptr[x] : indptr[x + 1]] = False
            new_indices = indices[keep_mask]
            degs = np.diff(indptr).copy()
            degs[x] = 0
            degs[list(self._adj[x])] -= 1
            new_indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(degs, out=new_indptr[1:])
            new_indptr.setflags(write=False)
            new_indices.setflags(write=False)
            g.__dict__["csr_adjacency"] = (new_indptr, new_indices)
        # Incremental oracle maintenance: seed each lazy-family backend
        # with the parent's still-valid cached rows and balls.
        self._inherit_lazy_oracles(g, lambda child, parent: child.inherit_from(parent, x))
        return g

    def _inherit_lazy_oracles(self, g: "Graph", inherit) -> None:
        """Derive ``g``'s lazy-family oracles from this graph's via ``inherit``.

        ``inherit(child, parent)`` seeds the freshly constructed child
        oracle (same class and cache budgets as the parent) with whatever
        of the parent's caches survives the structural change.  Dense
        oracles are never carried (their matrix is monolithic).
        """
        from .oracle import LazyDistanceOracle

        for name, parent in self._oracles.items():
            if isinstance(parent, LazyDistanceOracle):
                child = type(parent)(
                    g,
                    row_cache_bytes=parent._rows.budget,
                    ball_cache_bytes=parent._balls.budget,
                )
                inherit(child, parent)
                g._oracles[name] = child

    def with_edge_delta(
        self,
        added: Iterable[tuple[NodeId, NodeId]] = (),
        removed: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> "Graph":
        """Copy of the graph with ``added`` edges inserted and ``removed`` dropped.

        The mobility hot path (§3.3 "nodes that move away"): successive
        RandomWaypoint unit-disk snapshots differ by a handful of edges
        while every node persists.  Instead of rebuilding from the full
        edge list, the adjacency and CSR arrays are patched only for the
        *touched* nodes (endpoints of changed edges), and every
        lazy-family oracle carries its still-valid cached rows, partial
        rows and balls into the derived graph via
        :meth:`~repro.net.oracle.LazyDistanceOracle.inherit_edge_delta`.

        Already-present ``added`` edges and absent ``removed`` edges are
        ignored (the caller hands over a raw snapshot diff); an edge in
        both sets raises.  An empty *effective* delta returns ``self``
        (graphs are immutable, so sharing is safe).
        """
        add: set[Edge] = set()
        for u, v in added:
            e = normalize_edge(int(u), int(v))
            if not (0 <= e[0] < self._n and 0 <= e[1] < self._n):
                raise InvalidParameterError(f"edge {e} out of range for n={self._n}")
            add.add(e)
        rem: set[Edge] = set()
        for u, v in removed:
            e = normalize_edge(int(u), int(v))
            if not (0 <= e[0] < self._n and 0 <= e[1] < self._n):
                raise InvalidParameterError(f"edge {e} out of range for n={self._n}")
            rem.add(e)
        overlap = add & rem
        if overlap:
            raise InvalidParameterError(
                f"edges both added and removed: {sorted(overlap)[:3]}"
            )
        cur = set(self._edges)
        add -= cur
        rem &= cur
        if not add and not rem:
            return self
        touched = sorted({x for e in add for x in e} | {x for e in rem for x in e})
        g = Graph.__new__(Graph)
        g._n = self._n
        g._edges = tuple(sorted((cur - rem) | add))
        adj = list(self._adj)
        patch: dict[int, set[int]] = {t: set(self._adj[t]) for t in touched}
        for u, v in rem:
            patch[u].discard(v)
            patch[v].discard(u)
        for u, v in add:
            patch[u].add(v)
            patch[v].add(u)
        for t in touched:
            adj[t] = tuple(sorted(patch[t]))
        g._adj = tuple(adj)
        g._oracles = {}
        g._backend = self._backend
        if "csr_adjacency" in self.__dict__:
            g.__dict__["csr_adjacency"] = self._patched_csr(g._adj, touched)
        add_list, rem_list = sorted(add), sorted(rem)
        self._inherit_lazy_oracles(
            g,
            lambda child, parent: child.inherit_edge_delta(
                parent, add_list, rem_list
            ),
        )
        return g

    def _patched_csr(
        self, new_adj: Sequence[tuple[int, ...]], touched: Sequence[int]
    ) -> tuple[IndexArray, IndexArray]:
        """CSR arrays for ``new_adj``, reusing this graph's cached CSR.

        Only the touched nodes' slices are rewritten; the (typically much
        larger) untouched spans between them are copied contiguously —
        O(#touched) Python iterations plus O(m) memcpy, never an
        O(m log m) rebuild from the edge list.
        """
        indptr, indices = self.csr_adjacency
        new_degs = np.diff(indptr).copy()
        for t in touched:
            new_degs[t] = len(new_adj[t])
        new_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(new_degs, out=new_indptr[1:])
        new_indices = np.empty(int(new_indptr[-1]), dtype=np.int64)
        prev = 0
        for t in [*touched, self._n]:
            if t > prev:  # contiguous untouched span [prev, t)
                new_indices[new_indptr[prev] : new_indptr[t]] = indices[
                    indptr[prev] : indptr[t]
                ]
            if t < self._n:
                new_indices[new_indptr[t] : new_indptr[t + 1]] = np.asarray(
                    new_adj[t], dtype=np.int64
                )
            prev = t + 1
        new_indptr.setflags(write=False)
        new_indices.setflags(write=False)
        return new_indptr, new_indices

    def with_nodes(
        self,
        count: int,
        edges: Iterable[tuple[NodeId, NodeId]] = (),
        inherit_oracles: bool = True,
    ) -> "Graph":
        """Copy of the graph grown by ``count`` new nodes (the arrival case).

        The mirror of :meth:`without_nodes`: new nodes take the next IDs
        ``n .. n+count-1`` (existing numbering is preserved, so
        clusterings and routes computed before an arrival stay directly
        comparable), and ``edges`` are the arrivals' attachment edges.
        Every attachment edge must touch at least one *new* node; a delta
        purely among existing nodes is :meth:`with_edge_delta`'s job.

        Like the other derived-graph hot paths, adjacency and CSR arrays
        are patched rather than rebuilt — new CSR rows are appended and
        only the old attachment endpoints' slices are rewritten — and
        every lazy-family oracle carries its cached rows, partial rows
        and balls into the grown graph via
        :meth:`~repro.net.oracle.LazyDistanceOracle.inherit_node_add`
        (arrivals only ever *decrease* distances, so carried rows are
        padded and Dial-relaxed instead of recomputed).

        ``inherit_oracles=False`` skips that carry and starts the grown
        graph with empty oracle caches.  Relaxing every cached row costs
        O(cache) *per arrival*; a long-lived growth loop that admits
        thousands of nodes between queries pays O(cache x arrivals) to
        preserve rows it could rebuild once, on demand, at the next
        query batch.  Dropping caches never changes results — the
        oracles are exact and rebuild lazily.

        ``count == 0`` with no edges returns ``self`` (graphs are
        immutable, so sharing is safe).
        """
        if count < 0:
            raise InvalidParameterError(f"node count must be >= 0, got {count}")
        new_n = self._n + count
        add: set[Edge] = set()
        for u, v in edges:
            e = normalize_edge(int(u), int(v))
            if not (0 <= e[0] < new_n and e[1] < new_n):
                raise InvalidParameterError(
                    f"edge {e} out of range for grown n={new_n}"
                )
            if e[1] < self._n:
                raise InvalidParameterError(
                    f"with_nodes edge {e} joins two existing nodes; "
                    "use with_edge_delta for pure edge changes"
                )
            add.add(e)
        if count == 0:
            return self
        added = sorted(add)
        g = Graph.__new__(Graph)
        g._n = new_n
        # Both operands are sorted runs, so timsort merges in O(m).
        g._edges = tuple(sorted(self._edges + tuple(added)))
        adj: list[tuple[int, ...]] = list(self._adj) + [()] * count
        patch: dict[int, set[int]] = {}
        for u, v in added:
            patch.setdefault(u, set(adj[u])).add(v)
            patch.setdefault(v, set(adj[v])).add(u)
        for t, nbrs in patch.items():
            adj[t] = tuple(sorted(nbrs))
        g._adj = tuple(adj)
        g._oracles = {}
        g._backend = self._backend
        if "csr_adjacency" in self.__dict__:
            touched_old = sorted(t for t in patch if t < self._n)
            g.__dict__["csr_adjacency"] = self._grown_csr(
                g._adj, touched_old, new_n
            )
        if inherit_oracles:
            self._inherit_lazy_oracles(
                g, lambda child, parent: child.inherit_node_add(parent, added)
            )
        return g

    def _grown_csr(
        self,
        new_adj: Sequence[tuple[int, ...]],
        touched_old: Sequence[int],
        new_n: int,
    ) -> tuple[IndexArray, IndexArray]:
        """CSR arrays for a grown graph, reusing this graph's cached CSR.

        Same contract as :meth:`_patched_csr`, plus appended rows for the
        new node IDs ``self.n .. new_n-1``: untouched old spans are copied
        contiguously, only the old attachment endpoints' slices are
        rewritten, and the new nodes' slices land at the tail.
        """
        indptr, indices = self.csr_adjacency
        new_degs = np.zeros(new_n, dtype=np.int64)
        if self._n:
            new_degs[: self._n] = np.diff(indptr)
        for t in touched_old:
            new_degs[t] = len(new_adj[t])
        for x in range(self._n, new_n):
            new_degs[x] = len(new_adj[x])
        new_indptr = np.zeros(new_n + 1, dtype=np.int64)
        np.cumsum(new_degs, out=new_indptr[1:])
        new_indices = np.empty(int(new_indptr[-1]), dtype=np.int64)
        prev = 0
        for t in [*touched_old, self._n]:
            if t > prev:  # contiguous untouched span [prev, t)
                new_indices[new_indptr[prev] : new_indptr[t]] = indices[
                    indptr[prev] : indptr[t]
                ]
            if t < self._n:
                new_indices[new_indptr[t] : new_indptr[t + 1]] = np.asarray(
                    new_adj[t], dtype=np.int64
                )
            prev = t + 1
        for x in range(self._n, new_n):
            new_indices[new_indptr[x] : new_indptr[x + 1]] = np.asarray(
                new_adj[x], dtype=np.int64
            )
        new_indptr.setflags(write=False)
        new_indices.setflags(write=False)
        return new_indptr, new_indices

    def with_edges(self, extra: Iterable[tuple[NodeId, NodeId]]) -> "Graph":
        """Copy of the graph with additional edges."""
        g = Graph(self._n, list(self._edges) + list(extra))
        g._backend = self._backend
        return g

    def induced_subgraph_edges(self, nodes: Iterable[NodeId]) -> list[Edge]:
        """Edges of the subgraph induced by ``nodes`` (original numbering)."""
        s = set(nodes)
        return [e for e in self._edges if e[0] in s and e[1] in s]

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (all nodes, then edges)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Import from networkx; nodes must be integers ``0..n-1``."""
        nodes = sorted(g.nodes())
        n = len(nodes)
        if nodes != list(range(n)):
            raise InvalidParameterError(
                "from_networkx requires nodes labelled 0..n-1; relabel first"
            )
        return cls(n, g.edges())

    @classmethod
    def from_edge_list(cls, edges: Iterable[tuple[NodeId, NodeId]]) -> "Graph":
        """Build a graph whose size is inferred from the maximum endpoint."""
        edge_list = [normalize_edge(u, v) for u, v in edges]
        n = 1 + max((e[1] for e in edge_list), default=-1)
        return cls(n, edge_list)
