"""Network substrate: graphs, geometry, topology generation, energy, mobility.

This subpackage is the paper's "ad hoc network" model: unit-disk graphs over
uniform random placements in a 100 x 100 area, hop-distance machinery, and
the auxiliary physical models (battery, mobility/churn) used by the
power-aware and maintenance discussions of §3.3.
"""

from .energy import EnergyModel, EnergyParams
from .generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    ring_of_cliques,
    star_graph,
    topology_from_graph,
    toroidal_grid,
    two_cliques_bridge,
)
from .geometry import PAPER_AREA, pairwise_distances, random_positions
from .graph import UNREACHABLE, Graph
from .labeling import LandmarkDistanceOracle
from .mobility import ChurnProcess, RandomWaypoint
from .oracle import (
    BATCH_BITS,
    DENSE_AUTO_MAX,
    DIST_DTYPE,
    MAX_ORACLE_NODES,
    ByteBudgetLRU,
    DenseDistanceOracle,
    DistanceOracle,
    LazyDistanceOracle,
    OracleStats,
    build_distance_oracle,
    multi_source_bfs,
)
from .paths import PathOracle, canonical_path, path_interior
from .topology import (
    Topology,
    calibrate_radius,
    radius_for_degree,
    random_topology,
    unit_disk_graph,
)

__all__ = [
    "Graph",
    "UNREACHABLE",
    "DistanceOracle",
    "DenseDistanceOracle",
    "LazyDistanceOracle",
    "LandmarkDistanceOracle",
    "OracleStats",
    "ByteBudgetLRU",
    "build_distance_oracle",
    "multi_source_bfs",
    "DENSE_AUTO_MAX",
    "MAX_ORACLE_NODES",
    "DIST_DTYPE",
    "BATCH_BITS",
    "PathOracle",
    "canonical_path",
    "path_interior",
    "Topology",
    "random_topology",
    "unit_disk_graph",
    "radius_for_degree",
    "calibrate_radius",
    "random_positions",
    "pairwise_distances",
    "PAPER_AREA",
    "EnergyModel",
    "EnergyParams",
    "RandomWaypoint",
    "ChurnProcess",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "toroidal_grid",
    "two_cliques_bridge",
    "ring_of_cliques",
    "caterpillar",
    "topology_from_graph",
]
