"""2-D geometry helpers for unit-disk radio topologies.

The paper deploys ``N`` nodes uniformly at random in a restricted
``100 x 100`` area and assumes every node has the same transmission range.
This module provides the vectorized geometric primitives that the topology
generator builds on: uniform placement, pairwise Euclidean distances, and
disk membership tests.  Everything is NumPy-vectorized; no Python-level
double loops over node pairs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "Area",
    "random_positions",
    "grid_positions",
    "pairwise_distances",
    "pairs_within",
    "nearest_neighbor_distances",
    "bounding_box",
]

#: Rectangular deployment area ``(width, height)`` with origin at (0, 0).
Area = Tuple[float, float]

#: The paper's deployment area.
PAPER_AREA: Area = (100.0, 100.0)


def _check_area(area: Area) -> Area:
    w, h = float(area[0]), float(area[1])
    if w <= 0 or h <= 0:
        raise InvalidParameterError(f"area sides must be positive, got {area!r}")
    return (w, h)


def random_positions(n: int, area: Area, rng: np.random.Generator) -> np.ndarray:
    """Place ``n`` nodes i.i.d. uniformly in ``area``.

    Args:
        n: number of nodes (``n >= 0``).
        area: ``(width, height)`` of the deployment rectangle.
        rng: NumPy random generator (callers own seeding policy).

    Returns:
        ``(n, 2)`` float64 array of coordinates.
    """
    if n < 0:
        raise InvalidParameterError(f"node count must be >= 0, got {n}")
    w, h = _check_area(area)
    pos = rng.random((n, 2))
    pos[:, 0] *= w
    pos[:, 1] *= h
    return pos


def grid_positions(rows: int, cols: int, spacing: float = 1.0) -> np.ndarray:
    """Regular grid placement, row-major node numbering.

    Useful for tests where hop distances must be known analytically.
    """
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid needs rows >= 1 and cols >= 1")
    if spacing <= 0:
        raise InvalidParameterError(f"spacing must be positive, got {spacing}")
    ys, xs = np.mgrid[0:rows, 0:cols]
    pos = np.column_stack([xs.ravel() * spacing, ys.ravel() * spacing])
    return pos.astype(np.float64)


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix.

    For the network sizes of the paper (N <= 200) the dense matrix is both
    the fastest and the simplest representation; avoid it for n >> 10^4.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise InvalidParameterError(f"positions must have shape (n, 2), got {pos.shape}")
    diff = pos[:, None, :] - pos[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def pairs_within(positions: np.ndarray, radius: float) -> list[tuple[int, int]]:
    """All unordered node pairs at Euclidean distance ``<= radius``.

    This is exactly the unit-disk edge set for transmission range ``radius``.
    """
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    dist = pairwise_distances(positions)
    iu, ju = np.triu_indices(dist.shape[0], k=1)
    mask = dist[iu, ju] <= radius
    return list(zip(iu[mask].tolist(), ju[mask].tolist()))


def nearest_neighbor_distances(positions: np.ndarray) -> np.ndarray:
    """Distance from each node to its nearest other node.

    The maximum of this vector is a lower bound on any radius that yields a
    graph without isolated vertices — a cheap necessary condition used by the
    calibration code before attempting connectivity checks.
    """
    dist = pairwise_distances(positions)
    if dist.shape[0] < 2:
        return np.zeros(dist.shape[0])
    np.fill_diagonal(dist, np.inf)
    return dist.min(axis=1)


def bounding_box(positions: Sequence[Sequence[float]]) -> tuple[float, float, float, float]:
    """``(xmin, ymin, xmax, ymax)`` of a non-empty position array."""
    pos = np.asarray(positions, dtype=np.float64)
    if pos.size == 0:
        raise InvalidParameterError("bounding_box of an empty position set")
    return (
        float(pos[:, 0].min()),
        float(pos[:, 1].min()),
        float(pos[:, 0].max()),
        float(pos[:, 1].max()),
    )
