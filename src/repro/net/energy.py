"""Per-node energy accounting for the power-aware discussion of §3.3.

The paper notes that "residual energy level instead of lowest ID can be used
as node priority in the clustering process" so the clusterhead role rotates
and node lifetimes even out.  This module provides the minimal battery model
needed to exercise that: per-node residual energy, fixed per-message
transmit/receive costs, a higher idle drain for backbone (clusterhead /
gateway) roles, and a death threshold.

The model is intentionally simple — the paper does not specify radio
parameters — but it is sufficient to demonstrate the qualitative claim that
energy-priority clustering with rotation spreads the clusterhead burden
(see ``examples/energy_rotation.py`` and the maintenance tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["EnergyParams", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Radio/battery cost constants (arbitrary energy units).

    Attributes:
        initial: full-battery level every node starts with.
        tx_cost: energy per transmitted message.
        rx_cost: energy per received message.
        idle_member: per-round idle drain for plain members.
        idle_backbone: per-round idle drain for clusterheads/gateways
            (strictly larger: backbone nodes listen and forward more).
        death_threshold: a node whose residual drops to or below this is
            considered dead.
    """

    initial: float = 1000.0
    tx_cost: float = 1.0
    rx_cost: float = 0.5
    idle_member: float = 0.05
    idle_backbone: float = 0.25
    death_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.initial <= self.death_threshold:
            raise InvalidParameterError("initial energy must exceed death threshold")
        for name in ("tx_cost", "rx_cost", "idle_member", "idle_backbone"):
            if getattr(self, name) < 0:
                raise InvalidParameterError(f"{name} must be >= 0")


class EnergyModel:
    """Mutable residual-energy ledger for ``n`` nodes."""

    def __init__(self, n: int, params: EnergyParams | None = None) -> None:
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        self.params = params or EnergyParams()
        self._residual = np.full(n, self.params.initial, dtype=np.float64)

    @property
    def n(self) -> int:
        """Number of tracked nodes."""
        return self._residual.shape[0]

    def residual(self, u: int) -> float:
        """Remaining energy of node ``u``."""
        return float(self._residual[u])

    def residuals(self) -> np.ndarray:
        """Copy of the residual-energy vector."""
        return self._residual.copy()

    def is_alive(self, u: int) -> bool:
        """Whether ``u`` still has usable energy."""
        return bool(self._residual[u] > self.params.death_threshold)

    def alive_nodes(self) -> tuple[int, ...]:
        """Sorted tuple of alive node IDs."""
        mask = self._residual > self.params.death_threshold
        return tuple(np.flatnonzero(mask).tolist())

    def charge_tx(self, u: int, messages: int = 1) -> None:
        """Deduct transmit cost for ``messages`` sends by ``u``."""
        if messages < 0:
            raise InvalidParameterError("messages must be >= 0")
        self._residual[u] -= messages * self.params.tx_cost

    def charge_rx(self, u: int, messages: int = 1) -> None:
        """Deduct receive cost for ``messages`` receptions by ``u``."""
        if messages < 0:
            raise InvalidParameterError("messages must be >= 0")
        self._residual[u] -= messages * self.params.rx_cost

    def charge_load(
        self, tx_counts: np.ndarray, rx_counts: np.ndarray
    ) -> None:
        """Deduct one traffic batch's per-node transmit/receive message counts.

        The vectorized form of :meth:`charge_tx`/:meth:`charge_rx` used by
        the traffic engine: ``tx_counts``/``rx_counts`` are length-``n``
        message-count vectors (e.g. the forwarding-load accounting of
        :mod:`repro.traffic.load`), charged in two array operations instead
        of 2n Python calls.
        """
        tx = np.asarray(tx_counts, dtype=np.float64)
        rx = np.asarray(rx_counts, dtype=np.float64)
        if tx.shape != (self.n,) or rx.shape != (self.n,):
            raise InvalidParameterError(
                f"load vectors must have shape ({self.n},), got "
                f"{tx.shape} and {rx.shape}"
            )
        if (tx < 0).any() or (rx < 0).any():
            raise InvalidParameterError("message counts must be >= 0")
        self._residual -= tx * self.params.tx_cost + rx * self.params.rx_cost

    def charge_idle_round(self, backbone: set[int] | frozenset[int]) -> None:
        """Deduct one round of idle drain; backbone nodes drain faster."""
        self._residual -= self.params.idle_member
        if backbone:
            idx = np.fromiter(backbone, dtype=np.intp)
            self._residual[idx] -= self.params.idle_backbone - self.params.idle_member

    def priority_keys(self) -> list[tuple[float, int]]:
        """Per-node priority keys ``(-residual, id)``: lower sorts better.

        Feeding these into the clustering core implements the paper's
        "residual energy level instead of lowest ID" priority with the ID as
        a deterministic tie-break.
        """
        return [(-float(self._residual[u]), u) for u in range(self.n)]
