"""Pluggable hop-distance backends: the :class:`DistanceOracle` subsystem.

Every algorithm in the paper is phrased in terms of hop distances in ``G``,
but the algorithms differ wildly in *how much* of the distance structure
they touch: clustering and the neighbor rules only ever look at small
``O(Δ^k)`` balls around nodes, while path construction needs full BFS rows
from a handful of clusterheads.  The seed implementation served everything
from one dense ``(n, n)`` all-pairs matrix — an O(n²) memory/time wall.

This module splits the distance machinery into two interchangeable
backends behind one interface:

* :class:`DenseDistanceOracle` — materializes the full all-pairs matrix
  with a vectorized multi-source frontier expansion (the seed behavior).
  Fastest for the paper's scales (N <= a few hundred), O(n²) memory.
* :class:`LazyDistanceOracle` — keeps only the CSR adjacency arrays and
  computes distance **rows** (full single-source BFS) and **balls**
  (depth-limited BFS) on demand, caching both under byte-budgeted LRU
  policies.  Memory is O(m + cached rows/balls); nothing quadratic is
  ever allocated.

:func:`build_distance_oracle` picks a backend automatically (dense up to
:data:`DENSE_AUTO_MAX` nodes, lazy above); ``Graph`` routes all of its
distance queries through its current oracle, so the entire pipeline
(clustering, neighbor rules, gateways, CDS verification, broadcast)
inherits the backend transparently.

Both backends share the :data:`UNREACHABLE` int16 sentinel and therefore
refuse graphs with more than :data:`MAX_ORACLE_NODES` nodes, where a real
hop distance could collide with the sentinel (satellite guard: previously
this overflowed silently).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..types import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular import
    from .graph import Graph

__all__ = [
    "UNREACHABLE",
    "MAX_ORACLE_NODES",
    "DENSE_AUTO_MAX",
    "OracleStats",
    "DistanceOracle",
    "DenseDistanceOracle",
    "LazyDistanceOracle",
    "build_distance_oracle",
    "resolve_backend",
]

#: Sentinel hop distance for unreachable pairs (fits in int16; larger than
#: any real hop distance for n <= MAX_ORACLE_NODES).
UNREACHABLE: int = int(np.iinfo(np.int16).max)

#: Largest node count for which int16 hop distances cannot collide with the
#: :data:`UNREACHABLE` sentinel (a path visits each node at most once, so
#: hop distances are <= n - 1 <= 32765 < 32767).
MAX_ORACLE_NODES: int = UNREACHABLE - 1

#: ``backend="auto"`` uses the dense matrix up to this many nodes — at the
#: paper's scales the one-shot vectorized sweep beats per-source BFS — and
#: the lazy CSR backend above it.
DENSE_AUTO_MAX: int = 512

#: Default byte budget for the lazy backend's cached BFS rows (~16 MiB).
DEFAULT_ROW_CACHE_BYTES: int = 16 << 20

#: Default byte budget for the lazy backend's cached balls (~8 MiB).
DEFAULT_BALL_CACHE_BYTES: int = 8 << 20


@dataclass(frozen=True)
class OracleStats:
    """Introspection counters for benchmarks and memory assertions.

    Attributes:
        backend: ``"dense"`` or ``"lazy"``.
        rows_computed: full BFS rows computed so far.
        row_hits: row queries answered from cache.
        balls_computed: depth-limited BFS balls computed so far.
        ball_hits: ball queries answered from cache (or from a cached row).
        cached_bytes: bytes currently held by distance caches.
        peak_cached_bytes: high-water mark of ``cached_bytes``.
    """

    backend: str
    rows_computed: int
    row_hits: int
    balls_computed: int
    ball_hits: int
    cached_bytes: int
    peak_cached_bytes: int


def _check_size(n: int) -> None:
    if n > MAX_ORACLE_NODES:
        raise InvalidParameterError(
            f"graph has {n} nodes; int16 hop distances support at most "
            f"{MAX_ORACLE_NODES} (a longer path would collide with the "
            "UNREACHABLE sentinel)"
        )


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


class DistanceOracle:
    """Interface shared by all hop-distance backends.

    Subclasses answer four query shapes; everything else in the repo is
    built from them:

    * :meth:`row` — full BFS distances from one source (int16 vector);
    * :meth:`rows` — stacked rows for several sources;
    * :meth:`distance` — a single pair distance;
    * :meth:`ball` — the closed ``radius``-ball around a node, as sorted
      node IDs plus their distances (the only query the clustering and
      neighbor-rule hot paths need, and the one a lazy backend can answer
      in output-sensitive time).
    """

    backend: str = "abstract"

    def __init__(self, graph: "Graph") -> None:
        _check_size(graph.n)
        self._graph = graph

    @property
    def graph(self) -> "Graph":
        """The graph this oracle answers for."""
        return self._graph

    # -- queries ------------------------------------------------------- #

    def row(self, source: NodeId) -> np.ndarray:
        """Hop distances from ``source`` to all nodes (read-only int16)."""
        raise NotImplementedError

    def rows(self, sources: Sequence[NodeId]) -> np.ndarray:
        """Stacked distance rows, shape ``(len(sources), n)``."""
        if len(sources) == 0:
            return np.zeros((0, self._graph.n), dtype=np.int16)
        return np.stack([self.row(int(s)) for s in sources])

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Hop distance between ``u`` and ``v`` (UNREACHABLE if none)."""
        return int(self.row(u)[v])

    def ball(self, source: NodeId, radius: int) -> Tuple[np.ndarray, np.ndarray]:
        """Closed ball: nodes at hop distance ``<= radius`` from ``source``.

        Returns ``(nodes, dists)`` — sorted node IDs (including ``source``
        at distance 0) and their distances, both read-only.
        """
        raise NotImplementedError

    def ball_map(self, source: NodeId, radius: int) -> dict[int, int]:
        """:meth:`ball` as a ``node -> distance`` dict (absent = beyond radius)."""
        nodes, dists = self.ball(source, radius)
        return dict(zip(nodes.tolist(), dists.tolist()))

    def eccentricity(self, source: NodeId) -> int:
        """Greatest finite hop distance from ``source``."""
        row = self.row(source)
        finite = row[row < UNREACHABLE]
        return int(finite.max()) if finite.size else 0

    def stats(self) -> OracleStats:
        """Current cache/introspection counters."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# dense backend
# --------------------------------------------------------------------- #


class DenseDistanceOracle(DistanceOracle):
    """All-pairs matrix backend (the seed behavior), for small ``n``.

    The matrix is computed once with a vectorized multi-source frontier
    expansion: each BFS level is one boolean matrix product, so the total
    cost is O(diameter) dense products — ideal at the paper's scales,
    O(n²·diameter) time and O(n²) memory beyond a few thousand nodes.
    """

    backend = "dense"

    def __init__(self, graph: "Graph") -> None:
        super().__init__(graph)
        self._matrix: np.ndarray | None = None

    @property
    def materialized(self) -> bool:
        """Whether the O(n²) matrix has been computed yet."""
        return self._matrix is not None

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(n, n)`` int16 hop-distance matrix (computed once)."""
        if self._matrix is None:
            self._matrix = _readonly(_dense_all_pairs(self._graph))
        return self._matrix

    def row(self, source: NodeId) -> np.ndarray:
        return self.matrix[source]

    def rows(self, sources: Sequence[NodeId]) -> np.ndarray:
        if len(sources) == 0:
            return np.zeros((0, self._graph.n), dtype=np.int16)
        return self.matrix[np.asarray(sources, dtype=np.intp)]

    def distance(self, u: NodeId, v: NodeId) -> int:
        return int(self.matrix[u, v])

    def ball(self, source: NodeId, radius: int) -> Tuple[np.ndarray, np.ndarray]:
        _check_radius(radius)
        return _ball_from_row(self.matrix[source], radius)

    def stats(self) -> OracleStats:
        nbytes = self._matrix.nbytes if self._matrix is not None else 0
        n = self._graph.n
        return OracleStats(
            backend=self.backend,
            rows_computed=n if self._matrix is not None else 0,
            row_hits=0,
            balls_computed=0,
            ball_hits=0,
            cached_bytes=nbytes,
            peak_cached_bytes=nbytes,
        )


def _dense_all_pairs(graph: "Graph") -> np.ndarray:
    """Vectorized all-pairs BFS via boolean frontier products."""
    n = graph.n
    if n == 0:
        return np.zeros((0, 0), dtype=np.int16)
    adj = np.zeros((n, n), dtype=bool)
    if graph.edges:
        e = np.asarray(graph.edges, dtype=np.intp)
        adj[e[:, 0], e[:, 1]] = True
        adj[e[:, 1], e[:, 0]] = True
    dist = np.full((n, n), UNREACHABLE, dtype=np.int16)
    np.fill_diagonal(dist, 0)
    frontier = np.eye(n, dtype=bool)
    visited = frontier.copy()
    level = 0
    while frontier.any():
        level += 1
        # next frontier: nodes adjacent to the current frontier rows, not
        # yet visited.  frontier @ adj is a boolean "one more hop" product.
        nxt = (frontier @ adj) & ~visited
        if not nxt.any():
            break
        dist[nxt] = level
        visited |= nxt
        frontier = nxt
    return dist


# --------------------------------------------------------------------- #
# lazy CSR backend
# --------------------------------------------------------------------- #


def _check_radius(radius: int) -> None:
    if radius < 0:
        raise InvalidParameterError(f"ball radius must be >= 0, got {radius}")


def _ball_from_row(row: np.ndarray, radius: int) -> Tuple[np.ndarray, np.ndarray]:
    """Extract a closed ball from a full distance row.

    The sentinel must never pass the radius test (``radius`` can exceed
    :data:`UNREACHABLE` — unreachable nodes are still outside every ball).
    """
    nodes = np.flatnonzero((row <= radius) & (row < UNREACHABLE))
    return _readonly(nodes), _readonly(row[nodes])


def _csr_bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    max_depth: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source BFS over CSR adjacency, vectorized per level.

    Returns ``(dist, visited)``: the int16 distance vector (UNREACHABLE
    where unvisited / beyond ``max_depth``) and the sorted visited node IDs.
    """
    dist = np.full(n, UNREACHABLE, dtype=np.int16)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    reached = [frontier]
    level = 0
    while frontier.size and (max_depth is None or level < max_depth):
        level += 1
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Concatenate the CSR ranges [starts_i, ends_i) without a Python
        # loop: within block i, position j maps to ends_i - cum_i + j.
        offsets = np.repeat(ends - np.cumsum(counts), counts) + np.arange(total)
        nbrs = indices[offsets]
        nbrs = nbrs[dist[nbrs] == UNREACHABLE]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        dist[frontier] = level
        reached.append(frontier)
    visited = np.sort(np.concatenate(reached)) if len(reached) > 1 else reached[0]
    return dist, visited


class LazyDistanceOracle(DistanceOracle):
    """CSR-backed on-demand BFS backend with LRU row and ball caches.

    Distance rows are full single-source BFS sweeps (O(n + m) each,
    vectorized per level over the CSR arrays); balls are depth-limited
    sweeps whose cost scales with the ball, not the graph.  Both results
    are cached under independent LRU policies bounded by *bytes*, so total
    memory stays O(m + budget) no matter how many queries arrive.

    Args:
        graph: the graph to answer for.
        row_cache_bytes: LRU budget for cached rows (>= one row).
        ball_cache_bytes: LRU budget for cached balls (>= one ball).
    """

    backend = "lazy"

    def __init__(
        self,
        graph: "Graph",
        *,
        row_cache_bytes: int = DEFAULT_ROW_CACHE_BYTES,
        ball_cache_bytes: int = DEFAULT_BALL_CACHE_BYTES,
    ) -> None:
        super().__init__(graph)
        if row_cache_bytes < 0 or ball_cache_bytes < 0:
            raise InvalidParameterError("cache budgets must be >= 0")
        indptr, indices = graph.csr_adjacency
        self._indptr = indptr
        self._indices = indices
        self._row_budget = row_cache_bytes
        self._ball_budget = ball_cache_bytes
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._row_bytes = 0
        self._balls: OrderedDict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._ball_bytes = 0
        self._rows_computed = 0
        self._row_hits = 0
        self._balls_computed = 0
        self._ball_hits = 0
        self._peak_bytes = 0

    # -- caching helpers ----------------------------------------------- #

    def _note_peak(self) -> None:
        total = self._row_bytes + self._ball_bytes
        if total > self._peak_bytes:
            self._peak_bytes = total

    def _evict(self) -> None:
        while self._row_bytes > self._row_budget and len(self._rows) > 1:
            _, old = self._rows.popitem(last=False)
            self._row_bytes -= old.nbytes
        while self._ball_bytes > self._ball_budget and len(self._balls) > 1:
            _, (bn, bd) = self._balls.popitem(last=False)
            self._ball_bytes -= bn.nbytes + bd.nbytes

    # -- queries ------------------------------------------------------- #

    def row(self, source: NodeId) -> np.ndarray:
        source = int(source)
        cached = self._rows.get(source)
        if cached is not None:
            self._rows.move_to_end(source)
            self._row_hits += 1
            return cached
        dist, _ = _csr_bfs(self._indptr, self._indices, self._graph.n, source)
        dist = _readonly(dist)
        self._rows[source] = dist
        self._row_bytes += dist.nbytes
        self._rows_computed += 1
        self._note_peak()
        self._evict()
        return dist

    def distance(self, u: NodeId, v: NodeId) -> int:
        # Prefer whichever endpoint's row is already cached.
        u, v = int(u), int(v)
        if u in self._rows:
            self._row_hits += 1
            self._rows.move_to_end(u)
            return int(self._rows[u][v])
        if v in self._rows:
            self._row_hits += 1
            self._rows.move_to_end(v)
            return int(self._rows[v][u])
        return int(self.row(u)[v])

    def ball(self, source: NodeId, radius: int) -> Tuple[np.ndarray, np.ndarray]:
        _check_radius(radius)
        source = int(source)
        key = (source, radius)
        cached = self._balls.get(key)
        if cached is not None:
            self._balls.move_to_end(key)
            self._ball_hits += 1
            return cached
        row = self._rows.get(source)
        if row is not None:
            # A cached full row answers any radius without a BFS; store the
            # derived ball so later queries are O(1) cache hits.
            self._rows.move_to_end(source)
            self._ball_hits += 1
            result = _ball_from_row(row, radius)
        else:
            dist, visited = _csr_bfs(
                self._indptr, self._indices, self._graph.n, source, max_depth=radius
            )
            result = (_readonly(visited), _readonly(dist[visited]))
            self._balls_computed += 1
        self._balls[key] = result
        self._ball_bytes += result[0].nbytes + result[1].nbytes
        self._note_peak()
        self._evict()
        return result

    def stats(self) -> OracleStats:
        return OracleStats(
            backend=self.backend,
            rows_computed=self._rows_computed,
            row_hits=self._row_hits,
            balls_computed=self._balls_computed,
            ball_hits=self._ball_hits,
            cached_bytes=self._row_bytes + self._ball_bytes,
            peak_cached_bytes=self._peak_bytes,
        )


# --------------------------------------------------------------------- #
# factory
# --------------------------------------------------------------------- #

_BACKENDS = ("auto", "dense", "lazy")


def resolve_backend(backend: str | None, n: int) -> str:
    """Resolve ``backend`` (``None``/"auto"/"dense"/"lazy") to a concrete name."""
    name = backend or "auto"
    if name not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown distance backend {backend!r}; known: {list(_BACKENDS)}"
        )
    if name == "auto":
        return "dense" if n <= DENSE_AUTO_MAX else "lazy"
    return name


def build_distance_oracle(
    graph: "Graph", backend: str | None = None, **kwargs
) -> DistanceOracle:
    """Build a distance oracle for ``graph``.

    Args:
        graph: the network graph.
        backend: ``"dense"``, ``"lazy"``, or ``"auto"``/``None`` (dense up
            to :data:`DENSE_AUTO_MAX` nodes, lazy above).
        **kwargs: backend-specific options (lazy: ``row_cache_bytes``,
            ``ball_cache_bytes``).
    """
    name = resolve_backend(backend, graph.n)
    if name == "dense":
        if kwargs:
            raise InvalidParameterError(
                f"dense backend takes no options, got {sorted(kwargs)}"
            )
        return DenseDistanceOracle(graph)
    return LazyDistanceOracle(graph, **kwargs)
