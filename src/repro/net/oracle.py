"""Pluggable hop-distance backends: the :class:`DistanceOracle` subsystem.

Every algorithm in the paper is phrased in terms of hop distances in ``G``,
but the algorithms differ wildly in *how much* of the distance structure
they touch: clustering and the neighbor rules only ever look at small
``O(Δ^k)`` balls around nodes, path construction needs full BFS rows from
a handful of clusterheads, and routing/maintenance validation asks for
single pair distances.  The seed implementation served everything from one
dense ``(n, n)`` all-pairs matrix — an O(n²) memory/time wall.

Backend-selection guide
-----------------------
Three interchangeable backends answer the same query interface; pick (or
let ``backend="auto"`` pick) by workload shape:

* ``"dense"`` (:class:`DenseDistanceOracle`) — materializes the full
  all-pairs matrix once, via the batched bit-packed BFS kernel.  O(n²)
  memory; unbeatable query latency.  Right for n up to a few hundred
  (the paper's scales) or when *every* pair will be consulted anyway.
  The auto policy uses it up to :data:`DENSE_AUTO_MAX` nodes.
* ``"lazy"`` (:class:`LazyDistanceOracle`) — keeps only CSR adjacency
  arrays and computes distance **rows** (full single-source BFS) and
  **balls** (depth-limited BFS) on demand, caching both under
  byte-budgeted LRU policies (:class:`ByteBudgetLRU`).  Batched row
  requests (``rows(sources)``) run through
  :func:`multi_source_bfs` — a bit-packed kernel that advances up to
  :data:`BATCH_BITS` sources per sweep, one uint64 frontier word-block
  per node, so warm-up is no longer n sequential BFS runs.  Memory is
  O(m + budgets).  The auto default above :data:`DENSE_AUTO_MAX` nodes;
  right for ball-heavy pipelines (clustering, neighbor rules, CDS
  verification) at any n.
* ``"landmark"`` (:class:`~repro.net.labeling.LandmarkDistanceOracle`) —
  a lazy oracle plus exact pruned landmark labels built from
  degree-ranked roots; answers ``distance(u, v)`` by a sorted label join
  in O(|label|) without touching any row.  Right for **pair-heavy**
  consumers (routing stretch sampling, NC neighbor selection, repair
  validation) once n is large enough that even one BFS row per query
  hurts.  Labels are built lazily on the first pair query.

All backends share the int32 :data:`UNREACHABLE` sentinel, which raises
the previous int16 ceiling of 32766 nodes to :data:`MAX_ORACLE_NODES`
(int32) behind the same API.

Incremental maintenance
-----------------------
:meth:`Graph.without_nodes` (single-node removals, the churn/repair hot
path) derives the child graph's oracle from the parent's via
:meth:`LazyDistanceOracle.inherit_from`: cached rows whose source could
not reach the removed node, and cached balls that do not contain it, stay
valid and are carried over instead of recomputed; balls containing the
removed node exactly on their boundary are patched by dropping that one
entry.  Invalidated rows are carried over *partially*: entries at
distance ``<= d(source, removed)`` are provably exact, so the row is
kept with that valid-prefix radius and completed on demand by resuming
the BFS from the radius-level frontier instead of starting over.
``OracleStats.rows_inherited`` / ``balls_inherited`` /
``rows_partial_inherited`` / ``rows_reexpanded`` count the carried and
resumed entries.

:meth:`Graph.with_edge_delta` (mobility: a few edges appear *and*
disappear per snapshot while every node persists) inherits through
:meth:`LazyDistanceOracle.inherit_edge_delta` as a batched **dynamic-BFS
update** over every cached row at once.  A cheap endpoint pre-filter
carries rows the delta provably cannot touch (no added edge spanning
levels two apart, no removed edge spanning adjacent levels) verbatim;
the rest advance through the two halves of the classic update — the
orphan cascade (:meth:`~LazyDistanceOracle._settle_removals`: nodes whose
every shortest-path parent died reset to the sentinel, everything else
provably exact) and Dial-style decrease propagation
(:meth:`~LazyDistanceOracle._relax_rows`: added-edge shortcuts and
orphan-boundary repairs settle each affected ``(row, node)`` pair once,
in ascending distance order) — landing in the child cache as *exact*
full rows.  Untouched rows are recorded as
:attr:`~LazyDistanceOracle.delta_certified_sources`; rows whose delta
footprint exceeds
:data:`DELTA_PATCH_SEED_BUDGET` fall back to a valid-prefix partial
(entries at distance ``<= m(s)``, the distance to the nearest changed
endpoint, stay exact) and recompute through the bit-packed kernel
instead.  A cached ball ``(s, r)`` survives iff every touched node sits
at distance ``>= r`` from ``s`` — absent from the ball or exactly on its
boundary.

:meth:`Graph.with_nodes` (node arrivals, the long-lived service's growth
path) inherits through :meth:`LazyDistanceOracle.inherit_node_add` — the
pure *decrease* half of the same update: every old path survives, so
cached rows are padded to the grown length and Dial-relaxed from the
attachment endpoints (no orphan cascade exists), landing as exact full
child rows; balls survive under the same boundary rule against the old
attachment endpoints.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..types import DistArray, IndexArray, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular import
    from .graph import Graph

__all__ = [
    "UNREACHABLE",
    "MAX_ORACLE_NODES",
    "DENSE_AUTO_MAX",
    "DIST_DTYPE",
    "BATCH_BITS",
    "ByteBudgetLRU",
    "OracleStats",
    "DistanceOracle",
    "DenseDistanceOracle",
    "LazyDistanceOracle",
    "gather_csr_neighbors",
    "multi_source_bfs",
    "build_distance_oracle",
    "resolve_backend",
]

#: Storage dtype for hop distances (raised from the seed's int16).
DIST_DTYPE = np.int32

#: Sentinel hop distance for unreachable pairs (int32 max; larger than any
#: real hop distance for n <= MAX_ORACLE_NODES).
UNREACHABLE: int = int(np.iinfo(DIST_DTYPE).max)

#: Largest node count for which hop distances cannot collide with the
#: :data:`UNREACHABLE` sentinel (a path visits each node at most once, so
#: hop distances are <= n - 1 < 2**31 - 1).  Previously 32766 (int16).
MAX_ORACLE_NODES: int = UNREACHABLE - 1

#: ``backend="auto"`` uses the dense matrix up to this many nodes — at the
#: paper's scales the one-shot batched sweep beats per-source BFS — and
#: the lazy CSR backend above it.
DENSE_AUTO_MAX: int = 512

#: Default byte budget for the lazy backend's cached BFS rows (~16 MiB).
DEFAULT_ROW_CACHE_BYTES: int = 16 << 20

#: Default byte budget for the lazy backend's cached balls (~8 MiB).
DEFAULT_BALL_CACHE_BYTES: int = 8 << 20

#: Sources advanced per bit-packed BFS sweep (one uint64 word of frontier
#: state per node per sweep).
BATCH_BITS: int = 64

#: Edge-delta inheritance triage: a cached row is patched in place (exact
#: dynamic-BFS update) when its delta footprint — orphaned entries plus
#: shortcutting added edges — is at most this many seeds; beyond it, the
#: bit-packed batch kernel recomputes the row faster than pair-level
#: propagation could, so the row falls back to the valid-prefix rung.
DELTA_PATCH_SEED_BUDGET: int = 256


@dataclass(frozen=True)
class OracleStats:
    """Introspection counters for benchmarks and memory assertions.

    Attributes:
        backend: ``"dense"``, ``"lazy"``, ``"landmark"`` or ``"path-cache"``.
        rows_computed: full BFS rows computed so far.
        row_hits: row queries answered from cache.
        balls_computed: depth-limited BFS balls computed so far.
        ball_hits: ball queries answered from cache (or from a cached row).
        cached_bytes: bytes currently held by this oracle's caches.
        peak_cached_bytes: high-water mark of ``cached_bytes``.
        rows_inherited: rows carried over from a parent oracle after a
            single-node removal (incremental maintenance).
        balls_inherited: balls carried over (possibly boundary-patched).
        rows_partial_inherited: rows whose prefix (entries at distance
            <= d(source, removed)) was carried over for lazy depth-limited
            re-expansion instead of being discarded.
        rows_patched: rows carried across an edge delta by exact
            decrease-propagation patching (removals certified harmless,
            added shortcuts applied in place).
        rows_reexpanded: partial rows completed by resuming BFS from
            their valid frontier on demand.
        batched_sweeps: bit-packed multi-source BFS sweeps run.
        pair_queries: pair distances answered from landmark labels.
        label_entries: total 2-hop label entries held (landmark backend).
        paths_computed: canonical paths computed (path-cache stats).
        path_hits: path queries answered from the path cache.
        lineage_rows_computed / lineage_row_hits /
        lineage_balls_computed / lineage_ball_hits: cumulative totals
            over the oracle's whole inheritance chain (this oracle plus
            every ancestor it inherited caches from).  The per-oracle
            fields above are explicitly snapshot-and-zeroed at each
            inheritance, so these are the conserved quantities: across a
            chained-repair sequence, ``lineage_rows_computed +
            lineage_row_hits`` equals every ``row()``-path query the
            chain ever answered.
        lineage_inherits: inheritance hops behind this oracle (0 for a
            fresh oracle, parents' count + 1 after ``inherit_from`` /
            ``inherit_edge_delta``).
    """

    backend: str
    rows_computed: int
    row_hits: int
    balls_computed: int
    ball_hits: int
    cached_bytes: int
    peak_cached_bytes: int
    rows_inherited: int = 0
    balls_inherited: int = 0
    rows_partial_inherited: int = 0
    rows_patched: int = 0
    rows_reexpanded: int = 0
    batched_sweeps: int = 0
    pair_queries: int = 0
    label_entries: int = 0
    paths_computed: int = 0
    path_hits: int = 0
    lineage_rows_computed: int = 0
    lineage_row_hits: int = 0
    lineage_balls_computed: int = 0
    lineage_ball_hits: int = 0
    lineage_inherits: int = 0


def _check_size(n: int) -> None:
    if n > MAX_ORACLE_NODES:
        raise InvalidParameterError(
            f"graph has {n} nodes; int32 hop distances support at most "
            f"{MAX_ORACLE_NODES} (a longer path would collide with the "
            "UNREACHABLE sentinel)"
        )


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def _dedupe_flat(flat: np.ndarray) -> np.ndarray:
    """Sorted unique of a flat int64 key array.

    The explicit sort + run-length mask beats ``np.unique``'s hash path
    on the small-to-mid arrays the incremental sweeps produce.
    """
    if flat.size <= 1:
        return flat
    flat = np.sort(flat)
    keep = np.empty(flat.size, dtype=bool)
    keep[0] = True
    np.not_equal(flat[1:], flat[:-1], out=keep[1:])
    return flat[keep]


class ByteBudgetLRU:
    """Byte-budgeted LRU mapping — the one cache policy every oracle-layer
    cache shares (lazy rows, lazy balls, canonical paths).

    Entries are evicted least-recently-used-first while the byte budget is
    exceeded, but at least one entry is always retained so a single
    oversized result still caches (matching the row/ball policy the lazy
    oracle shipped with).
    """

    __slots__ = ("budget", "_items", "_nbytes")

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise InvalidParameterError("cache budgets must be >= 0")
        self.budget = budget
        self._items: OrderedDict[object, tuple[object, int]] = OrderedDict()
        self._nbytes = 0

    @property
    def nbytes(self) -> int:
        """Bytes currently held."""
        return self._nbytes

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: object) -> bool:
        return key in self._items

    def get(self, key: object):
        """The cached value (marking it most-recent), or ``None``."""
        entry = self._items.get(key)
        if entry is None:
            return None
        self._items.move_to_end(key)
        return entry[0]

    def put(self, key: object, value: object, nbytes: int) -> None:
        """Insert/replace ``key`` and evict LRU entries past the budget."""
        old = self._items.pop(key, None)
        if old is not None:
            self._nbytes -= old[1]
        self._items[key] = (value, nbytes)
        self._nbytes += nbytes
        while self._nbytes > self.budget and len(self._items) > 1:
            _, (_, old_bytes) = self._items.popitem(last=False)
            self._nbytes -= old_bytes

    def items(self) -> Iterator[tuple[object, object]]:
        """Iterate ``(key, value)`` in LRU-to-MRU order (no touching)."""
        for key, (value, _) in self._items.items():
            yield key, value

    def seed(self, entries: Sequence[tuple[object, object, int]]) -> None:
        """Bulk-insert ``(key, value, nbytes)`` rows, evicting once at the end.

        Used when a derived oracle inherits a parent's caches: thousands of
        entries arrive together, so per-entry eviction bookkeeping is
        wasted work.  Keys must not already be present.
        """
        for key, value, nbytes in entries:
            self._items[key] = (value, nbytes)
            self._nbytes += nbytes
        while self._nbytes > self.budget and len(self._items) > 1:
            _, (_, old_bytes) = self._items.popitem(last=False)
            self._nbytes -= old_bytes


class DistanceOracle:
    """Interface shared by all hop-distance backends.

    Subclasses answer a handful of query shapes; everything else in the
    repo is built from them:

    * :meth:`row` — full BFS distances from one source (int32 vector);
    * :meth:`rows` — stacked rows for several sources (batched kernels);
    * :meth:`distance` — a single pair distance;
    * :meth:`distances` — one source against an explicit target list;
    * :meth:`pair_distances` / :meth:`pairwise_distances` — bulk pair
      queries, grouped so batched backends answer them in few sweeps;
    * :meth:`ball` — the closed ``radius``-ball around a node, as sorted
      node IDs plus their distances (the only query the clustering and
      neighbor-rule hot paths need, and the one a lazy backend can answer
      in output-sensitive time).
    """

    backend: str = "abstract"

    #: Whether single-pair queries are cheap (no BFS row behind them).
    #: Consumers with an output-sensitive alternative (e.g. a depth-limited
    #: ball) should prefer it unless this is True.
    fast_pairs: bool = False

    def __init__(self, graph: "Graph") -> None:
        _check_size(graph.n)
        self._graph = graph

    @property
    def graph(self) -> "Graph":
        """The graph this oracle answers for."""
        return self._graph

    # -- queries ------------------------------------------------------- #

    def row(self, source: NodeId) -> DistArray:
        """Hop distances from ``source`` to all nodes (read-only int32)."""
        raise NotImplementedError

    def cached_row(self, source: NodeId) -> DistArray | None:
        """``row(source)`` if it is already resident, else ``None``.

        A pure cache probe — never triggers a BFS.  Consumers that can
        only *profit* from a row (e.g. the canonical-path inheritance
        check under edge deltas) use this so their cost stays bounded by
        what earlier queries already paid for.
        """
        return None

    def rows(self, sources: Sequence[NodeId]) -> DistArray:
        """Stacked distance rows, shape ``(len(sources), n)``."""
        if len(sources) == 0:
            return np.zeros((0, self._graph.n), dtype=DIST_DTYPE)
        return np.stack([self.row(int(s)) for s in sources])

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Hop distance between ``u`` and ``v`` (UNREACHABLE if none)."""
        return int(self.row(u)[v])

    def distances(self, source: NodeId, targets: Sequence[NodeId]) -> DistArray:
        """Distances from ``source`` to each node in ``targets``."""
        if len(targets) == 0:
            return np.zeros(0, dtype=DIST_DTYPE)
        return self.row(source)[np.asarray(targets, dtype=np.intp)]

    def pair_distances(self, pairs: Sequence[Tuple[NodeId, NodeId]]) -> DistArray:
        """Distances for an arbitrary pair list, grouped by source.

        Pairs sharing a first endpoint are answered from one row, and all
        needed rows are requested together up front so batched backends
        compute them in O(#sources / BATCH_BITS) sweeps; the final
        per-pair extraction is a single fancy-index into the returned
        block, so no Python-level per-pair loop remains.
        """
        if len(pairs) == 0:
            return np.zeros(0, dtype=DIST_DTYPE)
        arr = np.asarray([(int(u), int(v)) for u, v in pairs], dtype=np.int64)
        sources, inverse = np.unique(arr[:, 0], return_inverse=True)
        # One batched request; index the returned block directly so a
        # small row-cache budget can never force recomputation.
        block = self.rows(sources)
        return block[inverse, arr[:, 1]]

    def pairwise_distances(self, nodes: Sequence[NodeId]) -> DistArray:
        """All-pairs distances among ``nodes``, shape ``(len, len)``.

        Chunked over :data:`BATCH_BITS`-source sweeps so the transient
        footprint stays O(BATCH_BITS · n) even for large node sets.
        """
        idx = np.asarray([int(x) for x in nodes], dtype=np.int64)
        out = np.empty((idx.size, idx.size), dtype=DIST_DTYPE)
        for start in range(0, idx.size, BATCH_BITS):
            chunk = idx[start : start + BATCH_BITS]
            out[start : start + chunk.size] = self.rows(chunk)[:, idx]
        return out

    def ball(self, source: NodeId, radius: int) -> Tuple[IndexArray, DistArray]:
        """Closed ball: nodes at hop distance ``<= radius`` from ``source``.

        Returns ``(nodes, dists)`` — sorted node IDs (including ``source``
        at distance 0) and their distances, both read-only.
        """
        raise NotImplementedError

    def prepare_balls(self, sources: Sequence[NodeId], radius: int) -> int:
        """Warm the ``radius``-ball cache for many sources in one pass.

        A hint, not a query: backends without a ball cache (dense) ignore
        it; the lazy backend batches the missing sources through the
        bit-packed depth-limited kernel so a following per-source
        :meth:`ball` sweep — e.g. the clustering declaration phase — hits
        the cache instead of running one Python-level BFS per node.

        Returns the number of balls actually computed.
        """
        return 0

    def ball_map(self, source: NodeId, radius: int) -> dict[int, int]:
        """:meth:`ball` as a ``node -> distance`` dict (absent = beyond radius)."""
        nodes, dists = self.ball(source, radius)
        return dict(zip(nodes.tolist(), dists.tolist()))

    def eccentricity(self, source: NodeId) -> int:
        """Greatest finite hop distance from ``source``."""
        row = self.row(source)
        finite = row[row < UNREACHABLE]
        return int(finite.max()) if finite.size else 0

    def stats(self) -> OracleStats:
        """Current cache/introspection counters."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# BFS kernels
# --------------------------------------------------------------------- #


def _check_radius(radius: int) -> None:
    if radius < 0:
        raise InvalidParameterError(f"ball radius must be >= 0, got {radius}")


def _ball_from_row(row: np.ndarray, radius: int) -> Tuple[np.ndarray, np.ndarray]:
    """Extract a closed ball from a full distance row.

    The sentinel must never pass the radius test (``radius`` can exceed
    :data:`UNREACHABLE` — unreachable nodes are still outside every ball).
    """
    nodes = np.flatnonzero((row <= radius) & (row < UNREACHABLE))
    return _readonly(nodes), _readonly(row[nodes])


def gather_csr_neighbors(
    indptr: IndexArray, indices: IndexArray, nodes: IndexArray
) -> Tuple[IndexArray, IndexArray]:
    """Concatenated CSR adjacency of ``nodes``: ``(neighbors, counts)``.

    The frontier-expansion primitive every level-synchronous sweep in the
    repo shares: the ranges ``[indptr[u], indptr[u+1])`` are concatenated
    without a Python loop — within block ``i``, position ``j`` maps to
    ``ends_i - cum_i + j``.  ``counts`` is the per-node range length (for
    callers that repeat per-node state across the concatenation).
    """
    starts = indptr[nodes]
    ends = indptr[nodes + 1]
    counts = ends - starts
    total = int(counts.sum())
    offsets = np.repeat(ends - np.cumsum(counts), counts) + np.arange(total)
    return indices[offsets], counts


def _csr_bfs(
    indptr: IndexArray,
    indices: IndexArray,
    n: int,
    source: int,
    max_depth: int | None = None,
) -> Tuple[DistArray, IndexArray]:
    """Single-source BFS over CSR adjacency, vectorized per level.

    Returns ``(dist, visited)``: the int32 distance vector (UNREACHABLE
    where unvisited / beyond ``max_depth``) and the sorted visited node IDs.
    """
    dist = np.full(n, UNREACHABLE, dtype=DIST_DTYPE)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    reached = [frontier]
    level = 0
    while frontier.size and (max_depth is None or level < max_depth):
        level += 1
        nbrs, _ = gather_csr_neighbors(indptr, indices, frontier)
        if nbrs.size == 0:
            break
        nbrs = nbrs[dist[nbrs] == UNREACHABLE]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        dist[frontier] = level
        reached.append(frontier)
    visited = np.sort(np.concatenate(reached)) if len(reached) > 1 else reached[0]
    return dist, visited


def multi_source_bfs(
    indptr: IndexArray,
    indices: IndexArray,
    n: int,
    sources: Sequence[int],
    out: DistArray | None = None,
    max_depth: int | None = None,
) -> DistArray:
    """Bit-packed multi-source BFS: up to B sources advance together.

    Per-node frontier/visited state is a block of ``ceil(B / 64)`` uint64
    words — bit ``b`` set in node ``u``'s block means source ``b``'s BFS
    has reached ``u``.  One level for *all* sources is then a single
    gather of the frontier blocks along the CSR ``indices`` plus one
    ``np.bitwise_or.reduceat`` per-node reduction, instead of B separate
    frontier expansions.  Newly-reached levels are scattered into the
    output matrix by unpacking only the words/bits that actually changed.

    With ``max_depth`` the sweep stops after that many levels, leaving
    farther nodes at :data:`UNREACHABLE` — the batched equivalent of a
    depth-limited ball BFS, used to warm many balls in one pass.

    Returns the ``(len(sources), n)`` int32 distance matrix (written into
    ``out`` when given, which must have that shape).
    """
    num = len(sources)
    if out is None:
        out = np.empty((num, n), dtype=DIST_DTYPE)
    out[:] = UNREACHABLE
    if num == 0 or n == 0:
        return out
    src = np.asarray(sources, dtype=np.int64)
    out[np.arange(num), src] = 0
    words = (num + 63) >> 6
    lanes = np.arange(num)
    bit = np.uint64(1) << (lanes.astype(np.uint64) & np.uint64(63))
    frontier = np.zeros((n, words), dtype=np.uint64)
    # bitwise_or.at (not fancy assignment) so duplicate sources keep both bits
    np.bitwise_or.at(frontier, (src, lanes >> 6), bit)
    visited = frontier.copy()
    m2 = indices.size
    if m2 == 0:
        return out
    degs = np.diff(indptr)
    # Reduce only over nonzero-degree nodes: their indptr starts are
    # exactly the segment boundaries (zero-degree nodes contribute empty
    # segments, which reduceat cannot represent).
    nonzero = np.flatnonzero(degs > 0)
    starts = indptr[nonzero]
    level = 0
    active = np.unique(src)  # nodes currently carrying any frontier bit
    while True:
        level += 1
        if max_depth is not None and level > max_depth:
            return out
        active_edges = int(degs[active].sum())
        if 8 * active_edges < m2:
            # Sparse frontier (well under m/8 incident edges): gather only
            # the frontier nodes' adjacency ranges (the _csr_bfs
            # concatenation trick) and reduce per *target* after a stable
            # sort — output-sensitive, instead of touching all m edges for
            # a handful of frontier nodes.  The threshold leaves wide
            # mid-BFS levels on the cheaper full-pull path.
            targets, counts = gather_csr_neighbors(indptr, indices, active)
            contrib = frontier[np.repeat(active, counts)]
            order = np.argsort(targets, kind="stable")
            targets = targets[order]
            uniq, first = np.unique(targets, return_index=True)
            nxt = np.zeros((n, words), dtype=np.uint64)
            if uniq.size:
                nxt[uniq] = np.bitwise_or.reduceat(
                    contrib[order], first, axis=0
                )
        else:
            nxt = np.zeros((n, words), dtype=np.uint64)
            nxt[nonzero] = np.bitwise_or.reduceat(
                frontier[indices], starts, axis=0
            )
        nxt &= ~visited
        any_new = False
        for w in range(words):
            changed = np.flatnonzero(nxt[:, w])
            if changed.size == 0:
                continue
            any_new = True
            block = nxt[changed, w]
            for b in range(w << 6, min((w << 6) + 64, num)):
                hit = changed[(block >> np.uint64(b & 63)) & np.uint64(1) != 0]
                if hit.size:
                    out[b, hit] = level
        if not any_new:
            return out
        visited |= nxt
        frontier = nxt
        active = np.flatnonzero(nxt.any(axis=1))


# --------------------------------------------------------------------- #
# dense backend
# --------------------------------------------------------------------- #


class DenseDistanceOracle(DistanceOracle):
    """All-pairs matrix backend (the seed behavior), for small ``n``.

    The matrix is materialized once by the bit-packed batched BFS kernel
    (:func:`multi_source_bfs`) in :data:`BATCH_BITS`-source sweeps —
    O(n/64 · (n + m) · diameter) word operations instead of the seed's
    O(n² · diameter) boolean matrix products — but remains O(n²) memory
    and is therefore the auto choice only up to :data:`DENSE_AUTO_MAX`.
    """

    backend = "dense"

    def __init__(self, graph: "Graph") -> None:
        super().__init__(graph)
        self._matrix: np.ndarray | None = None
        self._sweeps = 0

    @property
    def materialized(self) -> bool:
        """Whether the O(n²) matrix has been computed yet."""
        return self._matrix is not None

    @property
    def matrix(self) -> DistArray:
        """The full ``(n, n)`` int32 hop-distance matrix (computed once)."""
        if self._matrix is None:
            matrix, self._sweeps = _dense_all_pairs(self._graph)
            self._matrix = _readonly(matrix)
        return self._matrix

    def row(self, source: NodeId) -> DistArray:
        return self.matrix[source]

    def cached_row(self, source: NodeId) -> DistArray | None:
        return self._matrix[source] if self._matrix is not None else None

    def rows(self, sources: Sequence[NodeId]) -> DistArray:
        if len(sources) == 0:
            return np.zeros((0, self._graph.n), dtype=DIST_DTYPE)
        return self.matrix[np.asarray(sources, dtype=np.intp)]

    def distance(self, u: NodeId, v: NodeId) -> int:
        return int(self.matrix[u, v])

    def pairwise_distances(self, nodes: Sequence[NodeId]) -> DistArray:
        idx = np.asarray([int(x) for x in nodes], dtype=np.intp)
        return self.matrix[np.ix_(idx, idx)]

    def ball(self, source: NodeId, radius: int) -> Tuple[IndexArray, DistArray]:
        _check_radius(radius)
        return _ball_from_row(self.matrix[source], radius)

    def stats(self) -> OracleStats:
        nbytes = self._matrix.nbytes if self._matrix is not None else 0
        n = self._graph.n
        return OracleStats(
            backend=self.backend,
            rows_computed=n if self._matrix is not None else 0,
            row_hits=0,
            balls_computed=0,
            ball_hits=0,
            cached_bytes=nbytes,
            peak_cached_bytes=nbytes,
            batched_sweeps=self._sweeps,
            # Dense oracles never inherit: lineage == own totals.
            lineage_rows_computed=n if self._matrix is not None else 0,
        )


def _locality_order(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> np.ndarray:
    """Order nodes so consecutive batches are graph-local (double sweep).

    Sources batched into one bit-packed sweep share frontier state, so
    the sweep is cheapest when their BFS wavefronts overlap.  Sorting
    nodes lexicographically by hop distance from two mutually far
    landmarks (found by the classic double-sweep heuristic) makes each
    :data:`BATCH_BITS`-node slice spatially compact — measured ~25%
    faster full materialization at n=5000 for ~3 extra BFS of setup.
    """
    d0, _ = _csr_bfs(indptr, indices, n, 0)
    a = int(np.argmax(np.where(d0 < UNREACHABLE, d0, -1)))
    d_a, _ = _csr_bfs(indptr, indices, n, a)
    b = int(np.argmax(np.where(d_a < UNREACHABLE, d_a, -1)))
    d_b, _ = _csr_bfs(indptr, indices, n, b)
    return np.lexsort((np.arange(n), d_b, d_a))


def _dense_all_pairs(graph: "Graph") -> tuple[np.ndarray, int]:
    """All-pairs matrix via batched bit-packed BFS; returns (matrix, sweeps)."""
    n = graph.n
    if n == 0:
        return np.zeros((0, 0), dtype=DIST_DTYPE), 0
    indptr, indices = graph.csr_adjacency
    out = np.empty((n, n), dtype=DIST_DTYPE)
    if n > BATCH_BITS:
        order = _locality_order(indptr, indices, n)
    else:
        order = np.arange(n)
    sweeps = 0
    for start in range(0, n, BATCH_BITS):
        chunk = order[start : min(start + BATCH_BITS, n)]
        out[chunk] = multi_source_bfs(indptr, indices, n, chunk)
        sweeps += 1
    return out, sweeps


# --------------------------------------------------------------------- #
# lazy CSR backend
# --------------------------------------------------------------------- #


class LazyDistanceOracle(DistanceOracle):
    """CSR-backed on-demand BFS backend with LRU row and ball caches.

    Distance rows are single-source BFS sweeps (O(n + m) each, vectorized
    per level over the CSR arrays) — or, for batched :meth:`rows`
    requests, bit-packed :func:`multi_source_bfs` sweeps that advance up
    to :data:`BATCH_BITS` sources at once.  Balls are depth-limited
    sweeps whose cost scales with the ball, not the graph.  Both results
    are cached under independent :class:`ByteBudgetLRU` policies bounded
    by *bytes*, so total memory stays O(m + budget) no matter how many
    queries arrive.

    Args:
        graph: the graph to answer for.
        row_cache_bytes: LRU budget for cached rows (>= one row).
        ball_cache_bytes: LRU budget for cached balls (>= one ball).
    """

    backend = "lazy"

    def __init__(
        self,
        graph: "Graph",
        *,
        row_cache_bytes: int = DEFAULT_ROW_CACHE_BYTES,
        ball_cache_bytes: int = DEFAULT_BALL_CACHE_BYTES,
    ) -> None:
        super().__init__(graph)
        indptr, indices = graph.csr_adjacency
        self._indptr = indptr
        self._indices = indices
        self._rows = ByteBudgetLRU(row_cache_bytes)
        self._balls = ByteBudgetLRU(ball_cache_bytes)
        self._rows_computed = 0
        self._row_hits = 0
        self._balls_computed = 0
        self._ball_hits = 0
        self._rows_inherited = 0
        self._balls_inherited = 0
        self._rows_partial_inherited = 0
        self._rows_patched = 0
        self._rows_reexpanded = 0
        self._batched_sweeps = 0
        # Cumulative (rows_computed, row_hits, balls_computed, ball_hits,
        # inherits) over every ancestor oracle — see _carry_lineage.
        self._lineage = (0, 0, 0, 0, 0)
        self._peak_bytes = 0
        # source -> (stale parent row, valid-prefix radius, removed nodes):
        # rows invalidated by a removal but salvageable — entries at
        # distance <= radius stay exact — pending lazy re-expansion.
        self._partial_rows: dict[int, tuple[np.ndarray, int, tuple[int, ...]]] = {}
        # Sources proven distance-identical by the last edge-delta
        # inheritance (see delta_certified_sources).
        self._delta_certified: frozenset[int] = frozenset()

    # -- caching helpers ----------------------------------------------- #

    def _note_peak(self) -> None:
        total = self._rows.nbytes + self._balls.nbytes
        if total > self._peak_bytes:
            self._peak_bytes = total

    def _store_row(self, source: int, dist: np.ndarray) -> None:
        self._rows.put(source, dist, dist.nbytes)
        self._partial_rows.pop(source, None)  # an exact row supersedes
        self._note_peak()

    def _store_ball(
        self, key: tuple[int, int], result: tuple[np.ndarray, np.ndarray]
    ) -> None:
        self._balls.put(key, result, result[0].nbytes + result[1].nbytes)
        self._note_peak()

    # -- incremental maintenance --------------------------------------- #

    def _carry_lineage(self, parent: "LazyDistanceOracle") -> None:
        """Carry ``parent``'s cumulative query totals, zero the per-oracle
        counters.

        Inheritance used to leave the child's hit/miss counters at their
        construction-time zeros while ``rows_patched`` accumulated inside
        the inherit call itself — a mix in which a chain of repairs
        silently dropped every ancestor's history (counter-reset drift).
        The contract is now explicit: per-oracle counters describe
        **post-inheritance work only** (snapshot-and-zeroed here), and
        the conserved chain-wide totals live in the ``lineage_*`` stats
        fields, accumulated parent-by-parent.
        """
        base = parent._lineage
        self._lineage = (
            base[0] + parent._rows_computed,
            base[1] + parent._row_hits,
            base[2] + parent._balls_computed,
            base[3] + parent._ball_hits,
            base[4] + 1,
        )
        self._rows_computed = 0
        self._row_hits = 0
        self._balls_computed = 0
        self._ball_hits = 0
        self._rows_patched = 0
        self._rows_reexpanded = 0
        self._batched_sweeps = 0

    def inherit_from(self, parent: "LazyDistanceOracle", removed: int) -> None:
        """Seed caches from ``parent`` after ``removed`` lost its edges.

        Removal only ever *increases* distances, and a shortest path's
        interior nodes sit strictly closer to the source than its
        endpoint, so:

        * a cached **row** from ``s`` stays valid iff ``removed`` was
          unreachable from ``s`` (nothing in ``s``'s component changed);
        * an invalidated row is still *partially* valid: a shortest
          path's interior nodes sit strictly closer to the source than
          its endpoint, so entries at distance ``<= d(s, removed)``
          cannot route through ``removed`` and stay exact.  Such rows
          are kept aside with their valid-prefix radius and completed
          lazily — :meth:`row` resumes a level-synchronous BFS from the
          radius-level frontier instead of recomputing from scratch
          (every node beyond the prefix adjoins only frontier-or-deeper
          nodes, so the resumed sweep is exhaustive);
        * a cached **ball** ``(s, r)`` stays valid iff ``removed`` was
          outside it; if ``removed`` sat exactly on the boundary
          (distance == r) the ball is patched by dropping that single
          entry — no interior of a witnessing path can pass through a
          boundary node.

        Everything else is dropped and will be recomputed on demand.
        """
        self._carry_lineage(parent)
        row_seed = []
        for src, row in parent._rows.items():
            d_rm = int(row[removed])
            if d_rm >= UNREACHABLE:
                row_seed.append((src, row, row.nbytes))
            elif d_rm > 0:
                self._partial_rows[src] = (row, d_rm, (removed,))
        # Parent partials chain: a second removal inside the valid prefix
        # shrinks the radius to its (still-exact) distance; outside it,
        # the stored value is only a lower bound >= radius, so the prefix
        # is untouched either way.
        for src, (row, radius, chain) in parent._partial_rows.items():
            if src == removed or src in self._partial_rows:
                continue
            d_rm = int(row[removed])
            new_radius = min(radius, d_rm)
            if new_radius > 0:
                self._partial_rows[src] = (row, new_radius, chain + (removed,))
        self._cap_partial_rows()
        ball_seed = []
        for key, ball in parent._balls.items():
            source, radius = key
            if source == removed:
                continue
            nodes, dists = ball
            pos = nodes.searchsorted(removed)
            if pos < nodes.size and nodes[pos] == removed:
                if radius == 0 or dists[pos] != radius:
                    continue  # removed node strictly inside: invalidated
                keep = np.ones(nodes.size, dtype=bool)
                keep[pos] = False
                ball = (_readonly(nodes[keep]), _readonly(dists[keep]))
            ball_seed.append((key, ball, ball[0].nbytes + ball[1].nbytes))
        self._rows.seed(row_seed)
        self._balls.seed(ball_seed)
        self._rows_inherited = len(row_seed)
        self._balls_inherited = len(ball_seed)
        self._note_peak()

    def _cap_partial_rows(self) -> None:
        """Bound pending partial rows by one row-budget's worth of bytes.

        Pending partials hold full stale rows outside the LRU budget, so
        they obey the same byte discipline, dropping oldest-first (parent
        rows arrive in LRU-to-MRU order, chained partials after — the
        staler, the earlier).  Dropped sources recompute from scratch on
        demand.
        """
        row_bytes = max(1, self._graph.n * np.dtype(DIST_DTYPE).itemsize)
        cap = max(1, self._rows.budget // row_bytes)
        while len(self._partial_rows) > cap:
            self._partial_rows.pop(next(iter(self._partial_rows)))
        self._rows_partial_inherited = len(self._partial_rows)

    def _row_has_parent(
        self, old_block: np.ndarray, block: np.ndarray,
        rows: np.ndarray, nodes: np.ndarray,
    ) -> np.ndarray:
        """Per ``(row, node)`` pair: does the node keep a BFS parent?

        A parent is a *surviving* child-graph neighbor whose current
        value equals the node's old level minus one (orphaned neighbors
        were already reset to :data:`UNREACHABLE` in ``block`` and can
        never match).  One CSR gather + one segmented any.
        """
        nbrs, counts = gather_csr_neighbors(self._indptr, self._indices, nodes)
        has = np.zeros(rows.size, dtype=bool)
        if nbrs.size == 0:
            return has
        rows_rep = np.repeat(rows, counts)
        target = np.repeat(old_block[rows, nodes] - 1, counts)
        hit = block[rows_rep, nbrs] == target
        nz = np.flatnonzero(counts > 0)
        starts = np.concatenate([[0], np.cumsum(counts)])[nz]
        has[nz] = np.logical_or.reduceat(hit, starts)
        return has

    def _settle_removals(
        self, old_block: np.ndarray, block: np.ndarray, removed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Orphan cascade for the removed edges — the increase half of the
        dynamic BFS batch update, all rows at once.

        A node is *orphaned* when every old shortest path to it died: its
        removed-edge parent was its only neighbor one level closer, or
        every such neighbor was itself orphaned.  Orphans are reset to
        :data:`UNREACHABLE` in ``block`` (in place); every other entry
        keeps its old value, which remains *exact* — a surviving node has
        a surviving parent chain down to the source realizing the old
        distance, and removals can only increase distances.  Orphans get
        their true (possibly larger, possibly infinite) values in the
        subsequent decrease-propagation repair, seeded from the
        survivor/orphan boundary.

        ``old_block`` holds the original values (structure detection must
        see pre-cascade levels); ``block`` is the working copy.  Returns
        the flat ``(rows, nodes)`` orphan pairs.
        """
        num, n = old_block.shape
        orphan_r: list[np.ndarray] = []
        orphan_n: list[np.ndarray] = []
        fr_rows: list[np.ndarray] = []
        fr_nodes: list[np.ndarray] = []
        if removed.size:
            # All (row, deeper-endpoint) candidates of every removed tree
            # edge in one batch; the cascade re-checks any survivor whose
            # later-orphaned neighbor was its counted parent.
            ends = np.concatenate([removed[:, 0], removed[:, 1]])
            others = np.concatenate([removed[:, 1], removed[:, 0]])
            is_child = old_block[:, ends] == old_block[:, others] + 1
            rows0, cols0 = np.nonzero(is_child)
            if rows0.size:
                flat = _dedupe_flat(rows0 * n + ends[cols0])
                cand_r, cand_n = flat // n, flat % n
                has = self._row_has_parent(old_block, block, cand_r, cand_n)
                orph_r0, orph_n0 = cand_r[~has], cand_n[~has]
                if orph_r0.size:
                    block[orph_r0, orph_n0] = UNREACHABLE
                    fr_rows.append(orph_r0)
                    fr_nodes.append(orph_n0)
        while fr_rows:
            rows_arr = np.concatenate(fr_rows)
            nodes_arr = np.concatenate(fr_nodes)
            orphan_r.append(rows_arr)
            orphan_n.append(nodes_arr)
            # Children of the new orphans: neighbors one old level deeper,
            # not yet orphaned themselves.
            nbrs, counts = gather_csr_neighbors(
                self._indptr, self._indices, nodes_arr
            )
            fr_rows, fr_nodes = [], []
            if nbrs.size == 0:
                break
            rows_rep = np.repeat(rows_arr, counts)
            deeper_mask = (
                old_block[rows_rep, nbrs]
                == np.repeat(old_block[rows_arr, nodes_arr], counts) + 1
            ) & (block[rows_rep, nbrs] < UNREACHABLE)
            if not deeper_mask.any():
                break
            flat = _dedupe_flat(rows_rep[deeper_mask] * n + nbrs[deeper_mask])
            cand_r = flat // n
            cand_n = flat % n
            has = self._row_has_parent(old_block, block, cand_r, cand_n)
            orph_r, orph_n = cand_r[~has], cand_n[~has]
            if orph_r.size:
                block[orph_r, orph_n] = UNREACHABLE
                fr_rows.append(orph_r)
                fr_nodes.append(orph_n)
        if not orphan_r:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(orphan_r), np.concatenate(orphan_n)

    def _relax_rows(
        self,
        block: np.ndarray,
        seed_rows: np.ndarray,
        seed_nodes: np.ndarray,
    ) -> np.ndarray:
        """Decrease-propagation repair — the other half of the batch update.

        ``block`` rows satisfy: every finite value is realizable in the
        child graph, and the only *over*-estimates sit at orphaned
        entries (reset to :data:`UNREACHABLE` by
        :meth:`_settle_removals`) and behind added-edge shortcuts.  The
        seeds are settled ``(row, node)`` pairs adjacent to those
        over-estimates; propagating their values through the child CSR
        adjacency until no edge violates ``d[w] <= d[u] + 1`` reaches
        the unique fixed point — the true BFS metric (a
        minimal-counterexample's last hop would cross a relaxed edge).
        New reachability propagates identically; still-unreachable
        orphans simply keep the sentinel.

        All rows advance together Dial-style: frontiers are flat
        ``(row, node)`` pair sets *bucketed by distance value*, popped in
        ascending order, so — exactly as in Dijkstra with unit weights —
        every affected pair is expanded once at its final value, and the
        total cost is O(affected pairs × degree), independent of rows × n.

        Returns a boolean vector marking rows whose values changed here.
        """
        num, n = block.shape
        touched_rows = np.zeros(num, dtype=bool)
        if num == 0 or seed_rows.size == 0:
            return touched_rows
        indptr, indices = self._indptr, self._indices
        buckets: dict[int, list[np.ndarray]] = {}
        seed_vals = block[seed_rows, seed_nodes]
        finite = seed_vals < UNREACHABLE
        flat0 = seed_rows[finite] * n + seed_nodes[finite]
        for level in np.unique(seed_vals[finite]):
            buckets[int(level)] = [flat0[seed_vals[finite] == level]]
        while buckets:
            level = min(buckets)
            flat = _dedupe_flat(np.concatenate(buckets.pop(level)))
            rows_arr = flat // n
            nodes_arr = flat % n
            # Skip pairs that settled at a smaller value since enqueueing.
            cur = block[rows_arr, nodes_arr] == level
            rows_arr, nodes_arr = rows_arr[cur], nodes_arr[cur]
            if rows_arr.size == 0:
                continue
            nbrs, counts = gather_csr_neighbors(indptr, indices, nodes_arr)
            if nbrs.size == 0:
                continue
            rows_rep = np.repeat(rows_arr, counts)
            improve = block[rows_rep, nbrs] > level + 1
            if not improve.any():
                continue
            rr = rows_rep[improve]
            nn = nbrs[improve]
            # Duplicate (row, node) targets all receive the same value,
            # so plain fancy assignment is race-free.
            block[rr, nn] = level + 1
            touched_rows[rr] = True
            buckets.setdefault(int(level) + 1, []).append(rr * n + nn)
        return touched_rows

    def inherit_edge_delta(
        self,
        parent: "LazyDistanceOracle",
        added: Sequence[tuple[int, int]],
        removed: Sequence[tuple[int, int]],
    ) -> None:
        """Seed caches from ``parent`` after an edge delta.

        ``added`` / ``removed`` are the changed (normalized) edges; all
        nodes persist — the mobility case.  Every cached parent row is
        carried as a **full exact** child row via a batched dynamic-BFS
        update, all rows advancing together through flat ``(row, node)``
        frontiers:

        * :meth:`_settle_removals` runs the *increase* half: nodes whose
          every shortest-path parent died (the orphan cascade) are reset
          to :data:`UNREACHABLE`; every surviving entry provably keeps
          its exact value;
        * :meth:`_relax_rows` runs the *decrease* half: added-edge
          shortcuts and the survivor/orphan boundaries are relaxed and
          propagated to the unique fixed point — the child graph's true
          BFS metric.

        Rows the update never touched are carried verbatim and recorded
        in :attr:`delta_certified_sources` (canonical-path inheritance
        builds on that proof); touched rows land as freshly materialized
        arrays, counted by ``rows_patched`` in :meth:`stats`.  Keeping
        whole rows — not just certifiable prefixes — is what keeps the
        batched-rows hot paths (leg resolution, bulk pair distances)
        warm under motion, where nearly every row is grazed by *some*
        change.

        A cached **ball** ``(s, r)`` survives iff every changed-edge
        endpoint sits at distance ``>= r``: absent from the ball or
        exactly on its boundary (boundary nodes persist, so no patching
        needed).  A parent *partial* row's radius shrinks to the nearest
        touched node inside its prefix (stale values beyond the radius
        only certify ``> radius``, so they never shrink it).
        """
        self._carry_lineage(parent)
        add = np.asarray(sorted(added), dtype=np.intp).reshape(-1, 2)
        rem = np.asarray(sorted(removed), dtype=np.intp).reshape(-1, 2)
        touched = np.unique(np.concatenate([add.ravel(), rem.ravel()]))
        # An empty effective delta needs no special case: the pre-filter
        # below certifies every row verbatim, partials keep their radius,
        # and every ball survives the boundary test.  (The production
        # caller, Graph.with_edge_delta, returns `self` in that case and
        # never even gets here.)
        row_seed = []
        # Chain the parent's pending partials first: their radius shrinks
        # to the nearest touched node inside the prefix (stale values
        # beyond the radius only certify "> radius", so they never shrink
        # it).  Inserting them *before* this delta's fresh triage
        # fallbacks keeps _cap_partial_rows' oldest-first eviction
        # dropping the stalest entries first.
        for src, (row, radius, chain) in parent._partial_rows.items():
            if src in self._partial_rows:
                continue
            vals = row[touched]
            inside = vals[vals <= radius]
            m = int(inside.min()) if inside.size else radius
            if m > 0:
                self._partial_rows[src] = (row, m, chain)
        srcs = [s for s, _ in parent._rows.items()]
        certified: set[int] = set()
        if srcs:
            n = self._graph.n
            num = len(srcs)
            # Cheap pre-filter on the delta endpoints only: a row can be
            # affected solely by an added edge spanning levels >= 2 apart
            # (a shortcut / new reachability) or a removed edge spanning
            # adjacent levels (a potential tree edge).  Unaffected rows —
            # the bulk, under small deltas — skip the stacked update
            # entirely and carry verbatim.
            na, nr = add.shape[0], rem.shape[0]
            cols = np.concatenate(
                [add[:, 0], add[:, 1], rem[:, 0], rem[:, 1]]
            )
            vals = np.empty((num, cols.size), dtype=np.int64)
            for i, src in enumerate(srcs):
                vals[i] = parent._rows.get(src)[cols]
            maybe = np.zeros(num, dtype=bool)
            if na:
                au, av = vals[:, :na], vals[:, na : 2 * na]
                maybe |= (
                    np.minimum(au, av) + 1 < np.maximum(au, av)
                ).any(axis=1)
            if nr:
                ru = vals[:, 2 * na : 2 * na + nr]
                rv = vals[:, 2 * na + nr :]
                maybe |= (np.abs(ru - rv) == 1).any(axis=1)
            aff = np.flatnonzero(maybe)
            for i in np.flatnonzero(~maybe):
                src = srcs[i]
                row = parent._rows.get(src)
                certified.add(src)
                row_seed.append((src, row, row.nbytes))
            if aff.size:
                aff_srcs = [srcs[i] for i in aff]
                old_block = np.stack(
                    [parent._rows.get(s) for s in aff_srcs]
                ).astype(np.int64)
                block = old_block.copy()
                orph_r, orph_n = self._settle_removals(old_block, block, rem)
                orphans_per_row = np.bincount(orph_r, minlength=aff.size)
                # Added-edge shortcuts per row: |d(s,u) - d(s,v)| >= 2
                # means the edge genuinely shortens the row somewhere
                # (one side unreachable counts — new reachability; both
                # unreachable is gap 0 and harmless).
                if na:
                    au = block[:, add[:, 0]]
                    av = block[:, add[:, 1]]
                    gap2 = np.minimum(au, av) + 1 < np.maximum(au, av)
                    shortcuts_per_row = gap2.sum(axis=1)
                else:
                    gap2 = np.zeros((aff.size, 0), dtype=bool)
                    shortcuts_per_row = np.zeros(aff.size, dtype=np.int64)
                # Triage: rows whose delta footprint is small get patched
                # to exact child rows; rows grazed by many changes fall
                # back to the valid-prefix rung (the bit-packed batch
                # kernel recomputes them faster than pair-level
                # propagation could).
                patch = (
                    orphans_per_row + shortcuts_per_row
                ) <= DELTA_PATCH_SEED_BUDGET
                changed = orphans_per_row > 0
                seed_parts: list[np.ndarray] = []
                # Seeds: the orphans' surviving neighbors push repair
                # values across the boundary (orphan-side neighbors still
                # at the sentinel are filtered out by the bucket sweep
                # and re-enter once they gain a value).
                keep = patch[orph_r]
                if keep.any():
                    o_r, o_n = orph_r[keep], orph_n[keep]
                    nbrs, counts = gather_csr_neighbors(
                        self._indptr, self._indices, o_n
                    )
                    seed_parts.append(np.repeat(o_r, counts) * n + nbrs)
                # ... and each shortcutting added edge's nearer endpoint
                # pushes the decrease into the farther side.
                for j in range(na):
                    rows_j = np.flatnonzero(gap2[:, j] & patch)
                    if rows_j.size == 0:
                        continue
                    u, v = int(add[j, 0]), int(add[j, 1])
                    nearer = np.where(
                        block[rows_j, u] <= block[rows_j, v], u, v
                    )
                    seed_parts.append(rows_j * n + nearer)
                if seed_parts:
                    flat = _dedupe_flat(np.concatenate(seed_parts))
                    changed |= self._relax_rows(block, flat // n, flat % n)
                prefix = old_block[:, touched].min(axis=1)
                for j, src in enumerate(aff_srcs):
                    if not patch[j]:
                        if prefix[j] > 0:
                            self._partial_rows[src] = (
                                parent._rows.get(src),
                                int(prefix[j]),
                                (),
                            )
                        continue
                    if changed[j]:
                        row = _readonly(block[j].astype(DIST_DTYPE))
                        self._rows_patched += 1
                    else:
                        row = parent._rows.get(src)
                        certified.add(src)
                    row_seed.append((src, row, row.nbytes))
        self._delta_certified = frozenset(certified)
        self._cap_partial_rows()
        ball_seed = []
        for key, ball in parent._balls.items():
            _, radius = key
            nodes, dists = ball
            pos = nodes.searchsorted(touched)
            hit = pos < nodes.size
            hit[hit] = nodes[pos[hit]] == touched[hit]
            if hit.any() and (dists[pos[hit]] != radius).any():
                continue  # a touched node strictly inside: invalidated
            ball_seed.append((key, ball, ball[0].nbytes + ball[1].nbytes))
        self._rows.seed(row_seed)
        self._balls.seed(ball_seed)
        self._rows_inherited = len(row_seed)
        self._balls_inherited = len(ball_seed)
        self._note_peak()

    def inherit_node_add(
        self,
        parent: "LazyDistanceOracle",
        added: Sequence[tuple[int, int]],
    ) -> None:
        """Seed caches from ``parent`` after new nodes were appended.

        ``added`` are the arrivals' attachment edges (each touching at
        least one node ID ``>= parent.graph.n``).  Node addition is the
        pure *decrease* case of the dynamic-BFS update: every old path
        survives, so every cached parent entry remains a realizable upper
        bound, and the only over-estimates are the new nodes themselves
        (born at :data:`UNREACHABLE`) plus any old pair a path through a
        new node genuinely shortcuts.  There is no orphan cascade —
        :meth:`_relax_rows` alone, seeded with every finite attachment
        endpoint, reaches the fixed point: any strictly-shorter child
        path crosses an attachment edge at its first new node, and the
        Dial sweep settles pairs in ascending distance order.

        Every cached parent row is therefore carried as a **full exact**
        child row: padded to the grown length with the sentinel, stacked,
        and relaxed in one batch.  Rows whose *old* entries came through
        unchanged (new nodes merely appended) are recorded in
        :attr:`delta_certified_sources` — canonical-path inheritance
        builds on that proof; rows with genuine old-entry shortcuts count
        as ``rows_patched``.

        A cached **ball** ``(s, r)`` survives iff every old attachment
        endpoint sits at distance ``>= r`` from ``s``: a new node is then
        at distance ``>= r + 1``, so it neither enters the closed ball
        nor shortens any member's distance (a detour through it costs
        ``>= r + 2``).  Parent partial rows chain with their radius
        shrunk to the nearest old attachment endpoint inside the prefix,
        padded to the grown length.
        """
        self._carry_lineage(parent)
        old_n = parent._graph.n
        new_n = self._graph.n
        grown = new_n - old_n
        add = np.asarray(sorted(added), dtype=np.int64).reshape(-1, 2)
        ends = _dedupe_flat(add.ravel().copy())
        touched_old = ends[ends < old_n]

        def _padded(row: np.ndarray) -> np.ndarray:
            out = np.full(new_n, UNREACHABLE, dtype=DIST_DTYPE)
            out[:old_n] = row
            return out

        for src, (row, radius, chain) in parent._partial_rows.items():
            if src in self._partial_rows:
                continue
            vals = row[touched_old]
            inside = vals[vals <= radius]
            m = int(inside.min()) if inside.size else radius
            if m > 0:
                self._partial_rows[src] = (_readonly(_padded(row)), m, chain)
        srcs = [s for s, _ in parent._rows.items()]
        certified: set[int] = set()
        row_seed = []
        if srcs:
            old_block = np.stack([parent._rows.get(s) for s in srcs])
            block = np.full((len(srcs), new_n), UNREACHABLE, dtype=np.int64)
            block[:, :old_n] = old_block
            # Seed every attachment endpoint in every row; endpoints still
            # at the sentinel (new nodes, unreachable components) are
            # filtered by the bucket sweep and re-enter once they gain a
            # value through a finite neighbor.
            rows_idx = np.repeat(np.arange(len(srcs)), ends.size)
            nodes_idx = np.tile(ends, len(srcs))
            if grown and ends.size:
                self._relax_rows(block, rows_idx, nodes_idx)
            old_changed = (block[:, :old_n] != old_block).any(axis=1)
            for j, src in enumerate(srcs):
                row = _readonly(block[j].astype(DIST_DTYPE))
                if old_changed[j]:
                    self._rows_patched += 1
                else:
                    certified.add(src)
                row_seed.append((src, row, row.nbytes))
        self._delta_certified = frozenset(certified)
        self._cap_partial_rows()
        ball_seed = []
        for key, ball in parent._balls.items():
            _, radius = key
            nodes, dists = ball
            pos = nodes.searchsorted(touched_old)
            hit = pos < nodes.size
            hit[hit] = nodes[pos[hit]] == touched_old[hit]
            if hit.any() and (dists[pos[hit]] != radius).any():
                continue  # an attachment endpoint strictly inside: invalidated
            ball_seed.append((key, ball, ball[0].nbytes + ball[1].nbytes))
        self._rows.seed(row_seed)
        self._balls.seed(ball_seed)
        self._rows_inherited = len(row_seed)
        self._balls_inherited = len(ball_seed)
        self._note_peak()

    @property
    def delta_certified_sources(self) -> frozenset[int]:
        """Sources whose rows the last edge-delta inheritance *proved*
        unchanged (empty unless this oracle was derived by
        :meth:`inherit_edge_delta`).

        The certificate is stronger than "the row happens to be cached":
        every distance from such a source is identical in parent and
        child.  Introspection/testing surface — canonical-path
        inheritance (:meth:`repro.net.paths.PathOracle.inherit_edge_delta`)
        deliberately re-derives the same fact from the cached row pair
        instead, because its parent oracle may sit several composed
        deltas behind this one.
        """
        return self._delta_certified

    # -- queries ------------------------------------------------------- #

    def _reexpand_row(
        self, source: int, row: np.ndarray, radius: int, chain: tuple[int, ...]
    ) -> np.ndarray:
        """Complete a partial row: resume BFS from its valid frontier.

        The prefix (entries at distance <= ``radius``) is exact; entries
        beyond it — and the ``chain`` of removed nodes themselves — are
        reset to :data:`UNREACHABLE` and recomputed by continuing the
        level-synchronous sweep from the nodes at exactly ``radius``
        (the only visited nodes an unvisited node can adjoin).
        """
        dist = row.copy()
        dist[dist > radius] = UNREACHABLE
        rm = np.asarray(chain, dtype=np.intp)
        dist[rm[row[rm] <= radius]] = UNREACHABLE
        frontier = np.flatnonzero(dist == radius)
        level = radius
        indptr, indices = self._indptr, self._indices
        while frontier.size:
            level += 1
            nbrs, _ = gather_csr_neighbors(indptr, indices, frontier)
            if nbrs.size == 0:
                break
            nbrs = nbrs[dist[nbrs] == UNREACHABLE]
            if nbrs.size == 0:
                break
            frontier = np.unique(nbrs)
            dist[frontier] = level
        self._rows_reexpanded += 1
        return dist

    def cached_row(self, source: NodeId) -> DistArray | None:
        return self._rows.get(int(source))

    def row(self, source: NodeId) -> DistArray:
        source = int(source)
        cached = self._rows.get(source)
        if cached is not None:
            self._row_hits += 1
            return cached
        partial = self._partial_rows.get(source)
        if partial is not None:
            dist = self._reexpand_row(source, *partial)
        else:
            dist, _ = _csr_bfs(
                self._indptr, self._indices, self._graph.n, source
            )
        dist = _readonly(dist)
        self._rows_computed += 1
        self._store_row(source, dist)
        return dist

    def rows(self, sources: Sequence[NodeId]) -> DistArray:
        n = self._graph.n
        srcs = [int(s) for s in sources]
        if not srcs:
            return np.zeros((0, n), dtype=DIST_DTYPE)
        unique = list(dict.fromkeys(srcs))
        missing = [s for s in unique if s not in self._rows]
        # Fresh rows are pinned locally so budget evictions during the
        # batch can never lose a row before it is stacked into the result.
        fresh: dict[int, np.ndarray] = {}
        # Pending partial rows are *not* salvaged here: per-source BFS
        # resumption cannot beat the bit-packed kernel's 64-sources-per-
        # sweep amortization, so batched requests recompute them (and
        # _store_row retires the stale partial).  Partials pay off on the
        # single-row path, where the alternative is one full BFS.
        for start in range(0, len(missing), BATCH_BITS):
            chunk = missing[start : start + BATCH_BITS]
            block = multi_source_bfs(self._indptr, self._indices, n, chunk)
            self._batched_sweeps += 1
            for i, s in enumerate(chunk):
                r = _readonly(block[i].copy())
                fresh[s] = r
                self._rows_computed += 1
                self._store_row(s, r)
        self._row_hits += len(unique) - len(missing)
        out = np.empty((len(srcs), n), dtype=DIST_DTYPE)
        for i, s in enumerate(srcs):
            r = fresh.get(s)
            if r is None:
                r = self._rows.get(s)
            if r is None:  # evicted mid-batch under a tiny budget
                r, _ = _csr_bfs(self._indptr, self._indices, n, s)
            out[i] = r
        return out

    def distance(self, u: NodeId, v: NodeId) -> int:
        # Prefer whichever endpoint's row is already cached.
        u, v = int(u), int(v)
        cached = self._rows.get(u)
        if cached is not None:
            self._row_hits += 1
            return int(cached[v])
        cached = self._rows.get(v)
        if cached is not None:
            self._row_hits += 1
            return int(cached[u])
        return int(self.row(u)[v])

    def prepare_balls(self, sources: Sequence[NodeId], radius: int) -> int:
        """Batch-compute the missing ``radius``-balls among ``sources``.

        Missing sources run through :func:`multi_source_bfs` with
        ``max_depth=radius`` — one bit-packed sweep per
        :data:`BATCH_BITS` sources instead of one Python-level
        depth-limited BFS each — and the extracted balls are stored in
        the ball cache.  Cached sources are skipped; an over-budget
        cache simply evicts LRU-first as usual, so this is always safe
        to call speculatively.
        """
        _check_radius(radius)
        missing = [
            s
            for s in dict.fromkeys(int(s) for s in sources)
            if (s, radius) not in self._balls
        ]
        n = self._graph.n
        for start in range(0, len(missing), BATCH_BITS):
            chunk = missing[start : start + BATCH_BITS]
            block = multi_source_bfs(
                self._indptr, self._indices, n, chunk, max_depth=radius
            )
            self._batched_sweeps += 1
            for i, s in enumerate(chunk):
                result = _ball_from_row(block[i], radius)
                self._balls_computed += 1
                self._store_ball((s, radius), result)
        return len(missing)

    def ball(self, source: NodeId, radius: int) -> Tuple[IndexArray, DistArray]:
        _check_radius(radius)
        source = int(source)
        key = (source, radius)
        cached = self._balls.get(key)
        if cached is not None:
            self._ball_hits += 1
            return cached
        row = self._rows.get(source)
        if row is not None:
            # A cached full row answers any radius without a BFS; store the
            # derived ball so later queries are O(1) cache hits.
            self._ball_hits += 1
            result = _ball_from_row(row, radius)
        else:
            dist, visited = _csr_bfs(
                self._indptr, self._indices, self._graph.n, source, max_depth=radius
            )
            result = (_readonly(visited), _readonly(dist[visited]))
            self._balls_computed += 1
        self._store_ball(key, result)
        return result

    def stats(self) -> OracleStats:
        return OracleStats(
            backend=self.backend,
            rows_computed=self._rows_computed,
            row_hits=self._row_hits,
            balls_computed=self._balls_computed,
            ball_hits=self._ball_hits,
            cached_bytes=self._rows.nbytes + self._balls.nbytes,
            peak_cached_bytes=self._peak_bytes,
            rows_inherited=self._rows_inherited,
            balls_inherited=self._balls_inherited,
            rows_partial_inherited=self._rows_partial_inherited,
            rows_patched=self._rows_patched,
            rows_reexpanded=self._rows_reexpanded,
            batched_sweeps=self._batched_sweeps,
            lineage_rows_computed=self._lineage[0] + self._rows_computed,
            lineage_row_hits=self._lineage[1] + self._row_hits,
            lineage_balls_computed=self._lineage[2] + self._balls_computed,
            lineage_ball_hits=self._lineage[3] + self._ball_hits,
            lineage_inherits=self._lineage[4],
        )


# --------------------------------------------------------------------- #
# factory
# --------------------------------------------------------------------- #

_BACKENDS = ("auto", "dense", "lazy", "landmark")


def resolve_backend(backend: str | None, n: int) -> str:
    """Resolve ``backend`` (``None``/"auto"/a concrete name) to a concrete name."""
    name = backend or "auto"
    if name not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown distance backend {backend!r}; known: {list(_BACKENDS)}"
        )
    if name == "auto":
        return "dense" if n <= DENSE_AUTO_MAX else "lazy"
    return name


def build_distance_oracle(
    graph: "Graph", backend: str | None = None, **kwargs
) -> DistanceOracle:
    """Build a distance oracle for ``graph``.

    Args:
        graph: the network graph.
        backend: ``"dense"``, ``"lazy"``, ``"landmark"``, or
            ``"auto"``/``None`` (dense up to :data:`DENSE_AUTO_MAX` nodes,
            lazy above).  See the module docstring for the selection guide.
        **kwargs: backend-specific options (lazy/landmark:
            ``row_cache_bytes``, ``ball_cache_bytes``).
    """
    name = resolve_backend(backend, graph.n)
    if name == "dense":
        if kwargs:
            raise InvalidParameterError(
                f"dense backend takes no options, got {sorted(kwargs)}"
            )
        return DenseDistanceOracle(graph)
    if name == "landmark":
        from .labeling import LandmarkDistanceOracle

        return LandmarkDistanceOracle(graph, **kwargs)
    return LazyDistanceOracle(graph, **kwargs)
