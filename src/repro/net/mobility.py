"""Mobility and churn processes for the dynamics of §3.3.

The paper's maintenance discussion considers nodes that "disappear" (switch
off or move away) and distinguishes three repair cases by the failed node's
role.  Two simple processes drive those experiments:

* :class:`RandomWaypoint` — the standard MANET mobility model: each node
  picks a uniform waypoint, moves toward it at a uniform speed, then picks a
  new one.  Used to generate *topology sequences* whose successive unit-disk
  graphs differ by a few edges.
* :class:`ChurnProcess` — memoryless on/off switching: each alive node dies
  with probability ``p_off`` per step, each dead node revives with ``p_on``.
  Used to generate the failure events consumed by :mod:`repro.maintenance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..types import Edge, normalize_edge
from .geometry import Area
from .graph import Graph
from .topology import unit_disk_edges, unit_disk_graph

__all__ = ["RandomWaypoint", "ChurnProcess", "snapshot_edge_delta"]


class RandomWaypoint:
    """Random-waypoint mobility over a rectangular area.

    Args:
        positions: initial ``(n, 2)`` coordinates (copied).
        area: movement rectangle.
        speed_range: ``(v_min, v_max)``, units per step, sampled per leg.
        rng: NumPy generator driving waypoint and speed choices.
    """

    def __init__(
        self,
        positions: np.ndarray,
        area: Area,
        speed_range: tuple[float, float],
        rng: np.random.Generator,
    ) -> None:
        v_min, v_max = speed_range
        if not (0 <= v_min <= v_max):
            raise InvalidParameterError(f"bad speed range {speed_range!r}")
        self.area = area
        self._rng = rng
        self._pos = np.array(positions, dtype=np.float64, copy=True)
        self._speed_range = (float(v_min), float(v_max))
        n = self._pos.shape[0]
        self._targets = self._draw_targets(n)
        self._speeds = self._draw_speeds(n)

    def _draw_targets(self, count: int) -> np.ndarray:
        t = self._rng.random((count, 2))
        t[:, 0] *= self.area[0]
        t[:, 1] *= self.area[1]
        return t

    def _draw_speeds(self, count: int) -> np.ndarray:
        lo, hi = self._speed_range
        return lo + (hi - lo) * self._rng.random(count)

    @property
    def positions(self) -> np.ndarray:
        """Current coordinates (copy)."""
        return self._pos.copy()

    @property
    def speed_range(self) -> tuple[float, float]:
        """The ``(v_min, v_max)`` per-leg speed bounds."""
        return self._speed_range

    @property
    def leg_speeds(self) -> np.ndarray:
        """Current per-node leg speeds (copy) — each within ``speed_range``."""
        return self._speeds.copy()

    @property
    def leg_targets(self) -> np.ndarray:
        """Current per-node waypoints (copy) — each inside ``area``."""
        return self._targets.copy()

    def advance(self, steps: int) -> np.ndarray:
        """Advance ``steps`` time steps; returns the final positions (copy).

        Exactly equivalent to calling :meth:`step` ``steps`` times — the
        per-leg waypoint/speed draws happen in the same per-step order,
        so trajectories are identical however the steps are batched (the
        seeded-reproducibility contract the regression matrix relies on).
        """
        if steps < 0:
            raise InvalidParameterError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()
        return self.positions

    def step(self) -> np.ndarray:
        """Advance one time step; returns the new positions (copy).

        Nodes that reach their waypoint this step stop there and draw a new
        waypoint and speed for the next step.
        """
        delta = self._targets - self._pos
        dist = np.sqrt((delta**2).sum(axis=1))
        arrive = dist <= self._speeds
        move = ~arrive & (dist > 0)
        if move.any():
            unit = delta[move] / dist[move, None]
            self._pos[move] += unit * self._speeds[move, None]
        if arrive.any():
            self._pos[arrive] = self._targets[arrive]
            idx = np.flatnonzero(arrive)
            fresh_t = self._draw_targets(idx.size)
            fresh_s = self._draw_speeds(idx.size)
            self._targets[idx] = fresh_t
            self._speeds[idx] = fresh_s
        return self.positions

    def snapshot_graph(self, radius: float) -> Graph:
        """Unit-disk graph of the current positions."""
        return unit_disk_graph(self._pos, radius)

    def snapshot_edges(self, radius: float) -> set[Edge]:
        """Normalized unit-disk edge set of the current positions.

        The raw material for :func:`snapshot_edge_delta` — no
        :class:`Graph` is constructed.
        """
        return {
            normalize_edge(u, v) for u, v in unit_disk_edges(self._pos, radius)
        }


def snapshot_edge_delta(
    graph: Graph, new_edges: set[Edge]
) -> tuple[list[Edge], list[Edge]]:
    """Diff a snapshot's edge set against ``graph``: ``(added, removed)``.

    Both lists are sorted (deterministic downstream processing); feed them
    to :meth:`Graph.with_edge_delta` to evolve the graph incrementally.
    ``new_edges`` must be normalized (as :meth:`RandomWaypoint.snapshot_edges`
    returns them).
    """
    old_edges = set(graph.edges)
    return sorted(new_edges - old_edges), sorted(old_edges - new_edges)


@dataclass
class ChurnEvent:
    """One node state flip: ``kind`` is ``"off"`` or ``"on"``."""

    step: int
    node: int
    kind: str


class ChurnProcess:
    """Memoryless per-step node on/off churn.

    Args:
        n: node count.
        p_off: per-step probability an alive node switches off.
        p_on: per-step probability a dead node switches back on.
        rng: NumPy generator.
    """

    def __init__(
        self, n: int, p_off: float, p_on: float, rng: np.random.Generator
    ) -> None:
        for name, p in (("p_off", p_off), ("p_on", p_on)):
            if not (0.0 <= p <= 1.0):
                raise InvalidParameterError(f"{name} must be in [0, 1], got {p}")
        self.n = n
        self.p_off = p_off
        self.p_on = p_on
        self._rng = rng
        self._alive = np.ones(n, dtype=bool)
        self._step = 0

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean alive vector (copy)."""
        return self._alive.copy()

    def alive_nodes(self) -> tuple[int, ...]:
        """Sorted tuple of currently-alive node IDs."""
        return tuple(np.flatnonzero(self._alive).tolist())

    def dead_nodes(self) -> tuple[int, ...]:
        """Sorted tuple of currently-dead node IDs."""
        return tuple(np.flatnonzero(~self._alive).tolist())

    def step(self) -> list[ChurnEvent]:
        """Advance one step; returns the state-flip events in node order."""
        self._step += 1
        draws = self._rng.random(self.n)
        events: list[ChurnEvent] = []
        for u in range(self.n):
            if self._alive[u] and draws[u] < self.p_off:
                self._alive[u] = False
                events.append(ChurnEvent(self._step, u, "off"))
            elif not self._alive[u] and draws[u] < self.p_on:
                self._alive[u] = True
                events.append(ChurnEvent(self._step, u, "on"))
        return events
