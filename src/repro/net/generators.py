"""Deterministic structured topologies for tests, examples and edge cases.

These generators produce graphs whose hop distances, clusterings and gateway
sets can be worked out by hand, which the unit tests rely on heavily.  They
also exercise degenerate regimes the random generator rarely hits (paths
longer than 2k+1, stars, bridges between dense blobs).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .graph import Graph
from .topology import Topology

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "toroidal_grid",
    "two_cliques_bridge",
    "ring_of_cliques",
    "caterpillar",
    "topology_from_graph",
]


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise InvalidParameterError("path needs n >= 1")
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise InvalidParameterError("cycle needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(leaves: int) -> Graph:
    """Star: hub 0 connected to ``leaves`` leaf nodes ``1..leaves``."""
    if leaves < 0:
        raise InvalidParameterError("star needs leaves >= 0")
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def complete_graph(n: int) -> Graph:
    """Complete graph K_n."""
    if n < 1:
        raise InvalidParameterError("complete graph needs n >= 1")
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """4-connected grid, row-major numbering (node = r * cols + c)."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid needs rows, cols >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Graph(rows * cols, edges)


def toroidal_grid(rows: int, cols: int) -> Graph:
    """4-connected grid with wraparound edges (a discrete torus).

    A deterministic large-N scenario: constant degree 4, diameter
    ``rows//2 + cols//2``, connected at any size — useful for scaling
    sweeps where the unit-disk generator's connectivity redraws would
    dominate.  Row-major numbering like :func:`grid_graph`.
    """
    if rows < 3 or cols < 3:
        raise InvalidParameterError("toroidal grid needs rows, cols >= 3")
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            edges.append((u, r * cols + (c + 1) % cols))
            edges.append((u, ((r + 1) % rows) * cols + c))
    return Graph(rows * cols, edges)


def two_cliques_bridge(clique_size: int, bridge_len: int) -> Graph:
    """Two cliques joined by a path of ``bridge_len`` intermediate nodes.

    Node layout: clique A = ``0..s-1``, bridge = ``s..s+b-1``, clique B =
    ``s+b..2s+b-1``.  The bridge attaches to node ``0`` of A and node
    ``s+b`` of B.  With ``bridge_len > 2k-1`` the two cliques land in
    different clusters for k-hop clustering, making gateway paths easy to
    reason about.
    """
    if clique_size < 1 or bridge_len < 0:
        raise InvalidParameterError("need clique_size >= 1 and bridge_len >= 0")
    s, b = clique_size, bridge_len
    edges = [(i, j) for i in range(s) for j in range(i + 1, s)]
    edges += [(s + b + i, s + b + j) for i in range(s) for j in range(i + 1, s)]
    chain = [0] + [s + i for i in range(b)] + [s + b]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(2 * s + b, edges)


def ring_of_cliques(cliques: int, clique_size: int) -> Graph:
    """``cliques`` cliques arranged in a ring, consecutive cliques bridged.

    Clique ``i`` occupies nodes ``i*s .. (i+1)*s - 1``; its node 0 links to
    the next clique's node 0.  A deterministic large-N scenario with heavy
    local density and long global distances — the regime where lazy
    ball-based clustering shines and the dense matrix hurts most.
    """
    if cliques < 3 or clique_size < 1:
        raise InvalidParameterError("need cliques >= 3 and clique_size >= 1")
    s = clique_size
    edges = []
    for i in range(cliques):
        base = i * s
        edges.extend(
            (base + a, base + b) for a in range(s) for b in range(a + 1, s)
        )
        edges.append((base, ((i + 1) % cliques) * s))
    return Graph(cliques * s, edges)


def caterpillar(spine: int, legs_per_node: int) -> Graph:
    """Caterpillar tree: a spine path with pendant leaves on every spine node.

    Spine nodes are ``0..spine-1``; leaves are appended afterwards in spine
    order, so leaf IDs are always larger than spine IDs (keeps lowest-ID
    clusterheads on the spine, which the tests exploit).
    """
    if spine < 1 or legs_per_node < 0:
        raise InvalidParameterError("need spine >= 1 and legs_per_node >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for u in range(spine):
        for _ in range(legs_per_node):
            edges.append((u, nxt))
            nxt += 1
    return Graph(nxt, edges)


def topology_from_graph(graph: Graph, *, spacing: float = 10.0) -> Topology:
    """Wrap an abstract graph in a :class:`Topology` with synthetic positions.

    Positions are laid out on a circle purely for plotting/examples; they do
    **not** satisfy the unit-disk property and must not be used to rebuild
    edges.  ``radius`` is set to NaN to make accidental reuse obvious.
    """
    n = graph.n
    theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    r = spacing * max(1.0, n / (2.0 * np.pi))
    positions = np.column_stack([r * np.cos(theta) + r, r * np.sin(theta) + r])
    return Topology(graph=graph, positions=positions, radius=float("nan"), area=(2 * r, 2 * r))
