"""Random unit-disk topology generation with average-degree calibration.

The paper's simulation setup (§4): ``N`` nodes placed uniformly at random in
a restricted 100 x 100 area, identical transmission ranges, average node
degree ``D`` in {6, 10}, and an ideal MAC layer.  Disconnected samples are
useless for connected-clustering experiments, so the generator redraws until
the unit-disk graph is connected (standard practice in this literature, and
implied by the paper's Theorem 1 premise that ``G`` is connected).

Two radius-calibration modes are offered:

* ``"analytic"`` — ``r = sqrt(D * A / (pi * N))`` equates the expected
  number of nodes in a transmission disk with ``D``; border effects make the
  realized mean degree slightly lower.
* ``"empirical"`` — bisect on ``r`` until the realized mean degree over a
  few position samples is within tolerance of ``D``; slower but tighter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..errors import CalibrationError, InvalidParameterError
from .geometry import PAPER_AREA, Area, pairwise_distances, random_positions
from .graph import Graph

__all__ = [
    "Topology",
    "radius_for_degree",
    "calibrate_radius",
    "unit_disk_edges",
    "unit_disk_graph",
    "random_topology",
    "CELL_BIN_MIN_N",
]


@dataclass(frozen=True)
class Topology:
    """A generated ad hoc network instance.

    Attributes:
        graph: the unit-disk connectivity graph.
        positions: ``(n, 2)`` node coordinates.
        radius: common transmission range used to build ``graph``.
        area: deployment rectangle.
        seed: seed of the RNG stream that produced the accepted sample.
        attempts: how many position draws were needed to get a connected
            sample (1 = first try); useful for reporting sampling bias.
    """

    graph: Graph
    positions: np.ndarray
    radius: float
    area: Area = PAPER_AREA
    seed: Optional[int] = None
    attempts: int = 1
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    def realized_degree(self) -> float:
        """Mean degree of the generated graph."""
        return self.graph.average_degree()

    def with_node(self, position: np.ndarray) -> "Topology":
        """The topology grown by one node at ``position`` (the arrival case).

        The new node takes ID ``n``; its attachment edges are every
        existing node within the common transmission ``radius``, computed
        with the same float expression as :func:`unit_disk_edges` so
        growth and from-scratch generation agree bit-identically at the
        radius knife-edge.  The underlying graph grows through
        :meth:`Graph.with_nodes` (CSR patching + oracle cache
        inheritance); an arrival outside everyone's range still joins the
        topology, just as an isolated node.
        """
        pos = np.asarray(position, dtype=np.float64).reshape(2)
        diff = self.positions - pos
        within = np.sqrt(np.einsum("ij,ij->i", diff, diff)) <= self.radius
        x = self.n
        grown = self.graph.with_nodes(
            1, [(int(u), x) for u in np.flatnonzero(within)]
        )
        return replace(
            self,
            graph=grown,
            positions=np.concatenate([self.positions, pos[None, :]]),
        )


def radius_for_degree(n: int, degree: float, area: Area = PAPER_AREA) -> float:
    """Analytic transmission range for a target average degree.

    Solves ``degree = (n - 1) * pi * r^2 / A`` (expected neighbors of a node
    whose disk lies fully inside the area).
    """
    if n < 2:
        raise InvalidParameterError(f"need n >= 2 to talk about degree, got n={n}")
    if degree <= 0:
        raise InvalidParameterError(f"target degree must be positive, got {degree}")
    a = area[0] * area[1]
    return math.sqrt(degree * a / (math.pi * (n - 1)))


#: ``unit_disk_graph`` switches from the dense O(n²) distance matrix to
#: cell-binned candidate search above this many nodes.
CELL_BIN_MIN_N: int = 1024


def _cell_binned_disk_edges(pos: np.ndarray, radius: float) -> list[tuple[int, int]]:
    """Unit-disk edges via spatial hashing: O(n · local density) work.

    Nodes are binned into a grid of ``radius``-sized cells; only pairs in
    the same or adjacent cells can be within range, and each adjacent cell
    pair is visited once (half-neighborhood stencil), so no O(n²) distance
    matrix is ever formed.  The whole candidate-pair construction is
    array-level: nodes are sorted by cell key once, each stencil offset
    becomes one ``searchsorted`` join of all nodes against all target
    cells, and candidate pairs are materialized with ``repeat``/offset
    arithmetic — no Python per-cell loop (this runs once per mobility
    snapshot, so it is on the simulation hot path).
    """
    n = pos.shape[0]
    if n < 2 or radius < 0:
        return []
    if radius == 0:
        # Degenerate but must match the dense path: only coincident points
        # are "within range 0" of each other.
        groups: dict[tuple[float, float], list[int]] = {}
        for i, p in enumerate(map(tuple, pos.tolist())):
            groups.setdefault(p, []).append(i)
        return [
            (mem[a], mem[b])
            for mem in groups.values()
            for a in range(len(mem))
            for b in range(a + 1, len(mem))
        ]
    cells = np.floor(pos / radius).astype(np.int64)
    cx, cy = cells[:, 0], cells[:, 1]
    # Collision-free scalar cell key (grid coordinates are bounded by
    # area/radius, far below 2^31).
    shift = np.int64(1) << np.int64(31)
    key = cx * shift + cy
    order = np.argsort(key, kind="stable")
    skey = key[order]
    starts = np.flatnonzero(np.concatenate([[True], skey[1:] != skey[:-1]]))
    uniq_keys = skey[starts]
    bounds = np.concatenate([starts, [n]])
    pairs_i: list[np.ndarray] = []
    pairs_j: list[np.ndarray] = []
    # (0,0) covers within-cell pairs; the four forward offsets visit every
    # unordered pair of adjacent cells exactly once.
    for dx, dy in ((0, 0), (1, 0), (0, 1), (1, 1), (1, -1)):
        target = key + np.int64(dx) * shift + np.int64(dy)
        cell_pos = np.searchsorted(uniq_keys, target)
        cell_pos = np.clip(cell_pos, 0, uniq_keys.size - 1)
        hit = uniq_keys[cell_pos] == target
        src = np.flatnonzero(hit)
        if src.size == 0:
            continue
        lo = bounds[cell_pos[src]]
        hi = bounds[cell_pos[src] + 1]
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            continue
        # Concatenate [lo_i, hi_i) ranges without a Python loop.
        offsets = np.repeat(hi - np.cumsum(counts), counts) + np.arange(total)
        jj = order[offsets]
        ii = np.repeat(src, counts)
        if dx == 0 and dy == 0:
            keep = ii < jj  # each unordered within-cell pair once
            ii, jj = ii[keep], jj[keep]
        pairs_i.append(ii)
        pairs_j.append(jj)
    if not pairs_i:
        return []
    ii = np.concatenate(pairs_i)
    jj = np.concatenate(pairs_j)
    diff = pos[ii] - pos[jj]
    # Same float expression as geometry.pairwise_distances (the dense
    # path), so both unit_disk_edges routes share bit-identical
    # inclusion at the radius knife-edge.
    ok = np.sqrt(np.einsum("ij,ij->i", diff, diff)) <= radius
    return list(zip(ii[ok].tolist(), jj[ok].tolist()))


def unit_disk_edges(positions: np.ndarray, radius: float) -> list[tuple[int, int]]:
    """The unit-disk edge set of ``positions`` without building a graph.

    The mobility loop diffs consecutive snapshots' edge sets to feed
    :meth:`Graph.with_edge_delta`, so it needs the raw edges — paying the
    ``Graph`` constructor for a throwaway object would negate part of the
    delta win.  Edge orientation is unspecified; normalize before set
    arithmetic.
    """
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if n > CELL_BIN_MIN_N:
        return _cell_binned_disk_edges(pos, radius)
    dist = pairwise_distances(pos)
    iu, ju = np.triu_indices(n, k=1)
    mask = dist[iu, ju] <= radius
    return list(zip(iu[mask].tolist(), ju[mask].tolist()))


def unit_disk_graph(positions: np.ndarray, radius: float) -> Graph:
    """Unit-disk graph: an edge wherever Euclidean distance <= ``radius``.

    Small inputs use the dense pairwise-distance matrix; above
    :data:`CELL_BIN_MIN_N` nodes the edge set is built by cell binning
    (identical edges, sub-quadratic memory), which is what makes the
    large-N scaling scenarios feasible.
    """
    pos = np.asarray(positions, dtype=np.float64)
    return Graph(pos.shape[0], unit_disk_edges(pos, radius))


def calibrate_radius(
    n: int,
    degree: float,
    area: Area = PAPER_AREA,
    *,
    rng: np.random.Generator,
    samples: int = 8,
    tol: float = 0.05,
    max_iter: int = 40,
) -> float:
    """Empirically bisect the radius so realized mean degree ~= ``degree``.

    Averages the realized mean degree over ``samples`` independent uniform
    placements at each candidate radius, then bisects.  ``tol`` is relative
    (0.05 = within 5 % of target).

    Raises:
        CalibrationError: if the bracket cannot be established or bisection
            does not converge in ``max_iter`` steps.
    """
    if degree >= n - 1:
        raise InvalidParameterError(
            f"target degree {degree} unreachable with n={n} (max is n-1)"
        )
    position_sets = [random_positions(n, area, rng) for _ in range(samples)]
    dists = [pairwise_distances(p) for p in position_sets]

    def realized(r: float) -> float:
        total = 0.0
        for d in dists:
            iu, ju = np.triu_indices(n, k=1)
            m = int((d[iu, ju] <= r).sum())
            total += 2.0 * m / n
        return total / len(dists)

    lo = 0.0
    hi = radius_for_degree(n, degree, area)
    grow = 0
    while realized(hi) < degree:
        hi *= 1.5
        grow += 1
        if grow > 30:
            raise CalibrationError("could not bracket target degree from above")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        got = realized(mid)
        if abs(got - degree) <= tol * degree:
            return mid
        if got < degree:
            lo = mid
        else:
            hi = mid
    raise CalibrationError(
        f"radius calibration did not converge for n={n}, degree={degree}"
    )


def random_topology(
    n: int,
    degree: float,
    *,
    seed: int,
    area: Area = PAPER_AREA,
    calibration: str = "analytic",
    radius: Optional[float] = None,
    require_connected: bool = True,
    max_attempts: int = 5000,
) -> Topology:
    """Generate a random connected unit-disk topology (the paper's workload).

    Args:
        n: number of nodes (50..200 in the paper).
        degree: target average node degree (6 or 10 in the paper).
        seed: base seed; each redraw uses an independent child stream, so a
            given ``(n, degree, seed)`` is fully reproducible.
        area: deployment rectangle, default the paper's 100 x 100.
        calibration: ``"analytic"`` or ``"empirical"`` (see module docs).
        radius: explicit transmission range; overrides ``calibration`` when
            given (sweep runners calibrate once per (n, degree) and reuse).
        require_connected: redraw until the sample is connected.
        max_attempts: redraw budget before raising.

    Raises:
        CalibrationError: when no connected sample is found in budget —
            typically means the requested degree is too low for ``n``.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if calibration not in ("analytic", "empirical"):
        raise InvalidParameterError(f"unknown calibration mode {calibration!r}")
    root = np.random.default_rng(seed)
    if n == 1:
        return Topology(
            Graph(1), np.zeros((1, 2)), radius=0.0, area=area, seed=seed, attempts=1
        )
    if radius is None:
        if calibration == "analytic":
            radius = radius_for_degree(n, degree, area)
        else:
            radius = calibrate_radius(n, degree, area, rng=root)
    for attempt in range(1, max_attempts + 1):
        positions = random_positions(n, area, root)
        graph = unit_disk_graph(positions, radius)
        if not require_connected or graph.is_connected():
            return Topology(
                graph=graph,
                positions=positions,
                radius=radius,
                area=area,
                seed=seed,
                attempts=attempt,
            )
    raise CalibrationError(
        f"no connected unit-disk sample in {max_attempts} attempts "
        f"(n={n}, degree={degree}, radius={radius:.2f}); "
        "increase degree or max_attempts"
    )
