"""Vectorized batch routing of flow workloads over a backbone.

:func:`repro.cds.routing.route` answers one pair and rebuilds the head
graph every call; this module answers *batches* of thousands of flows by
sharing everything that is shareable:

* one :class:`~repro.cds.routing.HeadRouter` per backbone — the head
  adjacency built once, one Dijkstra tree per source head, one expanded
  walk per head pair;
* member->head **legs** resolved once per distinct (member, head) pair
  and reused across every flow that enters or leaves that cluster;
* the BFS rows behind canonical-path construction requested in
  :data:`~repro.net.oracle.BATCH_BITS`-source bit-packed sweeps
  (:meth:`DistanceOracle.rows`) instead of one Python BFS per pair —
  legs are resolved chunk-by-chunk immediately after their rows land so
  a bounded row cache can never thrash;
* shortest-path distances for the whole batch answered by one
  :meth:`DistanceOracle.pair_distances` call (grouped batched rows on
  the lazy backend, O(|label|) joins on the landmark backend).

The produced :class:`RoutedFlows` carries every walk plus per-flow hop
counts, shortest distances and the traversed head sequences — exactly
what the load accounting (:mod:`repro.traffic.load`) needs.

Under churn, a repaired backbone no longer forces a cold router:
:meth:`BatchRouter.inherit_from` carries the previous router's Dijkstra
trees, memoized head sequences/walks, link segments and resolved
member<->head legs across a single-node failure — the same
validity-checked contract :meth:`LazyDistanceOracle.inherit_from`
implements for rows and balls — so the traffic-driven lifetime loop
(:mod:`repro.traffic.lifetime`) pays for a repair only in proportion to
what the repair actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> traffic)
    from ..faults.delivery import DeliveryReport

from ..cds.routing import HeadRouter
from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError
from ..net.oracle import BATCH_BITS, DIST_DTYPE
from ..net.paths import PathOracle
from ..types import DistArray, FloatArray, NodeId, normalize_edge
from .workloads import Workload

__all__ = ["RoutedFlows", "BatchRouter"]


@dataclass(frozen=True)
class RoutedFlows:
    """The routed form of one workload batch.

    Attributes:
        workload: the routed workload (arrays parallel to the lists here).
        walks: per-flow node walks (source .. target, inclusive).
        hops: per-flow walk lengths in hops (DIST_DTYPE).
        shortest: per-flow shortest-path hop distances (DIST_DTYPE; empty
            when routed with ``with_shortest=False``).
        head_paths: per-flow traversed head sequence (empty tuple for
            intra-cluster flows) — the virtual-link utilization record.
        outcome: per-flow :class:`~repro.faults.delivery.FlowOutcome`
            values (int8) once a lossy delivery ran; None in the default
            binary world (every routed flow counts as delivered).
        attempts: per-flow transmission attempts (parallel to
            ``outcome``); None before a lossy delivery.
        valid: per-flow validity bits — False marks a stale/placeholder
            walk that must not be trusted (degraded mode routes only
            same-component flows and flags the rest); None when every
            walk is a real route on the current backbone.
    """

    workload: Workload
    walks: list[tuple[NodeId, ...]]
    hops: DistArray
    shortest: DistArray
    head_paths: list[tuple[NodeId, ...]]
    outcome: Optional[np.ndarray] = None
    attempts: Optional[np.ndarray] = None
    valid: Optional[np.ndarray] = None

    @property
    def num_flows(self) -> int:
        """Number of routed flows."""
        return len(self.walks)

    def with_delivery(self, report: "DeliveryReport") -> "RoutedFlows":
        """Copy of the batch annotated with a lossy delivery's outcomes."""
        if report.num_flows != self.num_flows:
            raise InvalidParameterError(
                f"delivery report covers {report.num_flows} flows, "
                f"batch has {self.num_flows}"
            )
        return replace(
            self, outcome=report.outcome, attempts=report.attempts
        )

    def delivered_fraction(self) -> float:
        """Demand-weighted fraction of offered packets delivered.

        1.0 in the binary world (no ``outcome`` recorded — routing
        succeeded, so everything counts as delivered); otherwise the
        lossy delivery's packet-weighted success rate.
        """
        demands = self.workload.demands
        offered = int(demands.sum())
        if self.outcome is None or offered == 0:
            return 1.0
        return float(demands[self.outcome == 0].sum()) / offered

    def stretches(self) -> FloatArray:
        """Per-flow stretch (walk hops / shortest hops), float64."""
        if self.shortest.size != self.hops.size:
            raise InvalidParameterError(
                "stretches need shortest distances; route with "
                "with_shortest=True"
            )
        return self.hops / np.maximum(self.shortest, 1)


class BatchRouter:
    """Routes workload batches over one backbone with shared caches.

    Args:
        result: the backbone to route over.
        oracle: optional shared canonical-path oracle (created if omitted).
    """

    def __init__(
        self, result: BackboneResult, oracle: PathOracle | None = None
    ) -> None:
        self._result = result
        self._graph = result.clustering.graph
        # Not `or`: an empty shared oracle (falsy via __len__) must still
        # be adopted, e.g. the mobility loop's freshly inherited one.
        self._oracle = oracle if oracle is not None else PathOracle(self._graph)
        self._router = HeadRouter(result)
        self._head_of = np.asarray(result.clustering.head_of, dtype=np.int64)

    @property
    def result(self) -> BackboneResult:
        """The backbone this router serves."""
        return self._result

    @property
    def router(self) -> HeadRouter:
        """The shared head-graph router (Dijkstra trees, head walks)."""
        return self._router

    @property
    def path_oracle(self) -> PathOracle:
        """The canonical-path oracle holding the resolved legs."""
        return self._oracle

    def inherit_from(
        self,
        old: "BatchRouter",
        removed: NodeId,
        changed_heads: frozenset[NodeId] = frozenset(),
    ) -> dict[str, int]:
        """Carry ``old``'s caches across the repair that removed ``removed``.

        Call on a freshly built router for the repaired backbone.  The
        head-graph state (Dijkstra trees, head sequences, expanded walks,
        link segments) inherits through
        :meth:`~repro.cds.routing.HeadRouter.inherit_from` — verified
        against the new backbone's links — and the resolved member<->head
        legs through :meth:`~repro.net.paths.PathOracle.inherit_from`
        (every cached canonical path avoiding ``removed`` stays exact).

        Returns the combined counter dict; ``head_graph_unchanged`` is 1
        when the whole head-routing layer survived (a full router rebuild
        avoided).
        """
        stats = self._router.inherit_from(old._router, removed, changed_heads)
        stats["legs"] = self._oracle.inherit_from(old._oracle, removed)
        return stats

    def inherit_edge_delta(
        self, old: "BatchRouter", touched: Iterable[NodeId]
    ) -> dict[str, int]:
        """Carry ``old``'s caches across a mobility edge delta.

        ``touched`` is the endpoint set of the snapshot's changed edges
        (union over composed deltas when snapshots were skipped).  The
        head-graph layer inherits through the per-tree certificates of
        :meth:`~repro.cds.routing.HeadRouter.inherit_from` (valid for
        any backbone change); resolved legs inherit through
        :meth:`~repro.net.paths.PathOracle.inherit_edge_delta` — unless
        this router's oracle is ``old``'s, or was already seeded by an
        earlier inheritance (the mobility loop inherits the shared path
        oracle *before* ``build_backbone`` so the virtual links benefit
        too), in which case the legs are left alone.
        """
        stats = self._router.inherit_from(old._router)
        if self._oracle is old._oracle or self._oracle.paths_inherited:
            stats["legs"] = 0
        else:
            stats["legs"] = self._oracle.inherit_edge_delta(
                old._oracle, touched
            )
        return stats

    def admit_member(
        self, result: BackboneResult, oracle: PathOracle
    ) -> None:
        """Rebind to a member-arrival backbone in place, keeping all caches.

        A member join leaves the CDS stage untouched: ``result`` is the
        served backbone with only ``clustering`` replaced, so the whole
        head-routing layer (Dijkstra trees, head sequences, expanded
        walks, link segments) stays exact verbatim via
        :meth:`~repro.cds.routing.HeadRouter.rebind` — no verification,
        no copying.  ``oracle`` is the grown graph's resolved-leg oracle
        (typically fresh: legs re-resolve canonically on demand, which
        costs one row sweep at the next batch instead of an O(cache)
        verification pass at *every* arrival — the difference between
        O(n) and O(n^2) total growth cost).

        Raises:
            InvalidParameterError: via :meth:`HeadRouter.rebind` when
                ``result`` does not share this router's head-graph
                objects (a changed head set must rebuild and inherit).
        """
        self._router.rebind(result)
        self._result = result
        self._graph = result.clustering.graph
        self._oracle = oracle
        self._head_of = np.asarray(result.clustering.head_of, dtype=np.int64)

    def inherit_node_add(self, old: "BatchRouter") -> dict[str, int]:
        """Carry ``old``'s caches across a node arrival.

        The head-graph layer inherits through the structural per-tree
        certificates of :meth:`~repro.cds.routing.HeadRouter.inherit_from`
        — a member join reuses the virtual graph and selected links
        unchanged (the same-object fast path carries everything), while a
        declared arrival rebuilds the CDS stage and inherits whatever the
        link comparison certifies.  Resolved legs inherit through
        :meth:`~repro.net.paths.PathOracle.inherit_node_add` (paths whose
        BFS levels provably survived the arrival stay canonical), unless
        the oracle is shared or was already seeded — the same discipline
        as :meth:`inherit_edge_delta`.
        """
        stats = self._router.inherit_from(old._router)
        if self._oracle is old._oracle or self._oracle.paths_inherited:
            stats["legs"] = 0
        else:
            stats["legs"] = self._oracle.inherit_node_add(old._oracle)
        return stats

    def route(self, source: NodeId, target: NodeId) -> tuple[NodeId, ...]:
        """One flow's walk, sharing this router's caches."""
        return self._router.walk(self._oracle, source, target)

    def _resolve_legs(
        self, pairs: set[tuple[int, int]]
    ) -> dict[tuple[int, int], tuple[NodeId, ...]]:
        """Canonical paths for distinct unordered pairs, rows batched.

        Pairs are grouped by their smaller endpoint (the BFS root of the
        canonical-path construction) and resolved in
        :data:`~repro.net.oracle.BATCH_BITS`-root chunks: one bit-packed
        sweep warms the chunk's rows, then every leg of the chunk walks
        its (cache-hot) row.  Resolved legs are pinned in a local dict,
        so an over-budget row/path cache can evict freely without forcing
        recomputation.
        """
        by_root: dict[int, list[tuple[int, int]]] = {}
        for pair in pairs:
            by_root.setdefault(pair[0], []).append(pair)
        roots = sorted(by_root)
        legs: dict[tuple[int, int], tuple[NodeId, ...]] = {}
        oracle = self._graph.oracle
        for start in range(0, len(roots), BATCH_BITS):
            chunk = roots[start : start + BATCH_BITS]
            oracle.rows(chunk)  # one batched sweep warms the row cache
            for root in chunk:
                for pair in by_root[root]:
                    legs[pair] = self._oracle.path(pair[0], pair[1])
        return legs

    def route_flows(
        self, workload: Workload, *, with_shortest: bool = True
    ) -> RoutedFlows:
        """Route every flow of ``workload``; returns the full batch.

        Args:
            workload: the flow batch (endpoints must be graph nodes).
            with_shortest: also resolve each flow's shortest-path
                distance (one bulk ``pair_distances`` query) so stretch
                is measurable; skip for pure load studies.
        """
        n = self._graph.n
        if workload.n != n:
            raise InvalidParameterError(
                f"workload addresses {workload.n} nodes, graph has {n}"
            )
        src = workload.sources
        dst = workload.targets
        hs = self._head_of[src]
        ht = self._head_of[dst]
        intra = hs == ht

        # Distinct member<->head legs (and intra-cluster pairs), unordered.
        pairs: set[tuple[int, int]] = set()
        for s, t, a, b, same in zip(
            src.tolist(), dst.tolist(), hs.tolist(), ht.tolist(), intra.tolist()
        ):
            if same:
                pairs.add(normalize_edge(s, t))
            else:
                if s != a:
                    pairs.add(normalize_edge(s, a))
                if t != b:
                    pairs.add(normalize_edge(b, t))
        legs = self._resolve_legs(pairs)

        def leg(u: int, v: int) -> tuple[NodeId, ...]:
            if u == v:
                return (u,)
            stored = legs[normalize_edge(u, v)]
            return stored if stored[0] == u else tuple(reversed(stored))

        router = self._router
        walks: list[tuple[NodeId, ...]] = []
        head_paths: list[tuple[NodeId, ...]] = []
        for s, t, a, b, same in zip(
            src.tolist(), dst.tolist(), hs.tolist(), ht.tolist(), intra.tolist()
        ):
            if same:
                walks.append(leg(s, t))
                head_paths.append(())
                continue
            walk = list(leg(s, a))
            walk.extend(router.head_walk(a, b)[1:])
            walk.extend(leg(b, t)[1:])
            walks.append(tuple(walk))
            head_paths.append(router.head_sequence(a, b))

        hops = np.fromiter(
            (len(w) - 1 for w in walks), dtype=DIST_DTYPE, count=len(walks)
        )
        if with_shortest:
            norm = [
                normalize_edge(u, v) for u, v in zip(src.tolist(), dst.tolist())
            ]
            shortest = self._graph.oracle.pair_distances(norm)
        else:
            shortest = np.zeros(0, dtype=DIST_DTYPE)
        return RoutedFlows(
            workload=workload,
            walks=walks,
            hops=hops,
            shortest=shortest,
            head_paths=head_paths,
        )
