"""Vectorized batch routing of flow workloads over a backbone.

:func:`repro.cds.routing.route` answers one pair and rebuilds the head
graph every call; this module answers *batches* of thousands of flows by
sharing everything that is shareable:

* one :class:`~repro.cds.routing.HeadRouter` per backbone — the head
  adjacency built once, one Dijkstra tree per source head, one expanded
  walk per head pair;
* member->head **legs** resolved once per distinct (member, head) pair
  and reused across every flow that enters or leaves that cluster;
* the BFS rows behind canonical-path construction requested in
  :data:`~repro.net.oracle.BATCH_BITS`-source bit-packed sweeps
  (:meth:`DistanceOracle.rows`) instead of one Python BFS per pair —
  legs are resolved chunk-by-chunk immediately after their rows land so
  a bounded row cache can never thrash;
* shortest-path distances for the whole batch answered by one
  :meth:`DistanceOracle.pair_distances` call (grouped batched rows on
  the lazy backend, O(|label|) joins on the landmark backend).

The produced :class:`RoutedFlows` carries every walk plus per-flow hop
counts, shortest distances and the traversed head sequences — exactly
what the load accounting (:mod:`repro.traffic.load`) needs.

Under churn, a repaired backbone no longer forces a cold router:
:meth:`BatchRouter.inherit_from` carries the previous router's Dijkstra
trees, memoized head sequences/walks, link segments and resolved
member<->head legs across a single-node failure — the same
validity-checked contract :meth:`LazyDistanceOracle.inherit_from`
implements for rows and balls — so the traffic-driven lifetime loop
(:mod:`repro.traffic.lifetime`) pays for a repair only in proportion to
what the repair actually changed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> traffic)
    from ..faults.delivery import DeliveryReport

from ..cds.routing import HeadRouter
from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError
from ..net.oracle import BATCH_BITS, DIST_DTYPE
from ..net.paths import PathOracle
from ..obs import publish_counters
from ..types import DistArray, FloatArray, NodeId, normalize_edge
from .workloads import Workload

__all__ = ["RoutedFlows", "BatchRouter"]


@dataclass(frozen=True)
class RoutedFlows:
    """The routed form of one workload batch.

    Attributes:
        workload: the routed workload (arrays parallel to the lists here).
        walks: per-flow node walks (source .. target, inclusive).
        hops: per-flow walk lengths in hops (DIST_DTYPE).
        shortest: per-flow shortest-path hop distances (DIST_DTYPE; empty
            when routed with ``with_shortest=False``).
        head_paths: per-flow traversed head sequence (empty tuple for
            intra-cluster flows) — the virtual-link utilization record.
        outcome: per-flow :class:`~repro.faults.delivery.FlowOutcome`
            values (int8) once a lossy delivery ran; None in the default
            binary world (every routed flow counts as delivered).
        attempts: per-flow transmission attempts (parallel to
            ``outcome``); None before a lossy delivery.
        valid: per-flow validity bits — False marks a stale/placeholder
            walk that must not be trusted (degraded mode routes only
            same-component flows and flags the rest); None when every
            walk is a real route on the current backbone.
    """

    workload: Workload
    walks: list[tuple[NodeId, ...]]
    hops: DistArray
    shortest: DistArray
    head_paths: list[tuple[NodeId, ...]]
    outcome: Optional[np.ndarray] = None
    attempts: Optional[np.ndarray] = None
    valid: Optional[np.ndarray] = None

    @property
    def num_flows(self) -> int:
        """Number of routed flows."""
        return len(self.walks)

    @property
    def num_valid(self) -> int:
        """Flows whose walks are real routes (all of them when ``valid`` is None)."""
        if self.valid is None:
            return self.num_flows
        return int(np.count_nonzero(np.asarray(self.valid, dtype=bool)))

    def with_delivery(self, report: "DeliveryReport") -> "RoutedFlows":
        """Copy of the batch annotated with a lossy delivery's outcomes."""
        if report.num_flows != self.num_flows:
            raise InvalidParameterError(
                f"delivery report covers {report.num_flows} flows, "
                f"batch has {self.num_flows}"
            )
        return replace(
            self, outcome=report.outcome, attempts=report.attempts
        )

    def delivered_fraction(self) -> float:
        """Demand-weighted fraction of offered packets delivered.

        Flows flagged invalid (degraded-mode placeholders — no viable
        route) always count as *undelivered*: a degraded batch with no
        lossy delivery reports the routable share, never 1.0.  On top of
        that, the binary world (no ``outcome`` recorded) delivers every
        valid flow; the lossy world delivers what the delivery engine
        says it delivered — masked by validity, so a placeholder walk
        trivially surviving its zero hops still does not count.
        """
        demands = self.workload.demands
        offered = int(demands.sum())
        if offered == 0:
            return 1.0
        if self.outcome is None:
            delivered = np.ones(self.num_flows, dtype=bool)
        else:
            delivered = self.outcome == 0
        if self.valid is not None:
            delivered = delivered & np.asarray(self.valid, dtype=bool)
        return float(demands[delivered].sum()) / offered

    def stretches(self) -> FloatArray:
        """Per-valid-flow stretch (walk hops / shortest hops), float64.

        Invalid flows (degraded-mode placeholder walks, whose hop count
        and shortest distance are both meaningless) are excluded, so the
        returned array has ``num_valid`` entries.
        """
        if self.shortest.size != self.hops.size:
            raise InvalidParameterError(
                "stretches need shortest distances; route with "
                "with_shortest=True"
            )
        ratios = self.hops / np.maximum(self.shortest, 1)
        if self.valid is not None:
            return ratios[np.asarray(self.valid, dtype=bool)]
        return ratios


class BatchRouter:
    """Routes workload batches over one backbone with shared caches.

    Args:
        result: the backbone to route over.
        oracle: optional shared canonical-path oracle (created if omitted).
    """

    def __init__(
        self, result: BackboneResult, oracle: PathOracle | None = None
    ) -> None:
        self._result = result
        self._graph = result.clustering.graph
        # Not `or`: an empty shared oracle (falsy via __len__) must still
        # be adopted, e.g. the mobility loop's freshly inherited one.
        self._oracle = oracle if oracle is not None else PathOracle(self._graph)
        self._router = HeadRouter(result)
        self._head_of = np.asarray(result.clustering.head_of, dtype=np.int64)
        #: Counters from the most recent ``balance=True`` routing pass
        #: (groups / candidates / moves / flows_rerouted); empty before one.
        self.last_balance: dict[str, int] = {}

    @property
    def result(self) -> BackboneResult:
        """The backbone this router serves."""
        return self._result

    @property
    def router(self) -> HeadRouter:
        """The shared head-graph router (Dijkstra trees, head walks)."""
        return self._router

    @property
    def path_oracle(self) -> PathOracle:
        """The canonical-path oracle holding the resolved legs."""
        return self._oracle

    def inherit_from(
        self,
        old: "BatchRouter",
        removed: NodeId,
        changed_heads: frozenset[NodeId] = frozenset(),
    ) -> dict[str, int]:
        """Carry ``old``'s caches across the repair that removed ``removed``.

        Call on a freshly built router for the repaired backbone.  The
        head-graph state (Dijkstra trees, head sequences, expanded walks,
        link segments) inherits through
        :meth:`~repro.cds.routing.HeadRouter.inherit_from` — verified
        against the new backbone's links — and the resolved member<->head
        legs through :meth:`~repro.net.paths.PathOracle.inherit_from`
        (every cached canonical path avoiding ``removed`` stays exact).

        Returns the combined counter dict; ``head_graph_unchanged`` is 1
        when the whole head-routing layer survived (a full router rebuild
        avoided).
        """
        stats = self._router.inherit_from(old._router, removed, changed_heads)
        stats["legs"] = self._oracle.inherit_from(old._oracle, removed)
        return stats

    def inherit_edge_delta(
        self, old: "BatchRouter", touched: Iterable[NodeId]
    ) -> dict[str, int]:
        """Carry ``old``'s caches across a mobility edge delta.

        ``touched`` is the endpoint set of the snapshot's changed edges
        (union over composed deltas when snapshots were skipped).  The
        head-graph layer inherits through the per-tree certificates of
        :meth:`~repro.cds.routing.HeadRouter.inherit_from` (valid for
        any backbone change); resolved legs inherit through
        :meth:`~repro.net.paths.PathOracle.inherit_edge_delta` — unless
        this router's oracle is ``old``'s, or was already seeded by an
        earlier inheritance (the mobility loop inherits the shared path
        oracle *before* ``build_backbone`` so the virtual links benefit
        too), in which case the legs are left alone.
        """
        stats = self._router.inherit_from(old._router)
        if self._oracle is old._oracle or self._oracle.paths_inherited:
            stats["legs"] = 0
        else:
            stats["legs"] = self._oracle.inherit_edge_delta(
                old._oracle, touched
            )
        return stats

    def admit_member(
        self, result: BackboneResult, oracle: PathOracle
    ) -> None:
        """Rebind to a member-arrival backbone in place, keeping all caches.

        A member join leaves the CDS stage untouched: ``result`` is the
        served backbone with only ``clustering`` replaced, so the whole
        head-routing layer (Dijkstra trees, head sequences, expanded
        walks, link segments) stays exact verbatim via
        :meth:`~repro.cds.routing.HeadRouter.rebind` — no verification,
        no copying.  ``oracle`` is the grown graph's resolved-leg oracle
        (typically fresh: legs re-resolve canonically on demand, which
        costs one row sweep at the next batch instead of an O(cache)
        verification pass at *every* arrival — the difference between
        O(n) and O(n^2) total growth cost).

        Raises:
            InvalidParameterError: via :meth:`HeadRouter.rebind` when
                ``result`` does not share this router's head-graph
                objects (a changed head set must rebuild and inherit).
        """
        self._router.rebind(result)
        self._result = result
        self._graph = result.clustering.graph
        self._oracle = oracle
        self._head_of = np.asarray(result.clustering.head_of, dtype=np.int64)

    def inherit_node_add(self, old: "BatchRouter") -> dict[str, int]:
        """Carry ``old``'s caches across a node arrival.

        The head-graph layer inherits through the structural per-tree
        certificates of :meth:`~repro.cds.routing.HeadRouter.inherit_from`
        — a member join reuses the virtual graph and selected links
        unchanged (the same-object fast path carries everything), while a
        declared arrival rebuilds the CDS stage and inherits whatever the
        link comparison certifies.  Resolved legs inherit through
        :meth:`~repro.net.paths.PathOracle.inherit_node_add` (paths whose
        BFS levels provably survived the arrival stay canonical), unless
        the oracle is shared or was already seeded — the same discipline
        as :meth:`inherit_edge_delta`.
        """
        stats = self._router.inherit_from(old._router)
        if self._oracle is old._oracle or self._oracle.paths_inherited:
            stats["legs"] = 0
        else:
            stats["legs"] = self._oracle.inherit_node_add(old._oracle)
        return stats

    def route(self, source: NodeId, target: NodeId) -> tuple[NodeId, ...]:
        """One flow's walk, sharing this router's caches."""
        return self._router.walk(self._oracle, source, target)

    def _resolve_legs(
        self, pairs: set[tuple[int, int]]
    ) -> dict[tuple[int, int], tuple[NodeId, ...]]:
        """Canonical paths for distinct unordered pairs, rows batched.

        Pairs are grouped by their smaller endpoint (the BFS root of the
        canonical-path construction) and resolved in
        :data:`~repro.net.oracle.BATCH_BITS`-root chunks: one bit-packed
        sweep warms the chunk's rows, then every leg of the chunk walks
        its (cache-hot) row.  Resolved legs are pinned in a local dict,
        so an over-budget row/path cache can evict freely without forcing
        recomputation.
        """
        by_root: dict[int, list[tuple[int, int]]] = {}
        for pair in pairs:
            by_root.setdefault(pair[0], []).append(pair)
        roots = sorted(by_root)
        legs: dict[tuple[int, int], tuple[NodeId, ...]] = {}
        oracle = self._graph.oracle
        for start in range(0, len(roots), BATCH_BITS):
            chunk = roots[start : start + BATCH_BITS]
            oracle.rows(chunk)  # one batched sweep warms the row cache
            for root in chunk:
                for pair in by_root[root]:
                    legs[pair] = self._oracle.path(pair[0], pair[1])
        return legs

    def route_flows(
        self,
        workload: Workload,
        *,
        with_shortest: bool = True,
        balance: bool = False,
        k_paths: int = 4,
        tie_variants: int = 3,
        stretch_bound: float = 1.5,
        max_moves: int | None = None,
        balance_seed: int = 7,
    ) -> RoutedFlows:
        """Route every flow of ``workload``; returns the full batch.

        Args:
            workload: the flow batch (endpoints must be graph nodes).
            with_shortest: also resolve each flow's shortest-path
                distance (one bulk ``pair_distances`` query) so stretch
                is measurable; skip for pure load studies.
            balance: spread inter-cluster flows across up to ``k_paths``
                candidate head walks per head pair (seeded equal-cost
                tie-break variants plus Yen k-shortest, weight-bounded by
                ``stretch_bound``) via iterative load-aware reroutes of
                the heaviest virtual links — see :meth:`_balance`.  Off
                by default: every flow takes the canonical walk.
            k_paths / tie_variants / stretch_bound / max_moves /
                balance_seed: balance-mode knobs; ignored otherwise.
        """
        n = self._graph.n
        if workload.n != n:
            raise InvalidParameterError(
                f"workload addresses {workload.n} nodes, graph has {n}"
            )
        src = workload.sources
        dst = workload.targets
        hs = self._head_of[src]
        ht = self._head_of[dst]
        intra = hs == ht

        # Distinct member<->head legs (and intra-cluster pairs), unordered.
        pairs: set[tuple[int, int]] = set()
        for s, t, a, b, same in zip(
            src.tolist(), dst.tolist(), hs.tolist(), ht.tolist(), intra.tolist()
        ):
            if same:
                pairs.add(normalize_edge(s, t))
            else:
                if s != a:
                    pairs.add(normalize_edge(s, a))
                if t != b:
                    pairs.add(normalize_edge(b, t))
        legs = self._resolve_legs(pairs)

        def leg(u: int, v: int) -> tuple[NodeId, ...]:
            if u == v:
                return (u,)
            stored = legs[normalize_edge(u, v)]
            return stored if stored[0] == u else tuple(reversed(stored))

        router = self._router
        seq_of: dict[int, tuple[NodeId, ...]] | None = None
        if balance:
            # The candidate-independent ("fixed") per-node load: member
            # legs and intra-cluster walks, charged exactly as the load
            # accounting will charge them (2·demand per appearance, the
            # walk's two endpoints at demand).  Seeding the optimizer
            # with it makes the sum-of-squares deltas track the *true*
            # node loads, so traffic flows toward genuinely cold CDS
            # nodes instead of nominally empty ones.
            fixed = np.zeros(n, dtype=np.float64)
            dems = workload.demands.astype(np.float64)
            for i, (s, t, a, b, same) in enumerate(
                zip(
                    src.tolist(),
                    dst.tolist(),
                    hs.tolist(),
                    ht.tolist(),
                    intra.tolist(),
                )
            ):
                d = dems[i]
                if same:
                    for u in leg(s, t):
                        fixed[u] += 2.0 * d
                else:
                    for u in leg(s, a)[:-1]:
                        fixed[u] += 2.0 * d
                    for u in leg(b, t)[1:]:
                        fixed[u] += 2.0 * d
                fixed[s] -= d
                fixed[t] -= d
            seq_of = self._balance(
                hs,
                ht,
                intra,
                workload.demands,
                fixed,
                k_paths=k_paths,
                tie_variants=tie_variants,
                stretch_bound=stretch_bound,
                max_moves=max_moves,
                seed=balance_seed,
            )
        walks: list[tuple[NodeId, ...]] = []
        head_paths: list[tuple[NodeId, ...]] = []
        for i, (s, t, a, b, same) in enumerate(
            zip(
                src.tolist(),
                dst.tolist(),
                hs.tolist(),
                ht.tolist(),
                intra.tolist(),
            )
        ):
            if same:
                walks.append(leg(s, t))
                head_paths.append(())
                continue
            if seq_of is None:
                seq = router.head_sequence(a, b)
                backbone = router.head_walk(a, b)
            else:
                seq = seq_of[i]
                backbone = router.walk_for_seq(seq)
            walk = list(leg(s, a))
            walk.extend(backbone[1:])
            walk.extend(leg(b, t)[1:])
            walks.append(tuple(walk))
            head_paths.append(seq)

        hops = np.fromiter(
            (len(w) - 1 for w in walks), dtype=DIST_DTYPE, count=len(walks)
        )
        if with_shortest:
            norm = [
                normalize_edge(u, v) for u, v in zip(src.tolist(), dst.tolist())
            ]
            shortest = self._graph.oracle.pair_distances(norm)
        else:
            shortest = np.zeros(0, dtype=DIST_DTYPE)
        return RoutedFlows(
            workload=workload,
            walks=walks,
            hops=hops,
            shortest=shortest,
            head_paths=head_paths,
        )

    #: Hottest links examined per balance iteration before declaring
    #: convergence — links colder than the top this-many never reroute.
    _BALANCE_SCAN_LINKS = 32

    def _balance(
        self,
        hs: np.ndarray,
        ht: np.ndarray,
        intra: np.ndarray,
        demands: np.ndarray,
        fixed: np.ndarray,
        *,
        k_paths: int,
        tie_variants: int,
        stretch_bound: float,
        max_moves: int | None,
        seed: int,
    ) -> dict[int, tuple[NodeId, ...]]:
        """Assign every inter-cluster flow a head sequence, load-aware.

        Flows are grouped by ordered head pair; each group gets up to
        ``k_paths`` candidate backbone walks — the canonical shortest
        sequence, seeded equal-cost tie-break variants (zero stretch
        cost, one shared Dijkstra tree per variant and source head), and
        Yen k-shortest detours (weight-capped at ``stretch_bound`` times
        the canonical weight) only when equal-cost diversity runs out.
        The objective throughout is the **sum of squared per-node loads**
        over the whole graph, seeded with the candidate-independent
        ``fixed`` loads: totals are (nearly) constant across assignments,
        so a smaller sum of squares is exactly a larger Jain fairness
        index over the loaded backbone.

        Three phases, all deterministic (sorted iteration everywhere; the
        only randomness is the seeded tie-break permutation):

        1. **greedy water-filling** — flows in descending demand order
           each take the candidate with the smallest incremental
           sum-of-squares (one gather + dot product per candidate);
        2. **refinement sweeps** — each flow is removed and re-placed
           against current loads (first-fit-decreasing style polish);
        3. **hot-link reroutes** — repeatedly take the most loaded
           virtual link and move the first crossing flow whose switch to
           a candidate avoiding that link strictly lowers the objective;
           bounded by ``max_moves`` (default 512) and monotone in the
           objective, so it cannot cycle.

        Returns a map from flow index to its chosen head sequence (every
        inter-cluster flow is present).
        """
        router = self._router
        n = self._graph.n
        out: dict[int, tuple[NodeId, ...]] = {}
        idx = np.flatnonzero(~intra)
        stats = {
            "groups": 0,
            "candidates": 0,
            "moves": 0,
            "flows_rerouted": 0,
        }
        if idx.size == 0:
            self.last_balance = stats
            return out
        codes = hs[idx].astype(np.int64) * np.int64(n) + ht[idx].astype(
            np.int64
        )
        uniq, inverse = np.unique(codes, return_inverse=True)
        pair_of = [(int(c // n), int(c % n)) for c in uniq.tolist()]
        group_of = dict(zip(idx.tolist(), inverse.tolist()))

        # Candidate records, shared across groups by sequence:
        # (unique walk nodes, appearance counts, normalized links,
        # sum of squared counts).
        rec_cache: dict[tuple[NodeId, ...], tuple] = {}

        def record(seq: tuple[NodeId, ...]) -> tuple:
            rec = rec_cache.get(seq)
            if rec is None:
                walk = np.asarray(router.walk_for_seq(seq), dtype=np.int64)
                un, cnt = np.unique(walk, return_counts=True)
                cnt = cnt.astype(np.float64)
                links = tuple(
                    sorted(
                        normalize_edge(x, y) for x, y in zip(seq, seq[1:])
                    )
                )
                rec = (un, cnt, links, float(cnt @ cnt))
                rec_cache[seq] = rec
            return rec

        cand_seqs: list[list[tuple[NodeId, ...]]] = []
        cand_recs: list[list[tuple]] = []
        for a, b in pair_of:
            seqs = [router.head_sequence(a, b)]
            for v in range(1, tie_variants + 1):
                if len(seqs) >= k_paths:
                    break
                alt = router.alt_sequence(a, b, seed + v)
                if alt not in seqs:
                    seqs.append(alt)
            want = k_paths
            if len(seqs) < min(3, k_paths):
                # Equal-cost diversity ran out: only strictly longer
                # detours can diversify, so pay for Yen — weight-capped,
                # which keeps every spur search local to the pair.
                bound = stretch_bound * max(router.seq_weight(seqs[0]), 1)
                for seq_k in router.k_shortest_sequences(
                    a, b, want, max_weight=bound
                ):
                    if len(seqs) >= k_paths:
                        break
                    if seq_k not in seqs:
                        seqs.append(seq_k)
            cand_seqs.append(seqs)
            cand_recs.append([record(s) for s in seqs])

        node_load = fixed.astype(np.float64, copy=True)
        link_load: dict[tuple[int, int], float] = {}

        def add(rec: tuple, d: float) -> None:
            node_load[rec[0]] += 2.0 * d * rec[1]
            for e in rec[2]:
                link_load[e] = link_load.get(e, 0.0) + d

        def remove(rec: tuple, d: float) -> None:
            node_load[rec[0]] -= 2.0 * d * rec[1]
            for e in rec[2]:
                link_load[e] -= d

        def best_candidate(g: int, d: float) -> int:
            # argmin over candidates of the incremental sum-of-squares
            # Σ (x + 2dc)² - x² = 4d·(x@c) + 4d²·(c@c); ties keep the
            # earliest candidate (the canonical walk is index 0).
            recs = cand_recs[g]
            best_ci = 0
            best_delta = float("inf")
            for ci, rec in enumerate(recs):
                delta = 4.0 * d * float(node_load[rec[0]] @ rec[1]) + (
                    4.0 * d * d * rec[3]
                )
                if delta < best_delta - 1e-9:
                    best_delta = delta
                    best_ci = ci
            return best_ci

        # Phase 1+2: greedy water-filling in descending demand order,
        # then remove-and-replace refinement sweeps in the same order.
        dems = demands.astype(np.float64)
        order = sorted(idx.tolist(), key=lambda f: (-dems[f], f))
        assign: dict[int, int] = {}
        for flow in order:
            g = group_of[flow]
            ci = best_candidate(g, dems[flow])
            assign[flow] = ci
            add(cand_recs[g][ci], dems[flow])
        for _sweep in range(2):
            changed = 0
            for flow in order:
                g = group_of[flow]
                d = dems[flow]
                remove(cand_recs[g][assign[flow]], d)
                ci = best_candidate(g, d)
                if ci != assign[flow]:
                    changed += 1
                    assign[flow] = ci
                add(cand_recs[g][ci], d)
            if changed == 0:
                break

        # Phase 3: reroutes of the heaviest links.  Lazy max-heap over
        # link loads; on the hottest link, move the first crossing flow
        # whose switch to a hot-link-avoiding candidate strictly lowers
        # the objective.
        flows_on: dict[tuple[int, int], list[int]] = {}
        for flow in order:
            g = group_of[flow]
            for e in cand_recs[g][assign[flow]][2]:
                flows_on.setdefault(e, []).append(flow)

        def find_move(e: tuple[int, int]) -> tuple[int, int] | None:
            for flow in flows_on.get(e, ()):
                g = group_of[flow]
                ci = assign[flow]
                if e not in cand_recs[g][ci][2]:
                    continue  # stale membership: flow moved off e already
                d = dems[flow]
                remove(cand_recs[g][ci], d)
                best_cj = -1
                best_delta = -1e-9
                x0 = 4.0 * d * float(
                    node_load[cand_recs[g][ci][0]] @ cand_recs[g][ci][1]
                ) + 4.0 * d * d * cand_recs[g][ci][3]
                for cj, rec in enumerate(cand_recs[g]):
                    if cj == ci or e in rec[2]:
                        continue
                    delta = (
                        4.0 * d * float(node_load[rec[0]] @ rec[1])
                        + 4.0 * d * d * rec[3]
                        - x0
                    )
                    if delta < best_delta:
                        best_delta = delta
                        best_cj = cj
                add(cand_recs[g][ci], d)
                if best_cj >= 0:
                    return flow, best_cj
            return None

        heap = [(-load, e) for e, load in sorted(link_load.items())]
        heapq.heapify(heap)
        budget = max_moves if max_moves is not None else 512
        moves = 0
        while moves < budget:
            popped: list[tuple[float, tuple[int, int]]] = []
            move = None
            while heap and len(popped) < self._BALANCE_SCAN_LINKS:
                neg, e = heapq.heappop(heap)
                cur = link_load.get(e, 0.0)
                if cur <= 0.0 or -neg != cur:
                    continue  # stale entry; the fresh one is still queued
                popped.append((neg, e))
                move = find_move(e)
                if move is not None:
                    break
            for item in popped:
                heapq.heappush(heap, item)
            if move is None:
                break
            flow, cj = move
            g = group_of[flow]
            d = dems[flow]
            old_rec = cand_recs[g][assign[flow]]
            remove(old_rec, d)
            assign[flow] = cj
            rec = cand_recs[g][cj]
            add(rec, d)
            for e2 in rec[2]:
                flows_on.setdefault(e2, []).append(flow)
            for e2 in old_rec[2] + rec[2]:
                heapq.heappush(heap, (-link_load[e2], e2))
            moves += 1

        rerouted = 0
        for flow in idx.tolist():
            ci = assign[flow]
            if ci > 0:
                rerouted += 1
            out[flow] = cand_seqs[group_of[flow]][ci]
        stats.update(
            groups=len(pair_of),
            candidates=sum(len(c) for c in cand_seqs),
            moves=moves,
            flows_rerouted=rerouted,
        )
        self.last_balance = stats
        publish_counters("traffic.balance", stats)
        return out
