"""End-to-end traffic experiment: generate, route, account, render.

This is the ``repro-khop traffic`` command's engine: build a paper-style
unit-disk instance, generate a named workload, route it in one batch over
the chosen backbone, account who carried it, and (optionally) run the
traffic-driven lifetime comparison of rotation vs static heads.  All
output is plain text for the headless benchmark environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cds.routing import RoutingReport, routing_report
from ..core.pipeline import BackboneResult, run_pipeline
from ..errors import InvalidParameterError
from ..net.energy import EnergyParams
from ..net.paths import PathOracle
from ..net.topology import random_topology
from ..obs import publish_oracle_stats, span
from .congestion import (
    CongestionModel,
    CongestionReport,
    congestion_report,
)
from .lifetime import LifetimeReport, compare_rotation_under_traffic
from .load import LoadReport, measure_load
from .router import BatchRouter
from .workloads import Workload, make_workload

__all__ = ["TrafficReport", "run_traffic", "render_traffic"]


@dataclass(frozen=True)
class TrafficReport:
    """Everything one traffic run measured.

    Attributes:
        backbone: the backbone that carried the flows.
        workload: the routed workload.
        load: batch load/congestion accounting.
        routing: sampled table-size/stretch report for context.
        lifetimes: rotation-vs-static lifetime reports (None unless the
            run asked for lifetime epochs).
        congestion: offered-vs-capacity summary (None unless the run set
            a radio budget).
        balance_stats: multipath optimizer counters (None unless the run
            balanced).
    """

    backbone: BackboneResult
    workload: Workload
    load: LoadReport
    routing: RoutingReport
    lifetimes: Optional[dict[str, LifetimeReport]]
    congestion: Optional[CongestionReport] = None
    balance_stats: Optional[dict[str, int]] = None


def run_traffic(
    *,
    n: int = 400,
    degree: float = 8.0,
    k: int = 2,
    algorithm: str = "AC-LMST",
    workload: str = "uniform",
    flows: int = 5000,
    seed: int = 7,
    lifetime_epochs: int = 0,
    energy_params: EnergyParams | None = None,
    backend: str | None = None,
    balance: bool = False,
    radio_budget: float | None = None,
) -> TrafficReport:
    """Build an instance, route a workload batch, account the load.

    Args:
        n / degree / seed: the §4 unit-disk instance parameters.
        k: cluster radius.
        algorithm: backbone pipeline.
        workload: workload family name (see
            :data:`~repro.traffic.workloads.WORKLOADS`).
        flows: approximate number of offered flows.
        lifetime_epochs: when > 0, also run the traffic-driven lifetime
            comparison (rotation vs static) for this many epochs.
        energy_params: energy constants for the lifetime comparison.
        backend: force the hop-distance backend (``"dense"``/``"lazy"``/
            ``"landmark"``/``"auto"``); None keeps the graph's policy.
            Batch routing is pair-query-heavy, so the CLI pins
            ``"landmark"`` — results are identical on every backend.
        balance: route with the load-adaptive multipath mode
            (``repro-khop traffic --balance``) instead of canonical
            single-path walks; the optimizer's counters land in
            ``balance_stats``.
        radio_budget: when set, derive per-link capacities from the
            backbone (:class:`~repro.traffic.congestion.CongestionModel`)
            and report offered load against them; also threads into the
            lifetime comparison so congested heads drain faster.

    The whole run is traced when the observability layer is enabled
    (``repro-khop traffic --trace``): a root ``traffic`` span over
    nested ``topology`` / ``cluster`` / ``cds`` / ``labels`` /
    ``router`` / ``epochs`` stages, plus the oracle/path-cache stats
    published into the metrics registry.
    """
    if flows < 1:
        raise InvalidParameterError(f"flows must be >= 1, got {flows}")
    with span(
        "traffic",
        n=n,
        k=k,
        algorithm=algorithm,
        workload=workload,
        flows=flows,
        seed=seed,
    ):
        with span("topology", n=n):
            topo = random_topology(n, degree=degree, seed=seed)
            graph = topo.graph
            if backend is not None:
                graph.use_distance_backend(backend)
        backbone = run_pipeline(graph, k, algorithm)
        wl = make_workload(workload, graph.n, flows, seed=seed)
        with span("router", flows=wl.num_flows, balance=balance):
            batch = BatchRouter(backbone)
            routed = batch.route_flows(wl, with_shortest=True, balance=balance)
        congestion = None
        if radio_budget is not None:
            congestion = congestion_report(
                CongestionModel.from_backbone(
                    backbone, radio_budget=radio_budget
                ),
                routed,
            )
        with span("epochs"):
            # The offered batch is one traffic epoch; the lifetime loop
            # (when requested) adds one child span per drained epoch.
            with span("epoch", step=0):
                load = measure_load(backbone, routed)
                # The stretch/table sample shares the batch run's warmed
                # head router.
                routing = routing_report(
                    backbone,
                    PathOracle(graph),
                    samples=min(50, flows),
                    seed=seed,
                    router=batch.router,
                )
            lifetimes = None
            if lifetime_epochs > 0:
                lifetimes = compare_rotation_under_traffic(
                    graph,
                    k,
                    wl,
                    epochs=lifetime_epochs,
                    algorithm=algorithm,
                    params=energy_params,
                    radio_budget=radio_budget,
                    balance=balance,
                )
        publish_oracle_stats(graph.oracle.stats())
        publish_oracle_stats(batch.path_oracle.stats(), prefix="paths")
    return TrafficReport(
        backbone=backbone,
        workload=wl,
        load=load,
        routing=routing,
        lifetimes=lifetimes,
        congestion=congestion,
        balance_stats=dict(batch.last_balance) if balance else None,
    )


def render_traffic(report: TrafficReport) -> str:
    """Human-readable summary of one traffic run."""
    b = report.backbone
    wl = report.workload
    ld = report.load
    g = b.clustering.graph
    lines = [
        f"instance: n={g.n}, m={g.m}, k={b.clustering.k}, "
        f"algorithm={b.algorithm}",
        f"backbone: {len(b.heads)} heads + {b.num_gateways} gateways "
        f"= CDS {b.cds_size}",
        f"workload: {wl.name}, {wl.num_flows} flows, "
        f"{wl.total_packets} packets",
        "",
        "traffic:",
        f"  packet-hops        {ld.packet_hops}",
        f"  stretch            mean {ld.mean_stretch:.3f}  "
        f"p95 {ld.p95_stretch:.3f}  max {ld.max_stretch:.3f}",
        f"  node load          max {ld.max_node_load:.0f}  "
        f"p99 {ld.p99_node_load:.0f}  p95 {ld.p95_node_load:.0f}  "
        f"p50 {ld.p50_node_load:.0f}",
        f"  CDS share of tx    {ld.cds_share:.1%}",
        f"  backbone fairness  {ld.backbone_fairness:.3f} (Jain)",
        f"  busiest links      "
        + ", ".join(
            f"{a}-{b_} ({c})"
            for (a, b_), c in sorted(
                ld.link_util.items(), key=lambda kv: -kv[1]
            )[:3]
        ),
        "",
        "routing tables (sampled):",
        f"  cluster tables     mean {report.routing.mean_table:.1f}, "
        f"max {report.routing.max_table} "
        f"(flat baseline {report.routing.flat_table})",
    ]
    if report.balance_stats is not None:
        bs = report.balance_stats
        lines.insert(
            lines.index("routing tables (sampled):") - 1,
            f"  multipath balance  {bs.get('flows_rerouted', 0)} flows "
            f"rerouted across {bs.get('candidates', 0)} candidate walks "
            f"({bs.get('groups', 0)} head pairs, "
            f"{bs.get('moves', 0)} hot-link moves)",
        )
    if report.congestion is not None:
        cg = report.congestion
        lines.append("")
        lines.append("congestion (offered vs capacity):")
        lines.append(
            f"  links              {cg.congested_links} of "
            f"{cg.loaded_links} loaded links over capacity "
            f"({cg.links} total)"
        )
        lines.append(
            f"  fluid drops        {cg.dropped_packets:.0f} of "
            f"{cg.offered_packets:.0f} link crossings "
            f"({cg.drop_fraction:.1%}); worst utilization "
            f"{cg.worst_utilization:.2f}x"
        )
    if report.lifetimes is not None:
        lines.append("")
        lines.append("traffic-driven lifetime (rotation vs static):")
        for scheme in ("energy", "static"):
            lr = report.lifetimes[scheme]
            part = (
                f"partitioned at epoch {lr.first_partition_epoch}"
                if lr.first_partition_epoch is not None
                else f"survived all {len(lr.epochs)} epochs"
            )
            lines.append(
                f"  {scheme:7s}: lifetime {lr.lifetime:3d} epochs, "
                f"{lr.total_deaths} deaths, "
                f"{lr.distinct_heads} distinct heads, {part}"
            )
    return "\n".join(lines)


def main(
    *,
    n: int = 400,
    degree: float = 8.0,
    k: int = 2,
    algorithm: str = "AC-LMST",
    workload: str = "uniform",
    flows: int = 5000,
    seed: int = 7,
    lifetime_epochs: int = 0,
    backend: str | None = None,
    balance: bool = False,
    radio_budget: float | None = None,
) -> None:
    """CLI driver: run one traffic experiment and print the summary."""
    report = run_traffic(
        n=n,
        degree=degree,
        k=k,
        algorithm=algorithm,
        workload=workload,
        flows=flows,
        seed=seed,
        lifetime_epochs=lifetime_epochs,
        backend=backend,
        balance=balance,
        radio_budget=radio_budget,
    )
    print(render_traffic(report))
