"""Traffic-driven lifetime: load drains energy, deaths drive §3.3 repair.

The rotation simulation (:mod:`repro.maintenance.rotation`) charges only
*idle* role drain; churn (:mod:`repro.maintenance.churn`) kills *random*
nodes.  This module closes the loop the paper actually argues about: the
measured forwarding load of a real workload is charged against
:class:`~repro.net.energy.EnergyModel`, so clusterheads and gateways —
who carry the transit traffic — drain first; nodes whose battery empties
become failures fed through :func:`~repro.maintenance.repair.repair`; the
surviving backbone carries the replayed flows of the next epoch.

Each epoch of :func:`simulate_traffic_lifetime`:

1. (``scheme="energy"`` only) re-elect clusterheads by residual energy —
   the paper's §3.3 rotation — and rebuild the backbone;
2. route the workload's surviving flows over the backbone
   (:class:`~repro.traffic.router.BatchRouter`) and account the load;
3. charge transmit/receive costs per node from the load vectors, plus
   role-dependent idle drain;
4. feed every newly dead node through the repair ladder, in order; stop
   at the first repair that reports a network partition.

Comparing ``scheme="energy"`` against ``scheme="static"`` (initial heads
kept until repairs force changes) under the *same* workload measures how
much rotation extends time-to-first-partition — the quantitative form of
"rotate the role of clusterhead to prolong the average lifespan".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> traffic)
    from ..faults.delivery import LossModel

from ..core.clustering import Clustering, khop_cluster
from ..core.pipeline import BackboneResult, build_backbone
from ..core.priorities import ResidualEnergy
from ..errors import InvalidParameterError
from ..maintenance.repair import repair
from ..net.energy import EnergyModel, EnergyParams
from ..net.graph import Graph
from ..obs import publish_counters, span
from .congestion import CongestionModel
from .load import lossy_load, measure_load
from .router import BatchRouter
from .workloads import Workload

__all__ = [
    "LifetimeEpoch",
    "LifetimeReport",
    "simulate_traffic_lifetime",
    "compare_rotation_under_traffic",
]


@dataclass(frozen=True)
class LifetimeEpoch:
    """One epoch's snapshot of the traffic-driven lifetime loop.

    Attributes:
        epoch: epoch index.
        heads: clusterheads that served this epoch.
        cds_size: backbone size that carried the epoch's traffic.
        flows_routed: surviving flows actually routed.
        packet_hops: demand-weighted transmissions this epoch.
        max_node_load: heaviest single node's message load.
        min_residual / mean_residual: residual energy over *alive* nodes
            after the epoch's drain.
        deaths: nodes that died at the end of this epoch, in repair order.
        delivered: demand-weighted fraction of offered packets delivered
            this epoch (1.0 in the lossless world).
    """

    epoch: int
    heads: tuple[int, ...]
    cds_size: int
    flows_routed: int
    packet_hops: int
    max_node_load: float
    min_residual: float
    mean_residual: float
    deaths: tuple[int, ...]
    delivered: float = 1.0


@dataclass
class LifetimeReport:
    """Aggregate outcome of one traffic-driven lifetime simulation.

    Attributes:
        scheme: ``"energy"`` (rotation) or ``"static"``.
        epochs: per-epoch snapshots, in order.
        deaths: ``(epoch, node, role)`` for every death, in repair order.
        repair_actions: histogram of repair-ladder actions taken.
        head_service: node -> epochs served as clusterhead.
        first_partition_epoch: epoch whose deaths partitioned the
            network (simulation stops there), or None.
        router_rebuilds_avoided: repairs after which the whole
            head-routing layer (Dijkstra trees, head walks) survived into
            the next epoch via :meth:`BatchRouter.inherit_from` instead
            of being rebuilt from scratch.
        router_legs_inherited: resolved member<->head canonical paths
            carried across repairs.
    """

    scheme: str
    epochs: list[LifetimeEpoch] = field(default_factory=list)
    deaths: list[tuple[int, int, str]] = field(default_factory=list)
    repair_actions: Counter = field(default_factory=Counter)
    head_service: Counter = field(default_factory=Counter)
    first_partition_epoch: Optional[int] = None
    router_rebuilds_avoided: int = 0
    router_legs_inherited: int = 0

    @property
    def lifetime(self) -> int:
        """Epochs fully survived before the first partition."""
        if self.first_partition_epoch is not None:
            return self.first_partition_epoch
        return len(self.epochs)

    @property
    def distinct_heads(self) -> int:
        """How many different nodes ever served as clusterhead."""
        return len(self.head_service)

    @property
    def total_deaths(self) -> int:
        """Nodes that ran out of energy during the simulation."""
        return len(self.deaths)

    @property
    def mean_delivered(self) -> float:
        """Mean per-epoch delivered fraction (1.0 when lossless)."""
        if not self.epochs:
            return 1.0
        return float(
            sum(e.delivered for e in self.epochs) / len(self.epochs)
        )


def _strip_dead(clustering: Clustering, dead: set[int]) -> Clustering:
    """Drop dead (isolated, self-elected) nodes from a fresh clustering."""
    head_of = list(clustering.head_of)
    for u in dead:
        head_of[u] = u
    return Clustering(
        graph=clustering.graph,
        k=clustering.k,
        head_of=tuple(head_of),
        heads=tuple(h for h in clustering.heads if h not in dead),
        rounds=clustering.rounds,
        priority_name=clustering.priority_name,
        membership_name=clustering.membership_name,
    )


def simulate_traffic_lifetime(
    graph: Graph,
    k: int,
    workload: Workload,
    *,
    epochs: int,
    scheme: str = "energy",
    algorithm: str = "AC-LMST",
    params: EnergyParams | None = None,
    idle_rounds_per_epoch: int = 1,
    loss: Optional["LossModel"] = None,
    max_attempts: int = 3,
    backoff_base: int = 2,
    delivery_seed: int = 0,
    radio_budget: Optional[float] = None,
    balance: bool = False,
) -> LifetimeReport:
    """Replay ``workload`` for up to ``epochs`` epochs of drain + repair.

    Args:
        graph: connected network.
        k: cluster radius.
        workload: the flow batch replayed every epoch (flows whose
            endpoints died are dropped from later epochs).
        epochs: maximum number of epochs to simulate.
        scheme: ``"energy"`` re-elects heads by residual energy every
            epoch (rotation); ``"static"`` keeps the initial heads,
            changing them only when the repair ladder forces it.
        algorithm: backbone pipeline to maintain.
        params: energy constants (default :class:`EnergyParams`).
        idle_rounds_per_epoch: role-dependent idle rounds charged per
            epoch on top of the traffic load.
        loss: optional per-link loss model
            (:class:`~repro.faults.delivery.LossModel`).  When set, every
            epoch's flows pass through the lossy delivery engine
            (:func:`~repro.faults.delivery.deliver`): failed hops
            truncate the walk, retries re-charge the surviving prefix,
            and the energy ledger is charged with the *actual* per-node
            transmit/receive counts — so lossy regions drain first.
        max_attempts / backoff_base: retry budget and exponential
            backoff base forwarded to the delivery engine.
        delivery_seed: base seed for the per-epoch loss draws (epoch
            ``e`` draws from ``delivery_seed + e``).
        radio_budget: optional per-radio packet budget; when set, each
            epoch's backbone gets a
            :class:`~repro.traffic.congestion.CongestionModel` and the
            batch's own offered load composes fluid-queue drops into the
            delivery — congested heads retransmit and therefore *drain
            faster* (a lossy delivery runs even when ``loss`` is None).
        balance: route each epoch's flows with the load-adaptive
            multipath mode
            (:meth:`~repro.traffic.router.BatchRouter.route_flows`
            ``balance=True``) instead of canonical single-path walks.
    """
    if scheme not in ("energy", "static"):
        raise InvalidParameterError(f"unknown lifetime scheme {scheme!r}")
    if epochs < 1:
        raise InvalidParameterError("epochs must be >= 1")
    if workload.n != graph.n:
        raise InvalidParameterError(
            f"workload addresses {workload.n} nodes, graph has {graph.n}"
        )
    if idle_rounds_per_epoch < 0:
        raise InvalidParameterError("idle_rounds_per_epoch must be >= 0")
    if loss is not None and loss.n != graph.n:
        raise InvalidParameterError(
            f"loss model covers {loss.n} nodes, graph has {graph.n}"
        )

    model = EnergyModel(graph.n, params)
    alive = np.ones(graph.n, dtype=bool)
    dead: set[int] = set()
    current = graph
    backbone: Optional[BackboneResult] = None
    router: Optional[BatchRouter] = None
    report = LifetimeReport(scheme=scheme)

    for epoch in range(epochs):
        with span("epoch", scheme=scheme, epoch=epoch):
            if backbone is None or scheme == "energy":
                priority = (
                    ResidualEnergy(model.residuals()) if scheme == "energy" else None
                )
                clustering = khop_cluster(
                    current, k, priority=priority, require_connected=False
                )
                backbone = build_backbone(_strip_dead(clustering, dead), algorithm)
                router = BatchRouter(backbone)
            elif router is None:  # pragma: no cover - defensive
                router = BatchRouter(backbone)
            # Snapshot before the deaths loop: repairs may change the heads,
            # but *these* are the nodes that carried this epoch's traffic.
            epoch_heads = backbone.heads
            epoch_cds_size = backbone.cds_size
            for h in epoch_heads:
                report.head_service[h] += 1

            routed = router.route_flows(
                workload.restrict(alive), with_shortest=False, balance=balance
            )
            delivered = 1.0
            if loss is not None or radio_budget is not None:
                # Runtime import: faults.delivery imports traffic.router at
                # module level, so traffic must only pull it lazily.
                from ..faults.delivery import LossModel, deliver

                congestion = (
                    CongestionModel.from_backbone(
                        backbone, radio_budget=radio_budget
                    )
                    if radio_budget is not None
                    else None
                )
                delivery = deliver(
                    routed,
                    loss
                    if loss is not None
                    else LossModel.uniform(graph.n, 0.0),
                    seed=delivery_seed + epoch,
                    max_attempts=max_attempts,
                    backoff_base=backoff_base,
                    congestion=congestion,
                )
                routed = routed.with_delivery(delivery)
                load = lossy_load(backbone, routed, delivery)
                delivered = routed.delivered_fraction()
            else:
                load = measure_load(backbone, routed)
            model.charge_load(load.tx, load.rx)
            for _ in range(idle_rounds_per_epoch):
                model.charge_idle_round(set(backbone.cds))

            deaths = [
                u
                for u in np.flatnonzero(alive).tolist()
                if not model.is_alive(u)
            ]
            partitioned = False
            for node in deaths:
                alive[node] = False
                dead.add(node)
                outcome = repair(backbone, node)
                report.deaths.append((epoch, node, outcome.role))
                report.repair_actions[outcome.action] += 1
                if outcome.partitioned:
                    partitioned = True
                    break
                old_router = router
                backbone = outcome.backbone
                current = backbone.clustering.graph
                if scheme == "static":
                    # The repaired backbone serves the next epoch's flows:
                    # carry the routing layer across instead of rebuilding.
                    # Under rotation the next epoch re-elects heads anyway,
                    # so inheriting would be wasted work.
                    router = BatchRouter(backbone)
                    # A spliced repair (member fast path or gateway
                    # splice) is routing-indistinguishable from a
                    # rebuild — link set and weights are identical —
                    # so the conservative changed-heads mask would only
                    # discard state the structural comparison certifies.
                    changed = (
                        frozenset() if outcome.spliced
                        else outcome.scope_heads
                    )
                    inherited = router.inherit_from(old_router, node, changed)
                    if inherited["head_graph_unchanged"]:
                        report.router_rebuilds_avoided += 1
                    report.router_legs_inherited += inherited["legs"]
                    publish_counters("router.inherit", inherited)

            residuals = model.residuals()
            alive_res = residuals[alive] if alive.any() else residuals
            report.epochs.append(
                LifetimeEpoch(
                    epoch=epoch,
                    heads=epoch_heads,
                    cds_size=epoch_cds_size,
                    flows_routed=routed.num_flows,
                    packet_hops=load.packet_hops,
                    max_node_load=load.max_node_load,
                    min_residual=float(alive_res.min()) if alive_res.size else 0.0,
                    mean_residual=float(alive_res.mean()) if alive_res.size else 0.0,
                    deaths=tuple(deaths),
                    delivered=delivered,
                )
            )
            if partitioned:
                report.first_partition_epoch = epoch
                break
    return report


def compare_rotation_under_traffic(
    graph: Graph,
    k: int,
    workload: Workload,
    *,
    epochs: int,
    algorithm: str = "AC-LMST",
    params: EnergyParams | None = None,
    idle_rounds_per_epoch: int = 1,
    loss: Optional["LossModel"] = None,
    radio_budget: Optional[float] = None,
    balance: bool = False,
) -> dict[str, LifetimeReport]:
    """Run both schemes on identical fresh energy ledgers and workloads.

    Returns ``{"energy": ..., "static": ...}`` — the rotation-vs-static
    lifetime comparison the acceptance scenario asserts on.  A ``loss``
    model (and a ``radio_budget`` congestion regime) applies identically
    to both schemes (same per-epoch seeds).
    """
    return {
        scheme: simulate_traffic_lifetime(
            graph,
            k,
            workload,
            epochs=epochs,
            scheme=scheme,
            algorithm=algorithm,
            params=params,
            idle_rounds_per_epoch=idle_rounds_per_epoch,
            loss=loss,
            radio_budget=radio_budget,
            balance=balance,
        )
        for scheme in ("energy", "static")
    }
