"""Seeded traffic workload generators.

The ROADMAP's north star is "heavy traffic from millions of users"; this
module turns that into concrete, reproducible flow batches.  A
:class:`Workload` is a struct-of-arrays — parallel ``sources`` /
``targets`` / ``demands`` vectors — so generating, filtering and
accounting for 10^4+ concurrent flows stays vectorized end to end; the
batch router (:mod:`repro.traffic.router`) consumes it directly.

Four generator families cover the classic ad hoc traffic shapes:

* :func:`uniform_pairs` — independent random source/destination pairs,
  the stretch-sampling workload generalized to bulk;
* :func:`cbr_flows` — few persistent connections, many packets each
  (constant-bit-rate sessions);
* :func:`hotspot` — convergecast onto a handful of sink nodes (data
  collection, the worst case for backbone congestion);
* :func:`gossip` — every node talks to a few random peers (membership /
  state-sync chatter).

All generators are deterministic in ``seed``; :data:`WORKLOADS` maps the
CLI names onto them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "Workload",
    "uniform_pairs",
    "cbr_flows",
    "hotspot",
    "gossip",
    "WORKLOADS",
    "make_workload",
]


@dataclass(frozen=True)
class Workload:
    """A batch of concurrent flows as parallel arrays.

    Attributes:
        name: generator provenance (e.g. ``"uniform"``).
        n: node-ID space the endpoints are drawn from.
        sources / targets: per-flow endpoints, ``sources[i] != targets[i]``.
        demands: per-flow packet counts (>= 1).
        seed: RNG seed that produced the batch (None for hand-built).
    """

    name: str
    n: int
    sources: np.ndarray
    targets: np.ndarray
    demands: np.ndarray
    seed: int | None = None

    def __post_init__(self) -> None:
        arrays = []
        for name in ("sources", "targets", "demands"):
            given = np.asarray(getattr(self, name))
            if given.dtype.kind not in "iu":
                raise InvalidParameterError(
                    f"{name} must be integers, got dtype {given.dtype}"
                )
            # Private copy: freezing must never make the caller's array
            # read-only behind their back.
            arrays.append(np.array(given, dtype=np.int64))
        src, dst, dem = arrays
        if not (src.shape == dst.shape == dem.shape) or src.ndim != 1:
            raise InvalidParameterError(
                "sources/targets/demands must be parallel 1-d arrays"
            )
        if src.size:
            if int(src.min()) < 0 or int(dst.min()) < 0:
                raise InvalidParameterError("flow endpoints must be >= 0")
            if int(src.max()) >= self.n or int(dst.max()) >= self.n:
                raise InvalidParameterError(f"flow endpoints out of range for n={self.n}")
            if (src == dst).any():
                raise InvalidParameterError("flows must have distinct endpoints")
            if (dem < 1).any():
                raise InvalidParameterError("flow demands must be >= 1")
        for name, arr in (("sources", src), ("targets", dst), ("demands", dem)):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @property
    def num_flows(self) -> int:
        """Number of concurrent flows."""
        return int(self.sources.size)

    @property
    def total_packets(self) -> int:
        """Total offered packets (sum of demands)."""
        return int(self.demands.sum())

    def restrict(self, alive: np.ndarray) -> "Workload":
        """The sub-workload whose endpoints are all alive.

        Args:
            alive: boolean mask of length ``n``; flows touching a dead
                endpoint are dropped (their traffic is simply lost, as it
                would be in the network).
        """
        mask = np.asarray(alive, dtype=bool)
        if mask.shape != (self.n,):
            raise InvalidParameterError(
                f"alive mask must have shape ({self.n},), got {mask.shape}"
            )
        keep = mask[self.sources] & mask[self.targets]
        return Workload(
            name=self.name,
            n=self.n,
            sources=self.sources[keep],
            targets=self.targets[keep],
            demands=self.demands[keep],
            seed=self.seed,
        )

    def delivered_fraction(self, labels: np.ndarray) -> float:
        """Fraction of flows whose endpoints share a connected component.

        Args:
            labels: per-node component labels, length ``n`` (any integer
                labelling — only equality is consulted).

        The mobility loop's *delivery* metric: on a disconnected
        snapshot, flows whose endpoints landed in different components
        are undeliverable no matter how they are routed.
        """
        labels = np.asarray(labels)
        if labels.shape != (self.n,):
            raise InvalidParameterError(
                f"component labels must have shape ({self.n},), got {labels.shape}"
            )
        if self.num_flows == 0:
            return 1.0
        return float((labels[self.sources] == labels[self.targets]).mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload({self.name!r}, flows={self.num_flows}, "
            f"packets={self.total_packets})"
        )


def _check_n(n: int) -> None:
    if n < 2:
        raise InvalidParameterError(f"workloads need n >= 2 nodes, got {n}")


def _distinct_targets(
    rng: np.random.Generator, sources: np.ndarray, n: int
) -> np.ndarray:
    """Uniform targets with ``targets != sources``, by vectorized redraw."""
    targets = rng.integers(0, n, size=sources.size, dtype=np.int64)
    clash = np.flatnonzero(targets == sources)
    while clash.size:
        targets[clash] = rng.integers(0, n, size=clash.size, dtype=np.int64)
        clash = clash[targets[clash] == sources[clash]]
    return targets


def uniform_pairs(
    n: int, flows: int, *, seed: int, demand: int = 1
) -> Workload:
    """``flows`` independent uniform (source, target) pairs."""
    _check_n(n)
    if flows < 1:
        raise InvalidParameterError(f"flows must be >= 1, got {flows}")
    if demand < 1:
        raise InvalidParameterError(f"demand must be >= 1, got {demand}")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n, size=flows, dtype=np.int64)
    targets = _distinct_targets(rng, sources, n)
    return Workload(
        name="uniform",
        n=n,
        sources=sources,
        targets=targets,
        demands=np.full(flows, demand, dtype=np.int64),
        seed=seed,
    )


def cbr_flows(
    n: int, connections: int, *, packets: int = 64, seed: int
) -> Workload:
    """Few persistent connections, ``packets`` packets each (CBR sessions)."""
    _check_n(n)
    if connections < 1:
        raise InvalidParameterError(f"connections must be >= 1, got {connections}")
    if packets < 1:
        raise InvalidParameterError(f"packets must be >= 1, got {packets}")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n, size=connections, dtype=np.int64)
    targets = _distinct_targets(rng, sources, n)
    return Workload(
        name="cbr",
        n=n,
        sources=sources,
        targets=targets,
        demands=np.full(connections, packets, dtype=np.int64),
        seed=seed,
    )


def hotspot(
    n: int, flows: int, *, sinks: int = 1, seed: int, demand: int = 1
) -> Workload:
    """Convergecast: every flow targets one of a few random sink nodes."""
    _check_n(n)
    if flows < 1:
        raise InvalidParameterError(f"flows must be >= 1, got {flows}")
    if not (1 <= sinks < n):
        raise InvalidParameterError(f"sinks must be in 1..{n - 1}, got {sinks}")
    if demand < 1:
        raise InvalidParameterError(f"demand must be >= 1, got {demand}")
    rng = np.random.default_rng(seed)
    sink_ids = rng.choice(n, size=sinks, replace=False).astype(np.int64)
    targets = sink_ids[rng.integers(0, sinks, size=flows)]
    sources = _distinct_targets(rng, targets, n)  # sources != their sink
    return Workload(
        name="hotspot",
        n=n,
        sources=sources,
        targets=targets,
        demands=np.full(flows, demand, dtype=np.int64),
        seed=seed,
    )


def gossip(n: int, *, fanout: int = 3, seed: int) -> Workload:
    """Every node sends one packet to ``fanout`` random distinct peers."""
    _check_n(n)
    if not (1 <= fanout < n):
        raise InvalidParameterError(f"fanout must be in 1..{n - 1}, got {fanout}")
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(n, dtype=np.int64), fanout)
    # Draw fanout peers per node without replacement: offset draws in
    # 1..n-1 modulo n can never land back on the source.
    offsets = np.empty((n, fanout), dtype=np.int64)
    for i in range(n):
        offsets[i] = rng.choice(n - 1, size=fanout, replace=False) + 1
    targets = (sources.reshape(n, fanout) + offsets).ravel() % n
    return Workload(
        name="gossip",
        n=n,
        sources=sources,
        targets=targets,
        demands=np.ones(n * fanout, dtype=np.int64),
        seed=seed,
    )


def _make_uniform(n: int, flows: int, seed: int) -> Workload:
    return uniform_pairs(n, flows, seed=seed)


def _make_cbr(n: int, flows: int, seed: int) -> Workload:
    # `flows` is the total packet budget: spread over ~flows/64 sessions.
    connections = max(1, flows // 64)
    return cbr_flows(n, connections, packets=64, seed=seed)


def _make_hotspot(n: int, flows: int, seed: int) -> Workload:
    return hotspot(n, flows, sinks=max(1, n // 100), seed=seed)


def _make_gossip(n: int, flows: int, seed: int) -> Workload:
    return gossip(n, fanout=min(n - 1, max(1, flows // n)), seed=seed)


#: CLI name -> ``(n, flows, seed) -> Workload`` factory.
WORKLOADS: dict[str, Callable[[int, int, int], Workload]] = {
    "uniform": _make_uniform,
    "cbr": _make_cbr,
    "hotspot": _make_hotspot,
    "gossip": _make_gossip,
}


def make_workload(kind: str, n: int, flows: int, *, seed: int) -> Workload:
    """Build a named workload sized to roughly ``flows`` offered flows."""
    try:
        factory = WORKLOADS[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload {kind!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return factory(n, flows, seed)
