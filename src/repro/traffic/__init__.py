"""Traffic engine: batched flow routing, load accounting, lifetime loops.

The layer that puts actual load on the clustered backbone (ROADMAP north
star: "heavy traffic from millions of users"):

* :mod:`~repro.traffic.workloads` — seeded flow-batch generators
  (uniform, CBR, hotspot convergecast, gossip);
* :mod:`~repro.traffic.router` — the vectorized batch router
  (:class:`BatchRouter`) sharing Dijkstra trees, head walks, legs and
  bit-packed BFS sweeps across thousands of flows;
* :mod:`~repro.traffic.load` — per-node forwarding load, virtual-link
  utilization, stretch/congestion/fairness accounting;
* :mod:`~repro.traffic.congestion` — per-link service capacities derived
  from the backbone and fluid-queue drops, exported as a
  :class:`~repro.faults.delivery.LossModel` so over-capacity links
  degrade delivery (and congested heads burn energy on retransmits);
* :mod:`~repro.traffic.lifetime` — the closed loop where measured load
  drains :class:`~repro.net.energy.EnergyModel`, deaths feed the §3.3
  repair ladder, and flows replay across epochs (rotation vs static);
* :mod:`~repro.traffic.mobile` — mobility-coupled traffic: the same
  workload replayed over RandomWaypoint unit-disk snapshots, evolved by
  edge deltas (the ``repro-khop mobility`` experiment);
* :mod:`~repro.traffic.report` — the ``repro-khop traffic`` experiment.
"""

from .congestion import (
    CongestionModel,
    CongestionReport,
    congestion_report,
)
from .lifetime import (
    LifetimeEpoch,
    LifetimeReport,
    compare_rotation_under_traffic,
    simulate_traffic_lifetime,
)
from .load import LoadReport, measure_load
from .mobile import (
    MobileEpoch,
    MobileTrafficReport,
    render_mobile,
    simulate_mobile_traffic,
)
from .report import TrafficReport, render_traffic, run_traffic
from .router import BatchRouter, RoutedFlows
from .workloads import (
    WORKLOADS,
    Workload,
    cbr_flows,
    gossip,
    hotspot,
    make_workload,
    uniform_pairs,
)

__all__ = [
    "Workload",
    "uniform_pairs",
    "cbr_flows",
    "hotspot",
    "gossip",
    "WORKLOADS",
    "make_workload",
    "BatchRouter",
    "RoutedFlows",
    "LoadReport",
    "measure_load",
    "CongestionModel",
    "CongestionReport",
    "congestion_report",
    "LifetimeEpoch",
    "LifetimeReport",
    "simulate_traffic_lifetime",
    "compare_rotation_under_traffic",
    "MobileEpoch",
    "MobileTrafficReport",
    "simulate_mobile_traffic",
    "render_mobile",
    "TrafficReport",
    "run_traffic",
    "render_traffic",
]
