"""Mobility-coupled traffic: replay a workload over RandomWaypoint snapshots.

The churn loop (:mod:`repro.traffic.lifetime`) measures traffic under a
*shrinking* node set; this module measures it under *motion* — the other
half of the paper's §3.3 dynamics ("nodes that move away") and the
ROADMAP's "mobility-coupled traffic" item.  Nodes move under random
waypoint; each time step the unit-disk topology is re-snapshotted, the
backbone rebuilt, and the same flow workload re-routed, producing
per-epoch series of stretch, load concentration, Jain fairness and
delivery.

Two engines produce **walk-identical** results (the acceptance gate of
``benchmarks/test_bench_mobility.py``):

* ``engine="rebuild"`` — the from-scratch baseline: every snapshot gets a
  cold :class:`~repro.net.graph.Graph`, oracle, clustering, backbone and
  router;
* ``engine="delta"`` — the incremental path this module exists for.  The
  snapshot's unit-disk edge set is diffed against the previous graph
  (:func:`~repro.net.mobility.snapshot_edge_delta`) and applied through
  :meth:`Graph.with_edge_delta`, so distance rows/balls inherit under the
  valid-prefix rules; canonical paths (virtual links *and* member<->head
  legs share one :class:`~repro.net.paths.PathOracle`) inherit through
  :func:`~repro.maintenance.repair.delta_path_oracle`; and the head-graph
  routing layer inherits through
  :meth:`~repro.traffic.router.BatchRouter.inherit_edge_delta`.
  Clusterhead election re-runs deterministically every snapshot (the
  batched engine is cheap, and keeping a merely-still-valid old
  clustering would diverge from the rebuild baseline).

Disconnected snapshots are not routed by default: the epoch records the
fraction of flows whose endpoints still share a component (*delivery*),
the graph keeps evolving by deltas underneath, and pending touched nodes
accumulate so the next connected snapshot's inheritance remains sound
across the gap.  With ``degraded=True`` the loop instead falls back to
**component-local routing** (:func:`route_degraded`): every surviving
component is clustered and routed on its own backbone, flows whose
endpoints share a component still move, and cross-component flows carry
placeholder walks flagged with a ``valid=False`` bit.  The report's
``recovery_times`` records how many epochs each outage lasted before the
network reconnected and routing was fully re-validated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.stats import jaccard_distance
from ..core.clustering import khop_cluster
from ..core.pipeline import _LOCALIZED, BackboneResult, build_backbone
from ..errors import InvalidParameterError
from ..maintenance.repair import delta_path_oracle
from ..net.graph import Graph
from ..net.mobility import RandomWaypoint, snapshot_edge_delta
from ..net.oracle import DIST_DTYPE, LazyDistanceOracle
from ..net.paths import PathOracle
from ..net.topology import Topology, random_topology
from ..obs import publish_counters, span
from .load import measure_load
from .router import BatchRouter, RoutedFlows
from .workloads import Workload, make_workload

__all__ = [
    "MobileEpoch",
    "MobileTrafficReport",
    "simulate_mobile_traffic",
    "route_degraded",
    "render_mobile",
]


@dataclass(frozen=True)
class MobileEpoch:
    """One snapshot's traffic measurements.

    Attributes:
        step: mobility time step (0 = the initial topology).
        connected: whether the snapshot's unit-disk graph was connected
            (only connected snapshots are clustered and routed).
        edges_added / edges_removed: the snapshot delta's size.
        delivered: fraction of flows whose endpoints share a component
            (1.0 on every connected snapshot).
        flows_routed: flows actually routed (0 when disconnected).
        mean_stretch / p95_stretch / max_stretch: walk-vs-shortest ratios
            (NaN when nothing was routed).
        max_node_load: heaviest single node's message load.
        backbone_fairness: Jain index of load across the CDS.
        cds_share: fraction of packet-hops transmitted by CDS nodes.
        num_heads / cds_size: backbone shape that served the snapshot.
        head_churn: Jaccard distance to the previous routed snapshot's
            head set (NaN for the first routed snapshot).
        degraded: True when a disconnected snapshot was served by
            component-local routing (:func:`route_degraded`) instead of
            being skipped — its metrics then cover the routable subset.
    """

    step: int
    connected: bool
    edges_added: int
    edges_removed: int
    delivered: float
    flows_routed: int
    mean_stretch: float
    p95_stretch: float
    max_stretch: float
    max_node_load: float
    backbone_fairness: float
    cds_share: float
    num_heads: int
    cds_size: int
    head_churn: float
    degraded: bool = False


@dataclass
class MobileTrafficReport:
    """Aggregate outcome of one mobility-coupled traffic run.

    Attributes:
        engine: ``"delta"`` or ``"rebuild"``.
        k / algorithm: backbone parameters.
        epochs: per-snapshot measurements, in step order.
        skipped_disconnected: snapshots that were not routed.
        rows_inherited / balls_inherited: distance-oracle cache entries
            carried whole across snapshot deltas (delta engine only);
            ``rows_inherited`` counts full exact rows — certified
            verbatim plus dynamic-BFS patched.
        rows_partial_inherited: rows carried as valid prefixes for lazy
            re-expansion instead (triage overflow).
        paths_inherited: canonical paths (virtual links + legs) carried.
        router_rebuilds_avoided: snapshots whose whole head-routing layer
            (Dijkstra trees, head walks) survived structurally.
        degraded_epochs: disconnected snapshots served component-locally
            (``degraded=True`` runs only).
        recovery_times: length in epochs of every completed outage — from
            the first disconnected snapshot of a stretch to the snapshot
            before the network reconnected and routing re-validated.
        walks: per-epoch routed walks when ``collect_walks=True`` (the
            walk-identity benchmark compares these across engines).
    """

    engine: str
    k: int
    algorithm: str
    epochs: list[MobileEpoch] = field(default_factory=list)
    skipped_disconnected: int = 0
    rows_inherited: int = 0
    rows_partial_inherited: int = 0
    balls_inherited: int = 0
    paths_inherited: int = 0
    router_rebuilds_avoided: int = 0
    degraded_epochs: int = 0
    recovery_times: list[int] = field(default_factory=list)
    walks: Optional[list[list[tuple[int, ...]]]] = None

    def routed_epochs(self) -> list[MobileEpoch]:
        """The epochs that actually carried traffic."""
        return [
            e
            for e in self.epochs
            if e.connected or (e.degraded and e.flows_routed > 0)
        ]

    def mean(self, metric: str) -> float:
        """Mean of one per-epoch metric over the routed epochs."""
        vals = [
            getattr(e, metric)
            for e in self.routed_epochs()
            if not math.isnan(float(getattr(e, metric)))
        ]
        return float(np.mean(vals)) if vals else float("nan")

    @property
    def delivery_rate(self) -> float:
        """Mean delivered fraction over *all* epochs (disconnected included)."""
        if not self.epochs:
            return float("nan")
        return float(np.mean([e.delivered for e in self.epochs]))


def _component_labels(graph: Graph) -> np.ndarray:
    """Per-node connected-component labels (arbitrary but consistent)."""
    labels = np.full(graph.n, -1, dtype=np.int64)
    for i, comp in enumerate(graph.connected_components()):
        labels[list(comp)] = i
    return labels


def route_degraded(
    graph: Graph,
    k: int,
    workload: Workload,
    *,
    algorithm: str = "AC-LMST",
) -> tuple[BackboneResult, RoutedFlows]:
    """Component-local routing over a disconnected snapshot.

    Clusters every surviving component (``require_connected=False``),
    builds one backbone spanning them all — localized algorithms only:
    G-MST needs the global metric closure, which does not exist on a
    disconnected graph — and routes the flows whose endpoints share a
    component.  Cross-component flows get single-node placeholder walks
    flagged ``valid=False``: the degraded world's stale-walk bit.  Their
    entries carry no traffic and must not be trusted as routes.

    Returns the per-component backbone and the merged
    :class:`RoutedFlows` covering *every* flow of ``workload`` (real
    walks where routable, placeholders elsewhere, ``valid`` telling
    them apart).
    """
    if algorithm not in _LOCALIZED:
        raise InvalidParameterError(
            f"degraded routing needs a localized algorithm "
            f"(one of {sorted(_LOCALIZED)}), got {algorithm!r}"
        )
    labels = _component_labels(graph)
    routable = labels[workload.sources] == labels[workload.targets]
    sub = Workload(
        name=workload.name,
        n=workload.n,
        sources=workload.sources[routable],
        targets=workload.targets[routable],
        demands=workload.demands[routable],
        seed=workload.seed,
    )
    clustering = khop_cluster(graph, k, require_connected=False)
    backbone = build_backbone(clustering, algorithm)
    routed_sub = BatchRouter(backbone).route_flows(sub, with_shortest=True)

    idx = np.flatnonzero(routable)
    walks: list[tuple[int, ...]] = [
        (int(s),) for s in workload.sources.tolist()
    ]
    head_paths: list[tuple[int, ...]] = [() for _ in walks]
    hops = np.zeros(workload.num_flows, dtype=DIST_DTYPE)
    shortest = np.zeros(workload.num_flows, dtype=DIST_DTYPE)
    hops[idx] = routed_sub.hops
    shortest[idx] = routed_sub.shortest
    for j, i in enumerate(idx.tolist()):
        walks[i] = routed_sub.walks[j]
        head_paths[i] = routed_sub.head_paths[j]
    return backbone, RoutedFlows(
        workload=workload,
        walks=walks,
        hops=hops,
        shortest=shortest,
        head_paths=head_paths,
        valid=routable,
    )


def simulate_mobile_traffic(
    topology: Topology,
    k: int,
    workload: Workload,
    *,
    snapshots: int,
    speed: tuple[float, float] = (0.5, 1.5),
    seed: int = 0,
    algorithm: str = "AC-LMST",
    engine: str = "delta",
    collect_walks: bool = False,
    degraded: bool = False,
) -> MobileTrafficReport:
    """Move nodes, re-route ``workload`` on every snapshot, measure traffic.

    Args:
        topology: initial (connected) topology; its radius is reused for
            every snapshot, its positions seed the waypoint process.
        k: cluster radius.
        workload: the flow batch re-routed on every connected snapshot.
        snapshots: mobility steps to simulate (epoch 0 is the unmoved
            initial topology, so ``snapshots + 1`` epochs are reported).
        speed: random-waypoint speed range, units per step.
        seed: RNG seed for the waypoint process.
        algorithm: backbone pipeline.
        engine: ``"delta"`` (incremental, the default) or ``"rebuild"``
            (from-scratch baseline) — walk-identical by construction.
            Delta-side cache inheritance applies to the lazy oracle
            family; under the auto policy, small graphs (dense backend)
            still produce identical results, just without the row reuse.
        collect_walks: keep every epoch's routed walks on the report
            (memory-heavy; the equivalence benchmark needs it).
        degraded: serve disconnected snapshots by component-local
            routing (:func:`route_degraded`) instead of skipping them —
            localized algorithms only.  Incremental caches are left
            untouched during the outage, so the next connected
            snapshot's inheritance stays sound; the report records each
            outage's length in ``recovery_times``.
    """
    if snapshots < 1:
        raise InvalidParameterError(f"snapshots must be >= 1, got {snapshots}")
    if engine not in ("delta", "rebuild"):
        raise InvalidParameterError(f"unknown mobility engine {engine!r}")
    if degraded and algorithm not in _LOCALIZED:
        raise InvalidParameterError(
            f"degraded mode needs a localized algorithm "
            f"(one of {sorted(_LOCALIZED)}), got {algorithm!r}"
        )
    if workload.n != topology.graph.n:
        raise InvalidParameterError(
            f"workload addresses {workload.n} nodes, topology has {topology.graph.n}"
        )
    mob = RandomWaypoint(
        topology.positions,
        topology.area,
        speed,
        np.random.default_rng(seed),
    )
    # Both engines start from a cold copy so the comparison is honest:
    # neither inherits whatever caches the caller's topology accumulated.
    graph = Graph(topology.graph.n, topology.graph.edges)
    graph._backend = topology.graph._backend
    report = MobileTrafficReport(engine=engine, k=k, algorithm=algorithm)
    if collect_walks:
        report.walks = []

    prev_paths: Optional[PathOracle] = None
    prev_router: Optional[BatchRouter] = None
    prev_heads: Optional[set] = None
    # Touched nodes of every delta since the last *routed* snapshot: a
    # disconnected gap composes deltas, and inheritance across the gap
    # must be judged against the union of their endpoints.
    pending_touched: set[int] = set()
    # Consecutive disconnected snapshots of the current outage (degraded
    # or skipped alike) — flushed to recovery_times on reconnection.
    outage = 0

    with span("mobility", engine=engine, k=k, snapshots=snapshots):
        for step in range(snapshots + 1):
            with span("epoch", step=step):
                if step == 0:
                    added: list = []
                    removed: list = []
                else:
                    mob.step()
                    added, removed = snapshot_edge_delta(
                        graph, mob.snapshot_edges(topology.radius)
                    )
                    if engine == "delta":
                        derived = graph.with_edge_delta(added, removed)
                        if derived is not graph:  # empty deltas return self:
                            # re-reading the same oracles would double-count.
                            for oracle in derived._oracles.values():
                                if isinstance(oracle, LazyDistanceOracle):
                                    stats = oracle.stats()
                                    report.rows_inherited += stats.rows_inherited
                                    report.rows_partial_inherited += (
                                        stats.rows_partial_inherited
                                    )
                                    report.balls_inherited += stats.balls_inherited
                                    publish_counters(
                                        "oracle.inherit",
                                        {
                                            "rows": stats.rows_inherited,
                                            "rows_partial": (
                                                stats.rows_partial_inherited
                                            ),
                                            "balls": stats.balls_inherited,
                                        },
                                    )
                        graph = derived
                    else:
                        g = Graph(graph.n, set(graph.edges) - set(removed) | set(added))
                        g._backend = graph._backend
                        graph = g
                    pending_touched.update(x for e in added for x in e)
                    pending_touched.update(x for e in removed for x in e)

                if not graph.is_connected():
                    delivered = workload.delivered_fraction(_component_labels(graph))
                    outage += 1
                    if degraded:
                        dg_backbone, dg_routed = route_degraded(
                            graph, k, workload, algorithm=algorithm
                        )
                        # measure_load masks stretch stats by dg_routed.valid
                        # itself, so the placeholder walks never pollute them.
                        dg_load = measure_load(dg_backbone, dg_routed)
                        report.degraded_epochs += 1
                        report.epochs.append(
                            MobileEpoch(
                                step=step,
                                connected=False,
                                edges_added=len(added),
                                edges_removed=len(removed),
                                delivered=delivered,
                                flows_routed=dg_routed.num_valid,
                                mean_stretch=dg_load.mean_stretch,
                                p95_stretch=dg_load.p95_stretch,
                                max_stretch=dg_load.max_stretch,
                                max_node_load=dg_load.max_node_load,
                                backbone_fairness=dg_load.backbone_fairness,
                                cds_share=dg_load.cds_share,
                                num_heads=len(dg_backbone.heads),
                                cds_size=dg_backbone.cds_size,
                                head_churn=float("nan"),
                                degraded=True,
                            )
                        )
                        if collect_walks:
                            report.walks.append(dg_routed.walks)
                        continue
                    report.skipped_disconnected += 1
                    report.epochs.append(
                        MobileEpoch(
                            step=step,
                            connected=False,
                            edges_added=len(added),
                            edges_removed=len(removed),
                            delivered=delivered,
                            flows_routed=0,
                            mean_stretch=float("nan"),
                            p95_stretch=float("nan"),
                            max_stretch=float("nan"),
                            max_node_load=0.0,
                            backbone_fairness=float("nan"),
                            cds_share=float("nan"),
                            num_heads=0,
                            cds_size=0,
                            head_churn=float("nan"),
                        )
                    )
                    if collect_walks:
                        report.walks.append([])
                    continue

                if outage:
                    report.recovery_times.append(outage)
                    outage = 0
                clustering = khop_cluster(graph, k)
                if engine == "delta" and prev_paths is not None:
                    paths = delta_path_oracle(graph, prev_paths, pending_touched)
                    report.paths_inherited += paths.paths_inherited
                else:
                    paths = PathOracle(graph)
                backbone = build_backbone(clustering, algorithm, oracle=paths)
                router = BatchRouter(backbone, oracle=paths)
                if engine == "delta" and prev_router is not None:
                    stats = router.inherit_edge_delta(prev_router, pending_touched)
                    if stats["head_graph_unchanged"]:
                        report.router_rebuilds_avoided += 1
                    publish_counters("router.inherit", stats)
                pending_touched = set()

                routed = router.route_flows(workload, with_shortest=True)
                load = measure_load(backbone, routed)
                heads = set(backbone.heads)
                report.epochs.append(
                    MobileEpoch(
                        step=step,
                        connected=True,
                        edges_added=len(added),
                        edges_removed=len(removed),
                        delivered=1.0,
                        flows_routed=routed.num_flows,
                        mean_stretch=load.mean_stretch,
                        p95_stretch=load.p95_stretch,
                        max_stretch=load.max_stretch,
                        max_node_load=load.max_node_load,
                        backbone_fairness=load.backbone_fairness,
                        cds_share=load.cds_share,
                        num_heads=len(heads),
                        cds_size=backbone.cds_size,
                        head_churn=(
                            jaccard_distance(prev_heads, heads)
                            if prev_heads is not None
                            else float("nan")
                        ),
                    )
                )
                if collect_walks:
                    report.walks.append(routed.walks)
                prev_paths, prev_router, prev_heads = paths, router, heads
    return report


def render_mobile(report: MobileTrafficReport) -> str:
    """Human-readable per-epoch table plus run summary."""
    lines = [
        f"mobility-coupled traffic: engine={report.engine}, "
        f"k={report.k}, algorithm={report.algorithm}",
        "",
        "epoch  ±edges  deliv  stretch(mean/p95)  maxload  jain   heads  cds  churn",
    ]
    for e in report.epochs:
        if not e.connected and not e.degraded:
            lines.append(
                f"{e.step:5d}  +{e.edges_added}/-{e.edges_removed}  "
                f"{e.delivered:.2f}   -- disconnected, not routed --"
            )
            continue
        churn = f"{e.head_churn:.2f}" if not math.isnan(e.head_churn) else "  - "
        tag = "  [degraded]" if e.degraded else ""
        lines.append(
            f"{e.step:5d}  +{e.edges_added}/-{e.edges_removed}  "
            f"{e.delivered:.2f}  {e.mean_stretch:.3f} / {e.p95_stretch:.3f}"
            f"      {e.max_node_load:7.0f}  {e.backbone_fairness:.3f}  "
            f"{e.num_heads:5d}  {e.cds_size:3d}  {churn}{tag}"
        )
    lines += [
        "",
        f"summary: {len(report.routed_epochs())}/{len(report.epochs)} epochs "
        f"routed, delivery {report.delivery_rate:.3f}, "
        f"mean stretch {report.mean('mean_stretch'):.3f}, "
        f"mean head churn {report.mean('head_churn'):.3f}",
    ]
    if report.degraded_epochs:
        recov = (
            ", ".join(str(t) for t in report.recovery_times)
            if report.recovery_times
            else "none completed"
        )
        lines.append(
            f"degraded: {report.degraded_epochs} disconnected epochs served "
            f"component-locally; recovery times (epochs): {recov}"
        )
    if report.engine == "delta":
        lines.append(
            f"inherited: {report.rows_inherited} rows "
            f"(+{report.rows_partial_inherited} partial), "
            f"{report.balls_inherited} balls, "
            f"{report.paths_inherited} canonical paths; "
            f"{report.router_rebuilds_avoided} router rebuilds avoided"
        )
    return "\n".join(lines)


def main(
    *,
    n: int = 400,
    degree: float = 8.0,
    k: int = 2,
    algorithm: str = "AC-LMST",
    workload: str = "uniform",
    flows: int = 2000,
    snapshots: int = 20,
    speed: tuple[float, float] = (0.5, 1.5),
    seed: int = 7,
    engine: str = "delta",
) -> None:
    """CLI driver: run one mobility-coupled traffic experiment."""
    topo = random_topology(n, degree=degree, seed=seed)
    # The delta engine's cache inheritance lives in the lazy oracle
    # family; pin it so small instances don't auto-select dense.
    topo.graph.use_distance_backend("lazy")
    wl = make_workload(workload, topo.graph.n, flows, seed=seed)
    report = simulate_mobile_traffic(
        topo,
        k,
        wl,
        snapshots=snapshots,
        speed=speed,
        seed=seed,
        algorithm=algorithm,
        engine=engine,
    )
    print(render_mobile(report))
