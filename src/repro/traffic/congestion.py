"""Per-link congestion: capacities, fluid-queue drops, loss export.

Load accounting (:mod:`repro.traffic.load`) made the backbone's
concentration measurable; this module makes it *push back*.  Every
selected virtual link gets a service capacity derived from the backbone
itself: a clusterhead/gateway radio forwards at most ``radio_budget``
packets per epoch, and a virtual link of weight ``w`` (its stored
gateway path spans ``w`` physical hops) consumes ``w`` radio
transmissions per packet — so the link's packet capacity is
``radio_budget / w``.  Wide (short) links are fat pipes, long multi-hop
links are thin ones, exactly the §3 intuition that gateway chains are
the scarce resource.

Offered load above capacity drains through a **fluid queue with
demand-weighted drops**: a link offered ``q > c`` delivers ``c`` and
drops the excess, i.e. every packet crossing it is lost with probability
``p = (q - c) / q`` — carried load never exceeds capacity (capacity
conservation), and ``p`` is monotone in the offered load.  The drop
probability is exported as a per-*physical-edge* loss rate over the
link's stored gateway path (``r = 1 - (1 - p)^(1/w)``, so one traversal
of the whole path is lost with probability ``p``) in the exact
:class:`~repro.faults.delivery.LossModel` shape the delivery engine
consumes.  Composed with a fault-injection loss model via
:meth:`LossModel.combine`, congestion becomes one more loss source in
:func:`~repro.faults.delivery.deliver` — and because congested heads
retransmit, they *burn energy faster*, which is how congestion couples
into the lifetime loop (:mod:`repro.traffic.lifetime`).

The load-adaptive counterweight is the batch router's ``balance=`` mode
(:meth:`repro.traffic.router.BatchRouter.route_flows`), which spreads
flows across k-shortest head walks precisely to keep links under their
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError
from ..types import Edge, NodeId, normalize_edge
from .load import link_utilization
from .router import RoutedFlows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> traffic)
    from ..faults.delivery import LossModel

__all__ = [
    "DEFAULT_RADIO_BUDGET",
    "CongestionModel",
    "CongestionReport",
    "congestion_report",
]

#: Packets per epoch one backbone radio can forward (the capacity unit).
DEFAULT_RADIO_BUDGET = 256.0


@dataclass(frozen=True)
class CongestionModel:
    """Service capacities for every selected virtual link of one backbone.

    Attributes:
        n: node-ID space of the served graph.
        radio_budget: packets per epoch a single backbone radio forwards.
        capacity: selected virtual link -> packet capacity
            (``radio_budget / link weight``).
        paths: selected virtual link -> its stored gateway path (the
            physical edges congestion losses land on).
    """

    n: int
    radio_budget: float
    capacity: dict[Edge, float]
    paths: dict[Edge, tuple[NodeId, ...]]

    @classmethod
    def from_backbone(
        cls,
        result: BackboneResult,
        *,
        radio_budget: float = DEFAULT_RADIO_BUDGET,
    ) -> "CongestionModel":
        """Derive per-link capacities from a backbone's virtual links.

        Raises:
            InvalidParameterError: if ``radio_budget`` is not positive.
        """
        if radio_budget <= 0:
            raise InvalidParameterError(
                f"radio_budget must be > 0, got {radio_budget}"
            )
        capacity: dict[Edge, float] = {}
        paths: dict[Edge, tuple[NodeId, ...]] = {}
        for ab in sorted(result.selected_links):
            link = result.virtual_graph.link(*ab)
            capacity[ab] = radio_budget / max(link.weight, 1)
            paths[ab] = link.path
        return cls(
            n=result.clustering.graph.n,
            radio_budget=float(radio_budget),
            capacity=capacity,
            paths=paths,
        )

    @property
    def num_links(self) -> int:
        """Selected virtual links with a capacity."""
        return len(self.capacity)

    def drop_probabilities(
        self, offered: Mapping[Edge, float]
    ) -> dict[Edge, float]:
        """Fluid-queue drop probability per *overloaded* link.

        A link offered ``q`` packets against capacity ``c`` drops each
        with probability ``max(0, (q - c) / q)`` — the unique rate at
        which carried load equals ``min(q, c)`` (capacity conservation).
        Links at or under capacity are omitted; offered load on edges
        without a capacity (not selected links) is ignored.
        """
        out: dict[Edge, float] = {}
        for e, q in sorted(offered.items()):
            c = self.capacity.get(e)
            if c is not None and q > c:
                out[e] = (q - c) / q
        return out

    def loss_model(self, routed: RoutedFlows) -> "LossModel":
        """The congestion loss this batch inflicts on itself.

        Offered per-link load comes from the batch's own head sequences
        (:func:`~repro.traffic.load.link_utilization`); each overloaded
        link's drop probability spreads over the ``w`` physical hops of
        its stored gateway path as ``r = 1 - (1 - p)^(1/w)``, so one end
        to end traversal survives with probability ``1 - p`` exactly.  A
        physical edge shared by several congested links takes the worst
        rate.  Compose with a fault model via
        :meth:`~repro.faults.delivery.LossModel.combine`.
        """
        # Runtime import: faults.delivery imports traffic.router at
        # module level, so the reverse edge must stay lazy.
        from ..faults.delivery import LossModel

        drops = self.drop_probabilities(link_utilization(routed, self.n))
        overrides: dict[Edge, float] = {}
        for e, p in drops.items():
            path = self.paths[e]
            w = max(len(path) - 1, 1)
            r = 1.0 - (1.0 - p) ** (1.0 / w)
            for x, y in zip(path, path[1:]):
                edge = normalize_edge(x, y)
                prior = overrides.get(edge, 0.0)
                if r > prior:
                    overrides[edge] = r
        return LossModel.from_overrides(self.n, overrides)


@dataclass(frozen=True)
class CongestionReport:
    """How one routed batch relates to the backbone's capacities.

    Attributes:
        links: selected virtual links with a capacity.
        loaded_links: links the batch actually crossed.
        congested_links: links offered more than their capacity.
        offered_packets: total demand-weighted link crossings.
        dropped_packets: fluid-model packet drops (``Σ max(0, q - c)``).
        worst_utilization: max over loaded links of ``q / c``.
    """

    links: int
    loaded_links: int
    congested_links: int
    offered_packets: float
    dropped_packets: float
    worst_utilization: float

    @property
    def drop_fraction(self) -> float:
        """Fluid-model fraction of link crossings dropped."""
        if self.offered_packets <= 0:
            return 0.0
        return self.dropped_packets / self.offered_packets


def congestion_report(
    model: CongestionModel, routed: RoutedFlows
) -> CongestionReport:
    """Summarize a routed batch against a congestion model."""
    offered = link_utilization(routed, model.n)
    congested = 0
    dropped = 0.0
    worst = 0.0
    total = 0.0
    for e, q in sorted(offered.items()):
        c = model.capacity.get(e)
        total += q
        if c is None:
            continue
        util = q / c
        if util > worst:
            worst = util
        if q > c:
            congested += 1
            dropped += q - c
    return CongestionReport(
        links=model.num_links,
        loaded_links=len(offered),
        congested_links=congested,
        offered_packets=total,
        dropped_packets=dropped,
        worst_utilization=worst,
    )
