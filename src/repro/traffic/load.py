"""Per-node load, virtual-link utilization and congestion accounting.

Once a workload is routed (:mod:`repro.traffic.router`), *someone* carries
every packet-hop — and the paper's whole §3.3 energy/rotation machinery
exists because those someones are disproportionately the clusterheads and
gateways.  This module makes that measurable:

* **per-node message load** — for every hop of every walk the sending
  node is charged one transmit and the receiving node one receive
  (demand-weighted), computed by flattening all walks into one index
  array and two ``np.bincount`` passes;
* **forwarding (transit) load** — the interior-position subset: packets a
  node relayed for others, the §3.3 drain driver;
* **virtual-link utilization** — demand-weighted packet counts per
  selected backbone link, from the routed head sequences;
* **congestion/fairness summary** — max and percentile node load, the
  CDS's share of all packet-hops, and Jain's fairness index
  (:func:`repro.analysis.stats.jain_fairness`) over the backbone.

The flow-conservation identities (every flow contributes exactly
``demand * hops`` transmits, receives and ``demand * (hops - 1)``
forwards; totals match the per-node sums) are asserted in
``tests/traffic/test_load.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.stats import jain_fairness
from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError
from ..types import Edge, NodeId
from .router import RoutedFlows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> traffic)
    from ..faults.delivery import DeliveryReport

__all__ = ["LoadReport", "measure_load", "lossy_load", "link_utilization"]


@dataclass(frozen=True)
class LoadReport:
    """Who carried a routed workload, and how unevenly.

    Attributes:
        num_flows / total_packets: the routed workload's size.
        packet_hops: total demand-weighted hops (network transmissions).
        tx / rx: per-node demand-weighted transmit / receive counts.
        transit: per-node forwarded packets (interior positions only).
        link_util: selected virtual link -> demand-weighted packet count.
        mean_stretch / max_stretch / p95_stretch: walk-vs-shortest ratios.
        max_node_load / p50_node_load / p95_node_load / p99_node_load:
            percentiles of total node load (tx + rx) over loaded nodes.
        cds_share: fraction of all packet-hops whose transmit happened at
            a CDS (head or gateway) node.
        backbone_fairness: Jain index of total load across the CDS.
    """

    num_flows: int
    total_packets: int
    packet_hops: int
    tx: np.ndarray
    rx: np.ndarray
    transit: np.ndarray
    link_util: dict[Edge, int]
    mean_stretch: float
    max_stretch: float
    p95_stretch: float
    max_node_load: float
    p50_node_load: float
    p95_node_load: float
    p99_node_load: float
    cds_share: float
    backbone_fairness: float

    @property
    def node_load(self) -> np.ndarray:
        """Total per-node message load, ``tx + rx``."""
        return self.tx + self.rx

    def top_loaded(self, count: int = 10) -> list[tuple[NodeId, int]]:
        """The ``count`` most loaded nodes as ``(node, load)``, heaviest first.

        Equal loads break ties by ascending node ID (the project's min-ID
        convention) — ``lexsort`` with ``-load`` as the primary key, so a
        tie can never surface in descending ID order.
        """
        load = self.node_load
        order = np.lexsort((np.arange(load.size), -load))[:count]
        return [(int(u), int(load[u])) for u in order if load[u] > 0]


def link_utilization(routed: RoutedFlows, n: int) -> dict[Edge, int]:
    """Demand-weighted packet count per traversed virtual link.

    One flattened pass over the routed head sequences: consecutive heads
    are paired up via the same first/last masking the per-node tallies
    use, encoded as ``min * n + max`` and aggregated with one
    ``np.unique`` + ``np.bincount`` — no per-flow Python loop.
    """
    seq_arrays = [
        np.asarray(hp, dtype=np.int64) for hp in routed.head_paths if len(hp) > 1
    ]
    if not seq_arrays:
        return {}
    demands = routed.workload.demands
    with_links = np.fromiter(
        (len(hp) > 1 for hp in routed.head_paths),
        dtype=bool,
        count=len(routed.head_paths),
    )
    flat = np.concatenate(seq_arrays)
    lengths = np.fromiter(
        (a.size for a in seq_arrays), dtype=np.int64, count=len(seq_arrays)
    )
    ends = np.cumsum(lengths)
    starts = ends - lengths
    is_first = np.zeros(flat.size, dtype=bool)
    is_first[starts] = True
    is_last = np.zeros(flat.size, dtype=bool)
    is_last[ends - 1] = True
    u = flat[~is_last]
    v = flat[~is_first]
    codes = np.minimum(u, v) * n + np.maximum(u, v)
    weights = np.repeat(demands[with_links], lengths - 1).astype(np.float64)
    uniq, inverse = np.unique(codes, return_inverse=True)
    totals = np.bincount(inverse, weights=weights, minlength=uniq.size)
    return {
        (int(c // n), int(c % n)): int(round(t))
        for c, t in zip(uniq.tolist(), totals.tolist())
    }


def _finish_report(
    result: BackboneResult,
    routed: RoutedFlows,
    tx: np.ndarray,
    rx: np.ndarray,
    transit: np.ndarray,
) -> LoadReport:
    """Assemble a :class:`LoadReport` from per-node tallies.

    The shared tail of :func:`measure_load` and :func:`lossy_load`:
    link utilization, stretch statistics (over *valid* flows only —
    degraded-mode placeholder walks never pollute them; see
    :meth:`RoutedFlows.stretches`), node-load percentiles, CDS share
    and backbone fairness.
    """
    n = result.clustering.graph.n
    link_util = link_utilization(routed, n)

    packet_hops = int(tx.sum())
    if routed.shortest.size:
        stretches = routed.stretches()
        mean_stretch = (
            float(stretches.mean()) if stretches.size else float("nan")
        )
        max_stretch = (
            float(stretches.max()) if stretches.size else float("nan")
        )
        p95_stretch = (
            float(np.percentile(stretches, 95))
            if stretches.size
            else float("nan")
        )
    else:
        mean_stretch = max_stretch = p95_stretch = float("nan")

    load = tx + rx
    loaded = load[load > 0]
    if loaded.size:
        max_node_load = float(loaded.max())
        p50, p95, p99 = (
            float(np.percentile(loaded, q)) for q in (50, 95, 99)
        )
    else:
        max_node_load = p50 = p95 = p99 = 0.0

    cds = sorted(result.cds)
    cds_share = float(tx[cds].sum() / packet_hops) if packet_hops else 0.0
    backbone_fairness = jain_fairness(load[cds]) if cds else 0.0

    return LoadReport(
        num_flows=routed.num_flows,
        total_packets=routed.workload.total_packets,
        packet_hops=packet_hops,
        tx=tx,
        rx=rx,
        transit=transit,
        link_util=link_util,
        mean_stretch=mean_stretch,
        max_stretch=max_stretch,
        p95_stretch=p95_stretch,
        max_node_load=max_node_load,
        p50_node_load=p50,
        p95_node_load=p95,
        p99_node_load=p99,
        cds_share=cds_share,
        backbone_fairness=backbone_fairness,
    )


def measure_load(result: BackboneResult, routed: RoutedFlows) -> LoadReport:
    """Account one routed batch against the backbone that carried it.

    All per-node tallies are demand-weighted ``np.bincount`` passes over
    the concatenated walks — O(total walk length), no Python-level
    per-packet loop.  Degraded batches are exact: placeholder walks
    (``routed.valid`` False) are zero-hop, so they contribute no load,
    and the stretch statistics cover valid flows only.
    """
    n = result.clustering.graph.n
    demands = routed.workload.demands
    if len(routed.walks) != demands.size:
        raise InvalidParameterError("routed walks and workload demands disagree")

    tx = np.zeros(n, dtype=np.int64)
    rx = np.zeros(n, dtype=np.int64)
    transit = np.zeros(n, dtype=np.int64)
    if routed.walks:
        flat = np.concatenate(
            [np.asarray(w, dtype=np.int64) for w in routed.walks]
        )
        lengths = routed.hops + 1  # node counts per walk
        ends = np.cumsum(lengths)
        starts = ends - lengths
        weights = np.repeat(demands, lengths)
        is_first = np.zeros(flat.size, dtype=bool)
        is_first[starts] = True
        is_last = np.zeros(flat.size, dtype=bool)
        is_last[ends - 1] = True
        tx = np.bincount(
            flat[~is_last], weights=weights[~is_last], minlength=n
        ).astype(np.int64)
        rx = np.bincount(
            flat[~is_first], weights=weights[~is_first], minlength=n
        ).astype(np.int64)
        interior = ~(is_first | is_last)
        transit = np.bincount(
            flat[interior], weights=weights[interior], minlength=n
        ).astype(np.int64)

    return _finish_report(result, routed, tx, rx, transit)


def lossy_load(
    result: BackboneResult,
    routed: RoutedFlows,
    delivery: "DeliveryReport",
) -> LoadReport:
    """A :class:`LoadReport` reflecting what a lossy delivery *actually* cost.

    :func:`measure_load` charges every walk end to end; under loss the
    truth is the delivery's own tallies — truncated attempts charge only
    up to the failing hop, retries charge the surviving prefix again.
    This adapter rebuilds the per-node and congestion statistics from
    ``delivery.tx`` / ``delivery.rx`` while keeping the routing-shape
    metrics (stretch, link utilization) from the routed batch.

    Transit is exact, not estimated: within one attempt, every
    non-terminal reception is immediately followed by a retransmission
    by the same node (the failing hop's transmitter is the last
    receiver), so forwarded packets are receptions minus the terminal
    receptions of delivered flows.
    """
    n = result.clustering.graph.n
    demands = routed.workload.demands
    if delivery.num_flows != routed.num_flows:
        raise InvalidParameterError(
            "delivery report and routed batch disagree on flow count"
        )
    tx = delivery.tx
    rx = delivery.rx
    delivered = delivery.outcome == 0  # FlowOutcome.DELIVERED
    terminal = np.bincount(
        routed.workload.targets[delivered],
        weights=demands[delivered].astype(np.float64),
        minlength=n,
    )
    transit = rx - np.rint(terminal).astype(np.int64)

    return _finish_report(result, routed, tx, rx, transit)
