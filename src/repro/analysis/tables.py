"""Plain-text result tables and CSV export for the experiment drivers."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from .stats import SummaryStat
from .sweep import SweepResult

__all__ = ["format_table", "sweep_table", "write_csv"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def sweep_table(
    result: SweepResult, degree: float, k: int, metric: str = "cds_size"
) -> str:
    """One figure panel as a table: rows = N, columns = algorithms."""
    algs = list(result.config.algorithms)
    headers = ["N"] + [f"{a}" for a in algs]
    rows = []
    for n in result.config.ns:
        cell = result.cell(n, degree, k)
        source: Mapping[str, SummaryStat] = getattr(cell, metric)
        rows.append(
            [n] + [f"{source[a].mean:.1f}±{source[a].halfwidth:.1f}" for a in algs]
        )
    return format_table(headers, rows)


def write_csv(path: "str | Path", rows: Sequence[dict]) -> Path:
    """Write dict rows to CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    fields = list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return path
