"""Terminal line plots — matplotlib-free rendering of the paper's figures.

The benchmark environment is headless and offline, so the figure drivers
render their series as ASCII charts: one glyph per algorithm, axes labelled
with the real data ranges.  Good enough to eyeball the orderings and
crossovers the reproduction is judged on; the exact numbers live in the
accompanying CSV files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import InvalidParameterError

__all__ = ["line_plot", "scatter_plot"]

_GLYPHS = "ox+*#@%&"


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 20,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on a shared-axes ASCII grid.

    Args:
        series: name -> list of (x, y) points (each series sorted by x).
        title/xlabel/ylabel: labels.
        width/height: plot body size in characters.
    """
    if not series:
        raise InvalidParameterError("no series to plot")
    pts = [p for s in series.values() for p in s]
    if not pts:
        raise InvalidParameterError("series contain no points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        col = int(round((x - xmin) / (xmax - xmin) * (width - 1)))
        row = int(round((y - ymin) / (ymax - ymin) * (height - 1)))
        grid[height - 1 - row][col] = ch

    legend = []
    for idx, (name, points) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} {name}")
        ordered = sorted(points)
        # connect consecutive points with interpolated glyph dots
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(
                2,
                int(abs(x1 - x0) / (xmax - xmin) * (width - 1)) + 1,
            )
            for s in range(steps + 1):
                f = s / steps
                put(x0 + f * (x1 - x0), y0 + f * (y1 - y0), ".")
        for x, y in ordered:
            put(x, y, glyph)

    lines = []
    if title:
        lines.append(title.center(width + 10))
    ytop = f"{ymax:.0f}"
    ybot = f"{ymin:.0f}"
    pad = max(len(ytop), len(ybot)) + 1
    for r, row in enumerate(grid):
        label = ytop if r == 0 else (ybot if r == height - 1 else "")
        lines.append(label.rjust(pad) + " |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    xaxis = f"{xmin:.0f}".ljust(width - len(f"{xmax:.0f}")) + f"{xmax:.0f}"
    lines.append(" " * pad + "  " + xaxis)
    if xlabel or ylabel:
        lines.append(" " * pad + f"  x: {xlabel}   y: {ylabel}")
    lines.append(" " * pad + "  " + "   ".join(legend))
    return "\n".join(lines)


def scatter_plot(
    points: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 30,
) -> str:
    """Render labelled point sets (e.g. node roles on the deployment area)."""
    if not points:
        raise InvalidParameterError("no points to plot")
    pts = [p for s in points.values() for p in s]
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, series) in enumerate(points.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in series:
            col = int(round((x - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((y - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title.center(width))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
