"""Experiment harness: statistics, sweeps, tables, terminal plots."""

from .ascii_plot import line_plot, scatter_plot
from .stats import (
    AdaptiveEstimator,
    SummaryStat,
    jain_fairness,
    summarize,
    t_halfwidth,
)
from .sweep import (
    CellKey,
    CellResult,
    SweepConfig,
    SweepResult,
    default_trial_budget,
    run_cell,
    run_sweep,
)
from .tables import format_table, sweep_table, write_csv

__all__ = [
    "SummaryStat",
    "summarize",
    "t_halfwidth",
    "jain_fairness",
    "AdaptiveEstimator",
    "CellKey",
    "CellResult",
    "SweepConfig",
    "SweepResult",
    "run_cell",
    "run_sweep",
    "default_trial_budget",
    "format_table",
    "sweep_table",
    "write_csv",
    "line_plot",
    "scatter_plot",
]
