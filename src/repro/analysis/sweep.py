"""Experiment sweep runner — the engine behind every figure.

A *cell* is one parameter combination ``(n, degree, k)``.  For each cell the
runner draws random connected topologies (seed-derived, reproducible),
clusters once per trial, builds **all requested algorithms on the same
clustering** (paired comparison, as the paper plots them), verifies every
backbone, and feeds the metrics into the paper's adaptive stopping rule
(100 trials or ±1 % CI at 90 % confidence — whichever first, applied to the
CDS-size series of every algorithm).

Results are :class:`SweepResult` tables that the figure drivers turn into
series, ASCII plots and CSV files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..cds.verify import verify_backbone
from ..core.clustering import khop_cluster
from ..core.pipeline import ALGORITHMS, build_all_backbones
from ..errors import InvalidParameterError
from ..net.paths import PathOracle
from ..net.topology import random_topology
from .stats import AdaptiveEstimator, SummaryStat, summarize

__all__ = ["CellKey", "CellResult", "SweepConfig", "SweepResult", "run_cell", "run_sweep", "default_trial_budget"]


def default_trial_budget(paper_default: int = 100) -> int:
    """Trial budget, overridable via the ``REPRO_TRIALS`` environment variable.

    The paper runs up to 100 trials per cell; CI jobs and the pytest
    benchmarks set ``REPRO_TRIALS`` lower to bound runtime.
    """
    env = os.environ.get("REPRO_TRIALS")
    if env is None:
        return paper_default
    try:
        value = int(env)
    except ValueError:
        raise InvalidParameterError(f"REPRO_TRIALS must be an int, got {env!r}") from None
    if value < 1:
        raise InvalidParameterError("REPRO_TRIALS must be >= 1")
    return value


@dataclass(frozen=True)
class CellKey:
    """One parameter combination."""

    n: int
    degree: float
    k: int


@dataclass(frozen=True)
class CellResult:
    """Aggregated measurements of one cell.

    Attributes:
        key: the parameter combination.
        trials: how many trials were run (adaptive).
        num_heads: summary of the clusterhead count.
        gateways: per-algorithm summary of the gateway count.
        cds_size: per-algorithm summary of the CDS size.
    """

    key: CellKey
    trials: int
    num_heads: SummaryStat
    gateways: Mapping[str, SummaryStat]
    cds_size: Mapping[str, SummaryStat]


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of a sweep (defaults follow the paper's §4 setup)."""

    ns: Sequence[int] = (50, 80, 110, 140, 170, 200)
    degrees: Sequence[float] = (6.0,)
    ks: Sequence[int] = (1, 2, 3, 4)
    algorithms: Sequence[str] = ALGORITHMS
    max_trials: int = 100
    min_trials: int = 10
    rel_precision: float = 0.01
    confidence: float = 0.90
    base_seed: int = 20050610  # ICPP 2005 publication era
    calibration: str = "analytic"


@dataclass
class SweepResult:
    """All cell results of a sweep, addressable by (n, degree, k)."""

    config: SweepConfig
    cells: dict[CellKey, CellResult] = field(default_factory=dict)

    def cell(self, n: int, degree: float, k: int) -> CellResult:
        """Look up one cell."""
        return self.cells[CellKey(n, float(degree), k)]

    def series(
        self, metric: str, algorithm: str, degree: float, k: int
    ) -> list[tuple[int, SummaryStat]]:
        """A (n, stat) series for one algorithm, e.g. for one plot line.

        ``metric`` is ``"cds_size"``, ``"gateways"`` or ``"num_heads"``
        (``algorithm`` is ignored for ``num_heads``).
        """
        out = []
        for n in self.config.ns:
            cell = self.cell(n, degree, k)
            if metric == "num_heads":
                out.append((n, cell.num_heads))
            elif metric == "gateways":
                out.append((n, cell.gateways[algorithm]))
            elif metric == "cds_size":
                out.append((n, cell.cds_size[algorithm]))
            else:
                raise InvalidParameterError(f"unknown metric {metric!r}")
        return out

    def to_csv_rows(self) -> list[dict]:
        """Flatten to CSV-ready dict rows (one per cell x algorithm)."""
        rows = []
        for key in sorted(self.cells, key=lambda c: (c.degree, c.k, c.n)):
            cell = self.cells[key]
            for alg in self.config.algorithms:
                rows.append(
                    {
                        "n": key.n,
                        "degree": key.degree,
                        "k": key.k,
                        "algorithm": alg,
                        "trials": cell.trials,
                        "num_heads_mean": round(cell.num_heads.mean, 4),
                        "gateways_mean": round(cell.gateways[alg].mean, 4),
                        "gateways_ci90": round(cell.gateways[alg].halfwidth, 4),
                        "cds_size_mean": round(cell.cds_size[alg].mean, 4),
                        "cds_size_ci90": round(cell.cds_size[alg].halfwidth, 4),
                    }
                )
        return rows


def _cell_seed(base_seed: int, key: CellKey, trial: int) -> int:
    """Deterministic per-trial seed, decorrelated across cells."""
    return hash((base_seed, key.n, key.degree, key.k, trial)) & 0x7FFFFFFF


def run_cell(
    key: CellKey,
    *,
    algorithms: Sequence[str] = ALGORITHMS,
    max_trials: int = 100,
    min_trials: int = 10,
    rel_precision: float = 0.01,
    confidence: float = 0.90,
    base_seed: int = 20050610,
    calibration: str = "analytic",
    verify: bool = True,
) -> CellResult:
    """Run one (n, degree, k) cell with adaptive repetition."""
    estimators = {
        alg: AdaptiveEstimator(max_trials, rel_precision, confidence, min_trials)
        for alg in algorithms
    }
    heads_samples: list[float] = []
    gateway_samples: dict[str, list[float]] = {alg: [] for alg in algorithms}
    trial = 0
    while True:
        if all(e.done() for e in estimators.values()):
            break
        if trial >= max_trials:
            break
        topo = random_topology(
            key.n,
            key.degree,
            seed=_cell_seed(base_seed, key, trial),
            calibration=calibration,
        )
        clustering = khop_cluster(topo.graph, key.k)
        oracle = PathOracle(topo.graph)
        results = build_all_backbones(clustering, tuple(algorithms), oracle=oracle)
        heads_samples.append(float(clustering.num_clusters))
        for alg, res in results.items():
            if verify:
                verify_backbone(res)
            estimators[alg].add(float(res.cds_size))
            gateway_samples[alg].append(float(res.num_gateways))
        trial += 1
    return CellResult(
        key=key,
        trials=trial,
        num_heads=summarize(heads_samples, confidence),
        gateways={
            alg: summarize(gateway_samples[alg], confidence) for alg in algorithms
        },
        cds_size={alg: estimators[alg].summary() for alg in algorithms},
    )


def run_sweep(
    config: SweepConfig,
    *,
    progress: Optional[callable] = None,
    verify: bool = True,
) -> SweepResult:
    """Run every cell of a sweep configuration.

    Args:
        config: the parameter grid and statistical settings.
        progress: optional callback ``(CellKey, CellResult) -> None`` called
            after each cell (the CLI uses it for live output).
        verify: run full backbone verification on every produced backbone
            (on by default; the cost is small at paper scales).
    """
    result = SweepResult(config=config)
    for degree in config.degrees:
        for k in config.ks:
            for n in config.ns:
                key = CellKey(n, float(degree), k)
                cell = run_cell(
                    key,
                    algorithms=config.algorithms,
                    max_trials=config.max_trials,
                    min_trials=config.min_trials,
                    rel_precision=config.rel_precision,
                    confidence=config.confidence,
                    base_seed=config.base_seed,
                    calibration=config.calibration,
                    verify=verify,
                )
                result.cells[key] = cell
                if progress is not None:
                    progress(key, cell)
    return result
