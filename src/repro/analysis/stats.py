"""Statistics engine: Student-t confidence intervals and adaptive stopping.

The paper's §4 protocol: "For each tunable parameter, the simulation is
repeated 100 times or until the confidence interval is sufficiently small
(±1%, for the confidence level of 90%)."  :class:`AdaptiveEstimator`
implements exactly that stopping rule; :func:`t_halfwidth` provides the
underlying two-sided Student-t interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidParameterError

__all__ = [
    "SummaryStat",
    "t_halfwidth",
    "summarize",
    "jain_fairness",
    "jaccard_distance",
    "AdaptiveEstimator",
]


@dataclass(frozen=True)
class SummaryStat:
    """Summary of one measured series.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=1; 0.0 for < 2 samples).
        count: number of samples.
        halfwidth: two-sided CI half-width at ``confidence``.
        confidence: the confidence level the half-width refers to.
    """

    mean: float
    std: float
    count: int
    halfwidth: float
    confidence: float

    @property
    def relative_halfwidth(self) -> float:
        """CI half-width as a fraction of the mean (inf for mean == 0)."""
        if self.mean == 0:
            return math.inf
        return abs(self.halfwidth / self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.halfwidth:.2f} (n={self.count})"


def t_halfwidth(samples: Sequence[float], confidence: float = 0.90) -> float:
    """Two-sided Student-t CI half-width of the sample mean.

    Returns ``inf`` for fewer than 2 samples (no variance estimate) and 0.0
    for a zero-variance series.
    """
    if not (0.0 < confidence < 1.0):
        raise InvalidParameterError(f"confidence must be in (0, 1), got {confidence}")
    m = len(samples)
    if m < 2:
        return math.inf
    mean = sum(samples) / m
    var = sum((x - mean) ** 2 for x in samples) / (m - 1)
    if var == 0.0:
        return 0.0
    # Imported here, not at module level: the traffic engine pulls this
    # module in for jain_fairness, which must not make `import repro`
    # depend on scipy — only CI-style experiments that actually compute
    # t-intervals need it.
    from scipy import stats as _scipy_stats

    tcrit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=m - 1))
    return tcrit * math.sqrt(var / m)


def summarize(samples: Sequence[float], confidence: float = 0.90) -> SummaryStat:
    """Full :class:`SummaryStat` of a series."""
    m = len(samples)
    if m == 0:
        raise InvalidParameterError("cannot summarize an empty series")
    mean = sum(samples) / m
    if m >= 2:
        var = sum((x - mean) ** 2 for x in samples) / (m - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return SummaryStat(
        mean=mean,
        std=std,
        count=m,
        halfwidth=t_halfwidth(samples, confidence),
        confidence=confidence,
    )


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (m · Σx²)`` of a nonnegative series.

    1.0 means perfectly even allocation, ``1/m`` means one participant
    got everything.  An empty or all-zero series is trivially fair (1.0).
    Used by the traffic engine to score how evenly the backbone shares
    forwarding load.
    """
    total = sq = 0.0
    m = 0
    for x in values:
        x = float(x)
        if x < 0:
            raise InvalidParameterError("jain_fairness needs nonnegative values")
        total += x
        sq += x * x
        m += 1
    if m == 0 or sq == 0.0:
        return 1.0
    return (total * total) / (m * sq)


def jaccard_distance(a, b) -> float:
    """Jaccard distance ``1 - |a ∩ b| / |a ∪ b|`` between two sets.

    0.0 means identical sets (two empty sets included), 1.0 means
    disjoint.  The churn metric the stability and mobility loops share:
    how much of a head / backbone set survived one snapshot transition.
    """
    a, b = set(a), set(b)
    if not a and not b:
        return 0.0
    return 1.0 - len(a & b) / len(a | b)


class AdaptiveEstimator:
    """The paper's stopping rule: N trials or CI within ±rel of the mean.

    Args:
        max_trials: trial budget (paper: 100).
        rel_precision: target relative CI half-width (paper: 0.01).
        confidence: CI confidence level (paper: 0.90).
        min_trials: never stop before this many samples (variance estimates
            from 2-3 samples are too noisy to trust the precision test).
    """

    def __init__(
        self,
        max_trials: int = 100,
        rel_precision: float = 0.01,
        confidence: float = 0.90,
        min_trials: int = 10,
    ) -> None:
        if max_trials < 1:
            raise InvalidParameterError("max_trials must be >= 1")
        if min_trials < 1 or min_trials > max_trials:
            raise InvalidParameterError("need 1 <= min_trials <= max_trials")
        if rel_precision <= 0:
            raise InvalidParameterError("rel_precision must be positive")
        self.max_trials = max_trials
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.min_trials = min_trials
        self._samples: list[float] = []

    @property
    def count(self) -> int:
        """Samples collected so far."""
        return len(self._samples)

    def add(self, sample: float) -> None:
        """Record one sample."""
        self._samples.append(float(sample))

    def precise_enough(self) -> bool:
        """Whether the CI is within the target relative half-width."""
        if self.count < 2:
            return False
        stat = summarize(self._samples, self.confidence)
        return stat.relative_halfwidth <= self.rel_precision

    def done(self) -> bool:
        """The paper's stopping rule."""
        if self.count >= self.max_trials:
            return True
        if self.count < self.min_trials:
            return False
        return self.precise_enough()

    def summary(self) -> SummaryStat:
        """Summary of everything collected so far."""
        return summarize(self._samples, self.confidence)

    @property
    def samples(self) -> tuple[float, ...]:
        """The raw samples."""
        return tuple(self._samples)
