"""Runtime invariant guards for the long-lived service.

A one-shot experiment can afford to crash on a broken invariant — the
operator reruns it.  A service cannot: the contract here is that a
violated invariant becomes a **structured incident** plus a scoped
rebuild, never an unhandled exception.  The guards re-check, on the live
state, the same invariants the chaos harness asserts offline:

1. **CSR symmetry / edge coherence** — the compiled adjacency arrays
   round-trip to the graph's normalized edge set, every arc paired with
   its reverse (:func:`check_csr_symmetry`);
2. **cover validity** — every alive node still sits within ``k`` hops of
   its assigned head
   (:func:`~repro.maintenance.repair.clustering_still_valid` via
   :func:`check_cover`);
3. **backbone battery** — the verification battery the repair ladder
   runs before accepting a backbone, excluding dead nodes
   (:func:`check_backbone`).

:func:`run_guards` bundles all three and returns the incidents found
(empty list = healthy); the engine counts trips, logs each incident to
the run's incident log, and falls back to a scoped rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.clustering import Clustering
from ..core.pipeline import BackboneResult
from ..errors import ValidationError
from ..maintenance.repair import clustering_still_valid
from ..net.graph import Graph
from ..types import normalize_edge

__all__ = [
    "GuardIncident",
    "check_csr_symmetry",
    "check_cover",
    "check_backbone",
    "run_guards",
]


@dataclass(frozen=True)
class GuardIncident:
    """One detected invariant violation, ready for the incident log.

    Attributes:
        guard: which guard tripped (``csr`` / ``cover`` / ``backbone``).
        message: human-readable description of the violation.
        seq: event-log position of the event that exposed it.
        kind: that event's kind (diagnosis context).
    """

    guard: str
    message: str
    seq: int
    kind: str

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable incident record."""
        return {
            "type": "incident",
            "guard": self.guard,
            "message": self.message,
            "seq": self.seq,
            "kind": self.kind,
        }


def check_csr_symmetry(graph: Graph) -> Optional[str]:
    """CSR arrays round-trip to the normalized edge set; None if healthy."""
    indptr, indices = graph.csr_adjacency
    arcs = set()
    for u in range(graph.n):
        for v in indices[indptr[u] : indptr[u + 1]].tolist():
            arcs.add((u, v))
    for u, v in arcs:
        if (v, u) not in arcs:
            return f"CSR adjacency asymmetric: arc ({u}, {v}) has no reverse"
    realized = {normalize_edge(u, v) for u, v in arcs}
    if realized != set(graph.edges):
        missing = sorted(set(graph.edges) - realized)[:3]
        extra = sorted(realized - set(graph.edges))[:3]
        return f"CSR edge set diverges: missing={missing} extra={extra}"
    return None


def check_cover(
    clustering: Clustering, graph: Graph, dead: set[int]
) -> Optional[str]:
    """Every alive node within ``k`` of its head; None if healthy."""
    if clustering_still_valid(clustering, graph, exclude=dead):
        return None
    return (
        f"cover violated: an alive node is more than k={clustering.k} "
        "hops from its assigned head"
    )


def check_backbone(
    backbone: BackboneResult, dead: set[int]
) -> Optional[str]:
    """The repair ladder's verification battery; None if healthy.

    CDS connectivity is required per graph component, not globally: a
    disconnected graph (an islanded arrival, a partition) is an expected
    environmental condition the service keeps serving through, while a
    CDS split *inside* one component is still an engine bug.
    """
    from ..maintenance.repair import _excluded_nodes, _verify_excluding

    try:
        _verify_excluding(
            backbone,
            _excluded_nodes(backbone.clustering) | dead,
            per_component=True,
        )
    except ValidationError as exc:
        return f"backbone battery failed: {exc}"
    return None


def run_guards(
    graph: Graph,
    clustering: Clustering,
    backbone: Optional[BackboneResult],
    dead: set[int],
    *,
    seq: int,
    kind: str,
) -> list[GuardIncident]:
    """Run every guard against the live state; empty list = healthy.

    ``backbone=None`` (degraded mode, e.g. after a partition) skips the
    backbone battery — cover and CSR guards still run.
    """
    incidents: list[GuardIncident] = []
    msg = check_csr_symmetry(graph)
    if msg is not None:
        incidents.append(GuardIncident("csr", msg, seq, kind))
    msg = check_cover(clustering, graph, dead)
    if msg is not None:
        incidents.append(GuardIncident("cover", msg, seq, kind))
    if backbone is not None:
        msg = check_backbone(backbone, dead)
        if msg is not None:
            incidents.append(GuardIncident("backbone", msg, seq, kind))
    return incidents
